//! Property-based tests of the set-associative cache and replacement
//! policies.

use cache_sim::{Cache, CacheGeometry, LineAddr, LineMeta, Replacement};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = CacheGeometry> {
    ((0u32..=6), (1usize..=8)).prop_map(|(log_sets, ways)| CacheGeometry {
        sets: 1 << log_sets,
        ways,
        latency: 1,
    })
}

fn arb_replacement() -> impl Strategy<Value = Replacement> {
    prop_oneof![
        Just(Replacement::Lru),
        any::<u64>().prop_map(|seed| Replacement::Random { seed }),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Fill(u64),
    Touch(u64),
    Invalidate(u64),
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..3, 0u64..512).prop_map(|(kind, line)| match kind {
            0 => Op::Fill(line),
            1 => Op::Touch(line),
            _ => Op::Invalidate(line),
        }),
        1..max,
    )
}

proptest! {
    /// The cache never holds more lines than its capacity, never holds the
    /// same line twice, and every resident line maps to its correct set.
    #[test]
    fn capacity_and_placement_invariants(
        geometry in arb_geometry(),
        replacement in arb_replacement(),
        ops in arb_ops(300),
    ) {
        let mut cache = Cache::new(geometry, replacement);
        for op in &ops {
            match *op {
                Op::Fill(line) => {
                    cache.fill(LineAddr(line), LineMeta::default());
                }
                Op::Touch(line) => {
                    cache.touch(LineAddr(line));
                }
                Op::Invalidate(line) => {
                    cache.invalidate(LineAddr(line));
                }
            }
            prop_assert!(cache.len() <= geometry.lines());
            let mut seen = std::collections::HashSet::new();
            for (line, _) in cache.resident_lines() {
                prop_assert!(seen.insert(line), "duplicate resident line {line}");
                prop_assert_eq!(
                    cache.set_of(line),
                    (line.0 as usize) & (geometry.sets - 1)
                );
            }
        }
    }

    /// A fill either evicts nothing (line already present or a vacancy
    /// existed) or exactly one line from the same set; afterwards the new
    /// line is always resident.
    #[test]
    fn fill_semantics(
        geometry in arb_geometry(),
        replacement in arb_replacement(),
        lines in prop::collection::vec(0u64..512, 1..200),
    ) {
        let mut cache = Cache::new(geometry, replacement);
        for &raw in &lines {
            let line = LineAddr(raw);
            let before = cache.len();
            let was_resident = cache.contains(line);
            let evicted = cache.fill(line, LineMeta::default());
            prop_assert!(cache.contains(line));
            match evicted {
                Some(victim) => {
                    prop_assert_eq!(cache.set_of(victim.line), cache.set_of(line));
                    prop_assert!(!cache.contains(victim.line));
                    prop_assert_eq!(cache.len(), before);
                    prop_assert!(!was_resident);
                }
                None => {
                    let expected = before + usize::from(!was_resident);
                    prop_assert_eq!(cache.len(), expected);
                }
            }
        }
    }

    /// Under LRU, repeatedly touching a line protects it from eviction as
    /// long as other ways absorb the fills.
    #[test]
    fn lru_protects_touched_lines(ways in 2usize..8, fills in 1u64..100) {
        let geometry = CacheGeometry { sets: 1, ways, latency: 1 };
        let mut cache = Cache::new(geometry, Replacement::Lru);
        let protected = LineAddr(1000);
        cache.fill(protected, LineMeta::default());
        for i in 0..fills {
            cache.touch(protected);
            cache.fill(LineAddr(i), LineMeta::default());
            prop_assert!(
                cache.contains(protected),
                "touched line evicted after fill {i}"
            );
        }
    }

    /// Invalidate followed by contains is always false, and re-filling
    /// restores residency.
    #[test]
    fn invalidate_roundtrip(
        geometry in arb_geometry(),
        line in 0u64..512,
    ) {
        let mut cache = Cache::new(geometry, Replacement::Lru);
        cache.fill(LineAddr(line), LineMeta::default());
        prop_assert!(cache.contains(LineAddr(line)));
        cache.invalidate(LineAddr(line));
        prop_assert!(!cache.contains(LineAddr(line)));
        cache.fill(LineAddr(line), LineMeta::default());
        prop_assert!(cache.contains(LineAddr(line)));
    }

    /// Metadata written at fill time is returned intact on eviction.
    #[test]
    fn metadata_round_trips_through_eviction(ways in 1usize..4, dirty in any::<bool>()) {
        let geometry = CacheGeometry { sets: 1, ways, latency: 1 };
        let mut cache = Cache::new(geometry, Replacement::Lru);
        let meta = LineMeta::default().with_dirty(dirty).with_protected(true);
        cache.fill(LineAddr(0), meta);
        // Fill the set until line 0 is evicted.
        let mut evicted_meta = None;
        for i in 1..=ways as u64 {
            if let Some(e) = cache.fill(LineAddr(i * 64), LineMeta::default()) {
                if e.line == LineAddr(0) {
                    evicted_meta = Some(e.meta);
                }
            }
        }
        let got = evicted_meta.expect("line 0 must eventually be evicted");
        prop_assert_eq!(got.dirty(), dirty);
        prop_assert!(got.protected());
    }
}
