//! Differential suite for the branchless fingerprint probe kernel.
//!
//! The SWAR probe (`Cache::probe_way`) scans a packed fingerprint array with
//! whole-word compare masks and confirms candidates against full tags; the
//! retained scalar reference (`Cache::probe_way_scalar`) is a plain linear
//! scan over validity and tags. Every reachable cache state must resolve
//! every probe to the *same way* under both — including fingerprint aliases
//! (the 7-bit hash collides freely across a 64-bit tag space), partially
//! valid sets, full sets, pad lanes of non-multiple-of-8 way counts, and
//! every replacement policy.

use cache_sim::{Cache, CacheGeometry, LineAddr, LineMeta, Replacement};
use proptest::prelude::*;

/// Joint geometry/policy strategy. Way counts straddle the SWAR word
/// width — 1..=8 exercises the single (possibly partial) word, 9..=20 the
/// multi-word path with a tail mask — except under tree-PLRU, which
/// requires power-of-two ways.
fn arb_config() -> impl Strategy<Value = (CacheGeometry, Replacement)> {
    let policy = prop_oneof![
        Just(Replacement::Lru),
        Just(Replacement::TreePlru),
        any::<u64>().prop_map(|seed| Replacement::Random { seed }),
    ];
    ((0u32..=5), (1usize..=20), policy).prop_map(|(log_sets, ways, replacement)| {
        let ways = if matches!(replacement, Replacement::TreePlru) {
            1 << (ways.ilog2().min(4))
        } else {
            ways
        };
        (
            CacheGeometry {
                sets: 1 << log_sets,
                ways,
                latency: 1,
            },
            replacement,
        )
    })
}

#[derive(Debug, Clone)]
enum Op {
    Fill(u64),
    Touch(u64),
    Invalidate(u64),
}

/// Ops over a small line space on a small cache: sets alias heavily, so
/// every set cycles through empty → partial → full → holes (invalidate
/// leaves mid-set gaps), and the 7-bit fingerprints collide between
/// resident tags as well as against probed-but-absent ones.
fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..3, 0u64..4096).prop_map(|(kind, line)| match kind {
            0 => Op::Fill(line),
            1 => Op::Touch(line),
            _ => Op::Invalidate(line),
        }),
        1..max,
    )
}

proptest! {
    /// After every mutation, the SWAR kernel and the scalar reference agree
    /// on the resolved way for the mutated line, for a sweep of absent
    /// lines (fingerprint false positives must be rejected by the full-tag
    /// confirm), and for every resident line.
    #[test]
    fn kernel_matches_scalar_reference(
        config in arb_config(),
        ops in arb_ops(250),
    ) {
        let (geometry, replacement) = config;
        let mut cache = Cache::new(geometry, replacement);
        for (i, op) in ops.iter().enumerate() {
            let target = match *op {
                Op::Fill(line) => {
                    cache.fill(LineAddr(line), LineMeta::default());
                    line
                }
                Op::Touch(line) => {
                    cache.touch(LineAddr(line));
                    line
                }
                Op::Invalidate(line) => {
                    cache.invalidate(LineAddr(line));
                    line
                }
            };
            // The mutated line and a deterministic sweep of mostly-absent
            // lines sharing its set (same set ⇒ the probe scans the same
            // fingerprint word, so aliases land where they hurt).
            for probe in 0..16u64 {
                let line = LineAddr(target.wrapping_add(probe * geometry.sets as u64));
                prop_assert_eq!(
                    cache.probe_way(line),
                    cache.probe_way_scalar(line),
                    "op {} probe {:?}", i, line
                );
            }
        }
        // Exhaustive final check: every resident line resolves identically,
        // and the kernel agrees with residency itself.
        let resident: Vec<LineAddr> = cache.resident_lines().map(|(l, _)| l).collect();
        for line in resident {
            let way = cache.probe_way(line);
            prop_assert_eq!(way, cache.probe_way_scalar(line));
            prop_assert!(way.is_some(), "resident line {:?} not found", line);
        }
    }

    /// A cloned cache probes identically to the original under both
    /// lookups — the manual `Clone` must copy every kernel array
    /// (fingerprints, tags, stamps) coherently.
    #[test]
    fn clone_preserves_probe_results(
        config in arb_config(),
        lines in prop::collection::vec(0u64..4096, 1..120),
    ) {
        let (geometry, replacement) = config;
        let mut cache = Cache::new(geometry, replacement);
        for &line in &lines {
            cache.fill(LineAddr(line), LineMeta::default());
        }
        let cloned = cache.clone();
        for &line in &lines {
            let l = LineAddr(line);
            prop_assert_eq!(cloned.probe_way(l), cache.probe_way(l));
            prop_assert_eq!(cloned.probe_way_scalar(l), cache.probe_way_scalar(l));
        }
    }
}

/// Directed aliasing case: lines that differ only above the set-index bits
/// map to one set; with more tags probed than fingerprint values exist, the
/// kernel must reject false-positive lanes via the full-tag confirm on
/// every one of them. (2048 distinct tags over a 7-bit fingerprint space
/// guarantees hundreds of aliases by pigeonhole.)
#[test]
fn aliasing_tags_resolve_by_full_tag_confirm() {
    let geometry = CacheGeometry {
        sets: 4,
        ways: 12,
        latency: 1,
    };
    let mut cache = Cache::new(geometry, Replacement::Lru);
    let stride = geometry.sets as u64;
    // Fill one set to capacity with distinct tags.
    for i in 0..geometry.ways as u64 {
        cache.fill(LineAddr(1 + i * stride), LineMeta::default());
    }
    // Probe a large same-set tag universe: residents must be found, absent
    // tags (many sharing a fingerprint with a resident) must miss.
    for i in 0..2048u64 {
        let line = LineAddr(1 + i * stride);
        let kernel = cache.probe_way(line);
        assert_eq!(kernel, cache.probe_way_scalar(line), "tag {i}");
        assert_eq!(kernel.is_some(), i < geometry.ways as u64, "tag {i}");
    }
}
