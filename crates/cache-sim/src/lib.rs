//! A deterministic, trace-driven multi-core cache-hierarchy simulator.
//!
//! This crate is the substrate for the PiPoMonitor reproduction — it stands in
//! for the Gem5 setup of the paper's evaluation (§VII-A, Table II). It models:
//!
//! * private, inclusive L1 and L2 caches per core;
//! * a shared, inclusive L3 (LLC) with a directory-style sharer bitmap,
//!   back-invalidation on eviction (the signal cross-core attackers exploit),
//!   and MESI-flavoured write invalidations;
//! * a fixed-latency DRAM behind a memory controller;
//! * a [`TrafficObserver`] hook at the memory controller where PiPoMonitor
//!   (or any other defense) watches LLC↔memory traffic and injects
//!   prefetches.
//!
//! Everything is deterministic: replacement randomness comes from seeded
//! generators, so every experiment is exactly reproducible.
//!
//! The simulation hot path is engineered to be allocation-free in steady
//! state: [`System::run`] schedules cores through a reusable binary min-heap
//! (popping the earliest `(clock, core)` event instead of rescanning all
//! cores), prefetch draining is event-driven through
//! [`TrafficObserver::next_prefetch_due`] and the buffer-reusing
//! [`TrafficObserver::drain_due_prefetches`] sink API, and [`Cache`] stores
//! packed tag+recency records separately from line metadata so lookups scan
//! one host cache line per set. `tests/scheduler_regression.rs` pins the
//! engine's results bit-exactly and `tests/no_alloc_hot_path.rs` counts
//! allocations to keep these properties honest.
//!
//! A single large simulation can additionally be spread across host threads
//! with [`System::run_sharded`]: the [`epoch`] module implements an
//! optimistic shard/epoch protocol — parallel speculation, a parallel
//! set-partitioned read-only verify phase, and a serial mutation-only
//! commit, all running out of pooled scratch on a persistent worker pool —
//! whose results are bit-identical to [`System::run`] for any shard count
//! (pinned by `tests/sharded_regression.rs` and, over randomized inputs, by
//! `tests/sharded_differential.rs`). See `ARCHITECTURE.md` at the
//! repository root for the execution model.
//!
//! # Examples
//!
//! ```
//! use cache_sim::{Hierarchy, NullObserver, SystemConfig, AccessKind, Addr, CoreId};
//!
//! let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
//! let mut observer = NullObserver;
//! // First access goes to memory; the second hits in L1.
//! let miss = hierarchy.access(CoreId(0), Addr(0x1000), AccessKind::Read, 0, &mut observer);
//! let hit = hierarchy.access(CoreId(0), Addr(0x1000), AccessKind::Read, 100, &mut observer);
//! assert!(miss.latency > hit.latency);
//! ```

// `deny` rather than `forbid`: the persistent worker pool (`pool.rs`) needs
// one documented lifetime-erasure expression (the classic scoped-thread-pool
// pattern) and carries the only `#[allow(unsafe_code)]` in the workspace.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod epoch;
pub mod hierarchy;
pub mod line;
pub mod observer;
pub mod pool;
pub mod replacement;
pub mod stats;
pub mod system;
pub mod types;

pub use cache::{Cache, EvictedLine};
pub use config::{CacheGeometry, SystemConfig};
pub use core::{Access, AccessSource, Core};
pub use dram::Dram;
pub use epoch::{EpochTelemetry, EpochWindow, ShardSpec, DEFAULT_EPOCH_CYCLES};
pub use hierarchy::Hierarchy;
pub use line::{LineMeta, SharerSet};
pub use observer::{NullObserver, RecordingObserver, TrafficObserver};
pub use pool::WorkerPool;
pub use replacement::Replacement;
pub use stats::{CoreStats, HierarchyStats, LevelStats};
pub use system::{SimReport, System};
pub use types::{AccessKind, AccessResult, Addr, CoreId, Cycle, Level, LineAddr};
