//! Per-line metadata: coherence, dirtiness, and PiPoMonitor's tag bits.

use crate::types::CoreId;

/// A bitmask of cores holding a line in their private caches (the LLC's
/// directory-style sharer tracking). Supports up to 64 cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty sharer set.
    #[must_use]
    pub fn empty() -> Self {
        Self(0)
    }

    /// A set containing exactly one core.
    #[must_use]
    pub fn only(core: CoreId) -> Self {
        Self(1 << core.0)
    }

    /// Adds a core.
    pub fn insert(&mut self, core: CoreId) {
        self.0 |= 1 << core.0;
    }

    /// Removes a core.
    pub fn remove(&mut self, core: CoreId) {
        self.0 &= !(1 << core.0);
    }

    /// Whether the core is a sharer.
    #[must_use]
    pub fn contains(&self, core: CoreId) -> bool {
        self.0 & (1 << core.0) != 0
    }

    /// Whether no cores share the line.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of sharers.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether `core` is the only sharer.
    #[must_use]
    pub fn is_sole(&self, core: CoreId) -> bool {
        self.0 == 1 << core.0
    }

    /// The raw 64-bit membership mask (crate-internal: the epoch engine
    /// checks shard containment with one mask operation).
    pub(crate) fn bits(self) -> u64 {
        self.0
    }

    /// Iterates the sharer core ids in ascending order.
    ///
    /// The iterator owns a copy of the bitmask and walks it with
    /// `trailing_zeros` + clear-lowest-set-bit, so iteration costs one step
    /// per *sharer* rather than one per possible core — this sits on the
    /// LLC-eviction back-invalidation hot path.
    #[must_use]
    pub fn iter(&self) -> SharerIter {
        SharerIter(self.0)
    }
}

/// Iterator over the members of a [`SharerSet`] (see [`SharerSet::iter`]).
#[derive(Debug, Clone, Copy)]
pub struct SharerIter(u64);

impl Iterator for SharerIter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        if self.0 == 0 {
            return None;
        }
        let core = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(CoreId(core))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SharerIter {}

/// Flag bit: line holds data newer than memory.
const DIRTY: u8 = 1 << 0;
/// Flag bit: PiPoMonitor Ping-Pong tag.
const PROTECTED: u8 = 1 << 1;
/// Flag bit: tagged line has been demand-accessed since entering the LLC.
const ACCESSED: u8 = 1 << 2;
/// Flag bit: line entered the LLC via prefetch, not yet demand-touched.
const PREFETCHED: u8 = 1 << 3;

/// Metadata carried by a cached line, packed to nine meaningful bytes: the
/// 64-bit sharer bitmap plus one flag byte holding the four status bits.
///
/// Private caches use the dirty flag; the LLC additionally maintains the
/// sharer set (directory) and PiPoMonitor's protection bits:
///
/// * `protected` — the line was captured as a Ping-Pong line (tagged at fill
///   time by the monitor's response).
/// * `accessed` — the tagged line has been demand-touched since it entered
///   the LLC. Only tagged-*and*-accessed lines are re-prefetched on eviction
///   (paper §IV), which prevents endless prefetch loops.
/// * `prefetched` — the line entered the LLC via the monitor's prefetch path
///   (statistics only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineMeta {
    /// Cores caching this line privately (LLC only).
    pub sharers: SharerSet,
    flags: u8,
}

impl LineMeta {
    /// Metadata for a line filled on a demand miss by `core`.
    ///
    /// The demand access itself counts as the first access.
    #[must_use]
    pub fn demand_fill(core: CoreId, is_write: bool, protected: bool) -> Self {
        Self {
            sharers: SharerSet::only(core),
            flags: ACCESSED | (DIRTY * u8::from(is_write)) | (PROTECTED * u8::from(protected)),
        }
    }

    /// Metadata for a line injected by the monitor's prefetcher: no sharers,
    /// clean, protected, not yet accessed.
    #[must_use]
    pub fn prefetch_fill() -> Self {
        Self {
            sharers: SharerSet::empty(),
            flags: PROTECTED | PREFETCHED,
        }
    }

    #[inline]
    fn put(&mut self, bit: u8, value: bool) {
        self.flags = (self.flags & !bit) | (bit * u8::from(value));
    }

    /// Line holds data newer than memory.
    #[inline]
    #[must_use]
    pub fn dirty(&self) -> bool {
        self.flags & DIRTY != 0
    }

    /// Sets the dirty flag.
    #[inline]
    pub fn set_dirty(&mut self, value: bool) {
        self.put(DIRTY, value);
    }

    /// ORs `value` into the dirty flag (branchless dirtiness propagation).
    #[inline]
    pub fn or_dirty(&mut self, value: bool) {
        self.flags |= DIRTY * u8::from(value);
    }

    /// PiPoMonitor Ping-Pong tag.
    #[inline]
    #[must_use]
    pub fn protected(&self) -> bool {
        self.flags & PROTECTED != 0
    }

    /// Sets the protection tag.
    #[inline]
    pub fn set_protected(&mut self, value: bool) {
        self.put(PROTECTED, value);
    }

    /// Tagged line has been demand-accessed since entering the LLC.
    #[inline]
    #[must_use]
    pub fn accessed(&self) -> bool {
        self.flags & ACCESSED != 0
    }

    /// Sets the accessed flag.
    #[inline]
    pub fn set_accessed(&mut self, value: bool) {
        self.put(ACCESSED, value);
    }

    /// Line entered the LLC via prefetch and has not been demand-touched yet.
    #[inline]
    #[must_use]
    pub fn prefetched(&self) -> bool {
        self.flags & PREFETCHED != 0
    }

    /// Sets the prefetched flag.
    #[inline]
    pub fn set_prefetched(&mut self, value: bool) {
        self.put(PREFETCHED, value);
    }

    /// Builder: returns `self` with the dirty flag set to `value`.
    #[must_use]
    pub fn with_dirty(mut self, value: bool) -> Self {
        self.set_dirty(value);
        self
    }

    /// Builder: returns `self` with the protection tag set to `value`.
    #[must_use]
    pub fn with_protected(mut self, value: bool) -> Self {
        self.set_protected(value);
        self
    }

    /// Builder: returns `self` with the accessed flag set to `value`.
    #[must_use]
    pub fn with_accessed(mut self, value: bool) -> Self {
        self.set_accessed(value);
        self
    }

    /// Builder: returns `self` with the prefetched flag set to `value`.
    #[must_use]
    pub fn with_prefetched(mut self, value: bool) -> Self {
        self.set_prefetched(value);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_set_insert_remove_contains() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId(0));
        s.insert(CoreId(3));
        assert!(s.contains(CoreId(0)));
        assert!(s.contains(CoreId(3)));
        assert!(!s.contains(CoreId(1)));
        assert_eq!(s.count(), 2);
        s.remove(CoreId(0));
        assert!(!s.contains(CoreId(0)));
        assert_eq!(s.count(), 1);
        assert!(s.is_sole(CoreId(3)));
    }

    #[test]
    fn sharer_set_only() {
        let s = SharerSet::only(CoreId(2));
        assert!(s.is_sole(CoreId(2)));
        assert!(!s.is_sole(CoreId(1)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn sharer_set_iter_yields_members() {
        let mut s = SharerSet::empty();
        s.insert(CoreId(1));
        s.insert(CoreId(5));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![CoreId(1), CoreId(5)]);
    }

    #[test]
    fn sharer_set_iter_edge_bits() {
        assert_eq!(SharerSet::empty().iter().count(), 0);
        let mut s = SharerSet::empty();
        s.insert(CoreId(0));
        s.insert(CoreId(63));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![CoreId(0), CoreId(63)]);
        assert_eq!(s.iter().len(), 2);
    }

    #[test]
    fn demand_fill_meta() {
        let m = LineMeta::demand_fill(CoreId(1), true, false);
        assert!(m.dirty());
        assert!(m.sharers.is_sole(CoreId(1)));
        assert!(!m.protected());
        assert!(m.accessed());
        assert!(!m.prefetched());
    }

    #[test]
    fn prefetch_fill_meta() {
        let m = LineMeta::prefetch_fill();
        assert!(!m.dirty());
        assert!(m.sharers.is_empty());
        assert!(m.protected());
        assert!(!m.accessed());
        assert!(m.prefetched());
    }

    #[test]
    fn flag_setters_round_trip() {
        let mut m = LineMeta::default();
        m.set_dirty(true);
        m.set_accessed(true);
        assert!(m.dirty() && m.accessed() && !m.protected() && !m.prefetched());
        m.set_dirty(false);
        assert!(!m.dirty() && m.accessed());
        m.or_dirty(false);
        assert!(!m.dirty());
        m.or_dirty(true);
        assert!(m.dirty());
        let b = LineMeta::default()
            .with_dirty(true)
            .with_protected(true)
            .with_accessed(true)
            .with_prefetched(true);
        assert!(b.dirty() && b.protected() && b.accessed() && b.prefetched());
    }
}
