//! The multi-core system: cores + hierarchy + memory-controller observer.
//!
//! # Scheduling
//!
//! [`System::run`] is event-driven: live cores sit in a binary min-heap keyed
//! by `(local clock, core index)`, and the earliest core is popped and
//! stepped. While the popped core remains strictly earliest it keeps
//! stepping without touching the heap (the common case — cores drift apart
//! in time), so scheduler cost is amortized far below one heap operation per
//! access. Prefetch draining is likewise event-driven: the observer is asked
//! for its earliest pending release time (a static call on the concrete
//! observer type) and drained only when that time has arrived, instead of
//! being polled before every step.
//!
//! The schedule this produces is identical to the previous linear min-scan
//! (ties broken toward the lowest core index), which
//! `tests/scheduler_regression.rs` pins bit-exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;
use std::time::Instant;

use crate::cache::Cache;
use crate::core::{AccessSource, Core};
use crate::epoch::{self, EpochScratch, EpochTelemetry, EpochWindow, ShardSpec, ShardTask};
use crate::hierarchy::Hierarchy;
use crate::observer::TrafficObserver;
use crate::pool::WorkerPool;
use crate::stats::HierarchyStats;
use crate::types::{CoreId, Cycle};

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-core completion time (local clock when the core finished its
    /// instruction quota or exhausted its source).
    pub completion_cycles: Vec<Cycle>,
    /// Per-core instructions retired.
    pub instructions: Vec<u64>,
    /// Hierarchy statistics at the end of the run.
    pub stats: HierarchyStats,
    /// Total DRAM demand reads.
    pub dram_reads: u64,
    /// Total DRAM prefetch reads.
    pub dram_prefetch_reads: u64,
    /// Total DRAM writebacks.
    pub dram_writes: u64,
}

impl SimReport {
    /// Overall execution time: the slowest core's completion time.
    #[must_use]
    pub fn makespan(&self) -> Cycle {
        self.completion_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Instructions per cycle of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn ipc(&self, core: CoreId) -> f64 {
        let cycles = self.completion_cycles[core.0];
        if cycles == 0 {
            0.0
        } else {
            self.instructions[core.0] as f64 / cycles as f64
        }
    }

    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }
}

/// A complete simulated machine.
///
/// Generic over the observer so callers keep typed access to their monitor
/// (e.g. PiPoMonitor statistics) after the run.
///
/// # Examples
///
/// ```
/// use cache_sim::{Access, Addr, NullObserver, System, SystemConfig};
///
/// let mut addr = 0u64;
/// let stream = move || {
///     addr += 64;
///     Some(Access::read(Addr(addr)).after(3))
/// };
/// let mut system = System::new(SystemConfig::small_test(), NullObserver);
/// system.set_source(cache_sim::CoreId(0), Box::new(stream));
/// let report = system.run(10_000);
/// assert!(report.makespan() > 0);
/// ```
#[derive(Debug)]
pub struct System<O: TrafficObserver> {
    hierarchy: Hierarchy,
    cores: Vec<Core>,
    observer: O,
    /// Reusable scheduler heap of `(next event time, core index)`; kept
    /// across runs so repeated [`run`](Self::run) calls do not reallocate.
    schedule: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Execution counters of the last [`run_sharded`](Self::run_sharded)
    /// call; `None` after a plain [`run`](Self::run).
    telemetry: Option<EpochTelemetry>,
    /// All pooled epoch-parallel state (shard logs, tapes, backups,
    /// speculation LLC copies, verify set images, annotations), reshaped
    /// only when the `(cores, shards)` layout changes and reused otherwise
    /// — steady-state epochs allocate nothing.
    scratch: EpochScratch,
    /// Persistent worker threads for the speculate and verify phases,
    /// created on the first sharded run and grown if a later run asks for
    /// more shards.
    pool: Option<WorkerPool>,
    /// Pooled observer snapshot: the commit walk is the only epoch step
    /// that mutates shared state before the epoch is fully committed (a
    /// prefetch it schedules may fall due inside the window), so the
    /// observer is `clone_from`'d here first and swapped back on that late
    /// rollback.
    observer_backup: Option<O>,
}

/// Core-count ceiling for the linear-scan scheduler; larger machines use
/// the binary heap ([`System::run_window_heap`]).
const SCAN_CORES: usize = 8;

/// Low bits of a packed scan key holding the core index (supports
/// [`SCAN_CORES`] ≤ 16). The time component occupies the remaining 60 bits;
/// the scan path is only entered while every core clock fits them (2^60
/// cycles — decades of simulated time), so the packing never wraps.
const KEY_IDX_BITS: u32 = 4;

/// Smallest and second-smallest of the two keys, branchlessly.
#[inline]
fn sort2(a: u64, b: u64) -> (u64, u64) {
    (a.min(b), a.max(b))
}

/// Smallest and second-smallest of the four keys, branchlessly: the runner-up
/// is the smaller of "larger pair-minimum" and "smaller pair-maximum".
#[inline]
fn min2_of4(k: &[u64]) -> (u64, u64) {
    let (a, b) = sort2(k[0], k[1]);
    let (c, d) = sort2(k[2], k[3]);
    (a.min(c), a.max(c).min(b.min(d)))
}

/// Smallest and second-smallest of the eight packed scan keys as a tournament
/// of `min`/`max` pairs (conditional moves, no data-dependent branches).
/// Parked slots hold `u64::MAX` and lose every match; live keys are unique
/// (the low bits carry the core index), so ties only occur among sentinels.
#[inline]
fn min_and_runner_up(keys: &[u64; SCAN_CORES]) -> (u64, u64) {
    let (ma, sa) = min2_of4(&keys[..4]);
    let (mb, sb) = min2_of4(&keys[4..]);
    let min = ma.min(mb);
    let second = if ma < mb { sa.min(mb) } else { sb.min(ma) };
    (min, second)
}

/// A source that immediately reports exhaustion (default for cores without
/// an assigned workload).
struct EmptySource;

impl AccessSource for EmptySource {
    fn next_access(&mut self) -> Option<crate::core::Access> {
        None
    }
}

impl<O: TrafficObserver> System<O> {
    /// Builds a system with idle cores; assign workloads with
    /// [`set_source`](Self::set_source).
    #[must_use]
    pub fn new(config: crate::config::SystemConfig, observer: O) -> Self {
        let cores: Vec<Core> = (0..config.cores)
            .map(|i| Core::new(CoreId(i), Box::new(EmptySource)))
            .collect();
        let schedule = BinaryHeap::with_capacity(cores.len());
        Self {
            hierarchy: Hierarchy::new(config),
            cores,
            observer,
            schedule,
            telemetry: None,
            scratch: EpochScratch::new(),
            pool: None,
            observer_backup: None,
        }
    }

    /// Assigns a workload to a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_source(&mut self, core: CoreId, source: Box<dyn AccessSource + Send>) {
        self.cores[core.0] = Core::new(core, source);
    }

    /// The underlying hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The memory-controller observer (e.g. the PiPoMonitor instance).
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Runs until every core has retired `instructions_per_core` instructions
    /// (or exhausted its source). Cores interleave in local-time order, which
    /// approximates concurrent execution on a shared hierarchy.
    ///
    /// Steady state performs no heap allocation per simulated access: the
    /// scheduler heap, the observer's prefetch queue, and the drain buffer
    /// are all reused across steps.
    pub fn run(&mut self, instructions_per_core: u64) -> SimReport {
        self.telemetry = None;
        self.run_window(instructions_per_core, Cycle::MAX);
        self.finish_run()
    }

    /// Executes every step whose start time falls before `t_end` (pass
    /// [`Cycle::MAX`] for an unbounded run). This is the sequential engine
    /// proper; [`run`](Self::run) is one unbounded window and
    /// [`run_sharded`](Self::run_sharded) re-executes rolled-back or
    /// prefetch-gated epochs through bounded windows. Because the scheduler
    /// orders steps globally by `(start time, core index)`, a run chopped
    /// into windows executes the exact step sequence of an unbounded run.
    fn run_window(&mut self, instructions_per_core: u64, t_end: Cycle) {
        // Small machines (the paper's 4-core configuration and most tests)
        // schedule through a branch-light linear scan over packed keys
        // instead of the binary heap: finding the minimum of ≤ 8 integers
        // is a handful of conditional moves, where every heap pop/push is a
        // chain of data-dependent compares and swaps that the branch
        // predictor loses on. Both paths produce the identical
        // `(time, core index)` step order.
        if self.cores.len() <= SCAN_CORES
            && self
                .cores
                .iter()
                .all(|c| c.now() < Cycle::MAX >> KEY_IDX_BITS)
        {
            self.run_window_scan(instructions_per_core, t_end);
        } else {
            self.run_window_heap(instructions_per_core, t_end);
        }
    }

    /// Linear-scan scheduler for ≤ [`SCAN_CORES`] cores. Each live core's
    /// next event is packed as `(time << KEY_IDX_BITS) | index` — an
    /// order-preserving encoding of the `(time, index)` schedule key — and
    /// retired cores park at `u64::MAX`. One pass computes the minimum and
    /// the runner-up; the minimum core then streaks until its key passes
    /// the runner-up, exactly like the heap path.
    fn run_window_scan(&mut self, instructions_per_core: u64, t_end: Cycle) {
        let mut keys = [u64::MAX; SCAN_CORES];
        for (idx, core) in self.cores.iter().enumerate() {
            if !core.is_exhausted() && core.retired() < instructions_per_core && core.now() < t_end
            {
                keys[idx] = (core.now() << KEY_IDX_BITS) | idx as u64;
            }
        }
        let small = self.cores.len() <= 4;
        let mut due = self.observer.next_prefetch_due();
        let mut evictions_seen = self.hierarchy.stats().llc_evictions;
        loop {
            // Tournament min + runner-up over the fixed key array (parked
            // slots are `u64::MAX` and lose every match). A tree of
            // `min`/`max` pairs compiles to conditional moves with ~3 levels
            // of dependency — the interleaved step order makes the "is this
            // key the new minimum?" branch inherently unpredictable, and a
            // branchy scan pays a misprediction on most iterations. Machines
            // of ≤ 4 cores (the paper configuration) run the half-width
            // network; the `small` branch itself is loop-invariant and
            // perfectly predicted.
            let (min, second) = if small {
                min2_of4(&keys[..4])
            } else {
                min_and_runner_up(&keys)
            };
            if min == u64::MAX {
                return;
            }
            let idx = (min & ((1 << KEY_IDX_BITS) - 1)) as usize;
            // Borrow the streaking core once (field-level split with
            // `hierarchy`/`observer`): the streak loop then runs without
            // re-indexing `self.cores` on every step. The first iteration's
            // clock is recovered from the packed key instead of reloaded.
            let core = &mut self.cores[idx];
            let mut now = min >> KEY_IDX_BITS;
            loop {
                if now >= t_end {
                    keys[idx] = u64::MAX;
                    break;
                }
                // The observer's earliest due time only moves when an LLC
                // eviction schedules a prefetch or a drain consumes one, so
                // the cached value is refreshed on those events instead of
                // re-queried every step (`llc_evictions` advances exactly
                // once per eviction notification).
                if due.is_some_and(|d| d <= now) {
                    self.hierarchy.drain_prefetches(now, &mut self.observer);
                    due = self.observer.next_prefetch_due();
                    evictions_seen = self.hierarchy.stats().llc_evictions;
                }
                if !core.step(&mut self.hierarchy, &mut self.observer) {
                    keys[idx] = u64::MAX;
                    break;
                }
                let evictions = self.hierarchy.stats().llc_evictions;
                if evictions != evictions_seen {
                    evictions_seen = evictions;
                    due = self.observer.next_prefetch_due();
                }
                if core.retired() >= instructions_per_core {
                    keys[idx] = u64::MAX;
                    break;
                }
                now = core.now();
                let key = (now << KEY_IDX_BITS) | idx as u64;
                if key >= second {
                    keys[idx] = key;
                    break;
                }
            }
        }
    }

    /// Binary-heap scheduler (any core count).
    fn run_window_heap(&mut self, instructions_per_core: u64, t_end: Cycle) {
        self.schedule.clear();
        for (idx, core) in self.cores.iter().enumerate() {
            if !core.is_exhausted() && core.retired() < instructions_per_core && core.now() < t_end
            {
                self.schedule.push(Reverse((core.now(), idx)));
            }
        }
        while let Some(Reverse((_, idx))) = self.schedule.pop() {
            // Warm the host cache for the set the popped core is about to
            // probe (read-only hint; cores pre-draw accesses in batches, so
            // the next address is usually already known). Issued once per
            // heap pop, not per step — the hint pays for the cold resume
            // after other cores ran, while consecutive steps of one core
            // keep the host cache warm on their own.
            if let Some(addr) = self.cores[idx].peek_addr() {
                self.hierarchy.prefetch_hint(CoreId(idx), addr);
            }
            // Step the popped core for as long as it stays the globally
            // earliest `(time, index)` event, draining due prefetches at the
            // core's clock before each step (exactly the schedule the linear
            // min-scan produced, minus the per-step scan).
            loop {
                let now = self.cores[idx].now();
                if now >= t_end {
                    break; // The core's next step belongs to a later window.
                }
                if self
                    .observer
                    .next_prefetch_due()
                    .is_some_and(|due| due <= now)
                {
                    self.hierarchy.drain_prefetches(now, &mut self.observer);
                }
                if !self.cores[idx].step(&mut self.hierarchy, &mut self.observer) {
                    break; // Source exhausted; the core leaves the schedule.
                }
                if self.cores[idx].retired() >= instructions_per_core {
                    break; // Quota reached.
                }
                let after = self.cores[idx].now();
                if let Some(&Reverse(next)) = self.schedule.peek() {
                    if (after, idx) >= next {
                        self.schedule.push(Reverse((after, idx)));
                        break;
                    }
                }
            }
        }
    }

    /// Flushes pending prefetches and assembles the report (shared tail of
    /// [`run`](Self::run) and [`run_sharded`](Self::run_sharded)).
    fn finish_run(&mut self) -> SimReport {
        let end = self.cores.iter().map(Core::now).max().unwrap_or(0);
        self.hierarchy.drain_prefetches(end, &mut self.observer);
        SimReport {
            completion_cycles: self.cores.iter().map(Core::now).collect(),
            instructions: self.cores.iter().map(Core::retired).collect(),
            stats: self.hierarchy.stats().clone(),
            dram_reads: self.hierarchy.dram().reads(),
            dram_prefetch_reads: self.hierarchy.dram().prefetch_reads(),
            dram_writes: self.hierarchy.dram().writes(),
        }
    }

    /// Telemetry of the last [`run_sharded`](Self::run_sharded) call: how
    /// many epochs ran in parallel, committed, or rolled back. `None` after
    /// a plain [`run`](Self::run).
    #[must_use]
    pub fn epoch_telemetry(&self) -> Option<&EpochTelemetry> {
        self.telemetry.as_ref()
    }
}

/// One shard's lock-protected work cell for a speculate dispatch: the pool
/// workers each lock exactly their own cell, which hands them `&mut` access
/// to the shard's disjoint core/cache slices without unsafe code or
/// per-epoch allocation (the cells live in a stack array).
struct SpecCell<'a> {
    task: ShardTask<'a>,
    scratch: &'a mut epoch::ShardScratch,
}

/// Nanoseconds elapsed since `since` (saturating, for telemetry).
fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl<O: TrafficObserver + Clone> System<O> {
    /// Like [`run`](Self::run), but advances shards of cores on parallel
    /// worker threads using the optimistic epoch protocol described in the
    /// [`epoch`] module: a parallel core-partitioned speculate phase, a
    /// parallel set-partitioned read-only verify phase, and a serial
    /// mutation-only commit phase.
    ///
    /// The result is **bit-identical** to [`run`](Self::run) for any shard
    /// count and epoch length: every parallel epoch is verified against the
    /// authoritative sequential semantics of its LLC operations and rolled
    /// back to sequential re-execution on any divergence. The observer must
    /// be `Clone` so it can be snapshotted across the commit walk.
    ///
    /// Steady-state epochs perform no heap allocation: all per-epoch state
    /// lives in pooled scratch owned by the system, and the worker threads
    /// persist across epochs (pinned by `tests/no_alloc_hot_path.rs`).
    /// Inspect [`epoch_telemetry`](Self::epoch_telemetry) afterwards to see
    /// how much of the run actually committed in parallel and where the
    /// wall-clock went.
    pub fn run_sharded(&mut self, instructions_per_core: u64, spec: ShardSpec) -> SimReport {
        let shards = spec.shards.clamp(1, self.cores.len().max(1));
        let mut window = EpochWindow::new(spec.epoch_cycles);
        let mut telemetry = EpochTelemetry::default();
        // One shard is the sequential engine; more than 64 cores would
        // overflow the shard membership masks (the sharer bitmap caps the
        // whole simulator at 64 cores anyway).
        if shards <= 1 || self.cores.len() > 64 {
            self.run_window(instructions_per_core, Cycle::MAX);
            self.telemetry = Some(telemetry);
            return self.finish_run();
        }
        self.scratch.prepare(&self.hierarchy, shards);
        if self.pool.as_ref().is_none_or(|p| p.capacity() < shards) {
            self.pool = Some(WorkerPool::new(shards));
        }
        // Non-LRU replacement cannot be verified set-partitioned (tree-PLRU
        // could but is not worth a third code path; random replacement draws
        // victims from one global generator) — those policies take the
        // legacy serial verify-while-mutating replay.
        let set_parallel = self.hierarchy.l3.is_lru();
        loop {
            let cur = self
                .cores
                .iter()
                .filter(|c| !c.is_exhausted() && c.retired() < instructions_per_core)
                .map(Core::now)
                .min();
            let Some(cur) = cur else { break };
            let t_end = cur.saturating_add(window.current());
            if t_end <= cur {
                // Clock saturated; no window can make progress in parallel.
                self.run_window(instructions_per_core, Cycle::MAX);
                break;
            }
            if self
                .observer
                .next_prefetch_due()
                .is_some_and(|due| due < t_end)
            {
                // A monitor prefetch lands inside this window: its drain
                // point depends on the global step schedule, so run the
                // window sequentially.
                let t0 = Instant::now();
                self.run_window(instructions_per_core, t_end);
                telemetry.sequential_ns += elapsed_ns(t0);
                telemetry.sequential_windows += 1;
                continue;
            }
            telemetry.parallel_epochs += 1;
            let epoch_id = self.scratch.begin_epoch();
            let t0 = Instant::now();
            self.speculate_epoch(shards, instructions_per_core, t_end);
            telemetry.speculate_ns += elapsed_ns(t0);
            if self.scratch.shards.iter().any(|s| s.conflict) {
                self.rollback_epoch(&mut telemetry, instructions_per_core, t_end, &mut window);
                continue;
            }
            let committed = if set_parallel {
                self.try_commit_set_parallel(shards, epoch_id, t_end, &mut telemetry)
            } else {
                self.try_commit_legacy(t_end, &mut telemetry)
            };
            if committed {
                telemetry.committed_epochs += 1;
                window.on_commit();
            } else {
                self.rollback_epoch(&mut telemetry, instructions_per_core, t_end, &mut window);
            }
        }
        self.telemetry = Some(telemetry);
        self.finish_run()
    }

    /// Runs the speculate phase of one epoch: partitions cores and their
    /// private caches into contiguous shards and advances each on its own
    /// pool worker against a clone of the LLC. Results (logs, backups,
    /// conflict flags) land in the per-shard scratch.
    fn speculate_epoch(&mut self, shards: usize, instructions_per_core: u64, t_end: Cycle) {
        let Self {
            hierarchy,
            cores,
            scratch,
            pool,
            ..
        } = self;
        let pool = pool.as_ref().expect("worker pool sized before speculation");
        let EpochScratch {
            shards: shard_scratch,
            sizes,
            ..
        } = scratch;
        let sizes: &[usize] = sizes;
        let total_cores = cores.len();
        let Hierarchy {
            config,
            l1,
            l2,
            l3,
            line_shift,
            ..
        } = hierarchy;
        let config: &crate::config::SystemConfig = config;
        let l3: &Cache = l3;
        let line_shift = *line_shift;
        let stop = AtomicBool::new(false);
        // One lock-protected cell per shard, built on the stack: no
        // allocation, and each pool worker takes `&mut` to disjoint state
        // by locking exactly its own cell.
        let mut cells: [Option<Mutex<SpecCell<'_>>>; epoch::MAX_SHARDS] =
            std::array::from_fn(|_| None);
        {
            let mut cores_rest: &mut [Core] = cores;
            let mut l1_rest: &mut [Cache] = l1;
            let mut l2_rest: &mut [Cache] = l2;
            let mut scratch_rest: &mut [epoch::ShardScratch] = shard_scratch;
            let mut base = 0usize;
            for (cell, &size) in cells.iter_mut().zip(sizes) {
                let (shard_cores, rest) = cores_rest.split_at_mut(size);
                cores_rest = rest;
                let (shard_l1, rest) = l1_rest.split_at_mut(size);
                l1_rest = rest;
                let (shard_l2, rest) = l2_rest.split_at_mut(size);
                l2_rest = rest;
                let (shard, rest) = scratch_rest.split_at_mut(1);
                scratch_rest = rest;
                *cell = Some(Mutex::new(SpecCell {
                    task: ShardTask {
                        base,
                        total_cores,
                        cores: shard_cores,
                        l1: shard_l1,
                        l2: shard_l2,
                        llc: l3,
                        config,
                        line_shift,
                    },
                    scratch: &mut shard[0],
                }));
                base += size;
            }
        }
        let cells = &cells[..shards];
        pool.run(shards, &|worker| {
            let mut cell = cells[worker]
                .as_ref()
                .expect("one cell per participant")
                .lock()
                .expect("cell lock uncontended");
            let SpecCell { task, scratch } = &mut *cell;
            epoch::run_shard_epoch(task, scratch, instructions_per_core, t_end, &stop);
        });
    }

    /// Runs the set-partitioned verify phase on the pool workers (read-only
    /// against the live LLC) and, if every prediction held, the serial
    /// mutation-only commit. Returns whether the epoch committed.
    fn try_commit_set_parallel(
        &mut self,
        shards: usize,
        epoch_id: u64,
        t_end: Cycle,
        telemetry: &mut EpochTelemetry,
    ) -> bool {
        let t0 = Instant::now();
        {
            let Self {
                hierarchy,
                scratch,
                pool,
                ..
            } = self;
            let pool = pool.as_ref().expect("worker pool sized before verify");
            let EpochScratch {
                shards: shard_scratch,
                verify,
                masks,
                ..
            } = scratch;
            let shard_scratch: &[epoch::ShardScratch] = shard_scratch;
            let masks: &[u64] = masks;
            let llc = &hierarchy.l3;
            let config = &hierarchy.config;
            let mut cells: [Option<Mutex<&mut epoch::VerifyScratch>>; epoch::MAX_SHARDS] =
                std::array::from_fn(|_| None);
            for (cell, vs) in cells.iter_mut().zip(verify.iter_mut()) {
                *cell = Some(Mutex::new(vs));
            }
            let cells = &cells[..shards];
            pool.run(shards, &|worker| {
                let mut vs = cells[worker]
                    .as_ref()
                    .expect("one cell per participant")
                    .lock()
                    .expect("cell lock uncontended");
                epoch::verify_epoch(shard_scratch, &mut vs, llc, config, masks, epoch_id);
            });
        }
        telemetry.verify_ns += elapsed_ns(t0);
        if self.scratch.verify.iter().any(|v| v.conflict) {
            return false;
        }
        // Every prediction held: commit. The observer walk is the only step
        // that mutates shared state before the epoch is final (a prefetch
        // it schedules may fall due inside the window), so snapshot the
        // observer into the pooled backup first.
        let t1 = Instant::now();
        match &mut self.observer_backup {
            Some(backup) => backup.clone_from(&self.observer),
            None => self.observer_backup = Some(self.observer.clone()),
        }
        {
            let Self {
                scratch, observer, ..
            } = self;
            epoch::commit_observer_walk(&mut scratch.verify, &mut scratch.commit_cursor, observer);
        }
        if self
            .observer
            .next_prefetch_due()
            .is_some_and(|due| due < t_end)
        {
            // A prefetch scheduled during the walk falls due inside the
            // epoch: the sequential engine would have drained it mid-window.
            // Undo the observer — nothing else was touched — and roll back.
            let backup = self.observer_backup.as_mut().expect("snapshotted above");
            std::mem::swap(&mut self.observer, backup);
            telemetry.commit_ns += elapsed_ns(t1);
            return false;
        }
        {
            let Self {
                scratch, hierarchy, ..
            } = self;
            let EpochScratch {
                shards: shard_scratch,
                verify,
                ..
            } = scratch;
            epoch::commit_absorb(verify, shard_scratch, hierarchy);
        }
        telemetry.llc_ops_replayed += self.scratch.verify.iter().map(|v| v.ops).sum::<u64>();
        telemetry.commit_ns += elapsed_ns(t1);
        true
    }

    /// The serial verify-while-mutating replay used for non-LRU replacement
    /// policies: snapshots the LLC/DRAM/statistics/observer, replays the
    /// merged logs against them, and restores everything on divergence.
    /// Returns whether the epoch committed.
    fn try_commit_legacy(&mut self, t_end: Cycle, telemetry: &mut EpochTelemetry) -> bool {
        let t0 = Instant::now();
        // The LLC backup reuses a persistent buffer (`clone_from`); the rest
        // is cloned fresh — only the ablation configurations take this path,
        // so its per-epoch allocations are accepted.
        match &mut self.scratch.llc_backup {
            Some(backup) => backup.clone_from(&self.hierarchy.l3),
            None => self.scratch.llc_backup = Some(self.hierarchy.l3.clone()),
        }
        let dram_backup = self.hierarchy.dram.clone();
        let stats_backup = self.hierarchy.stats.clone();
        let observer_backup = self.observer.clone();
        let replayed = {
            let Self {
                scratch,
                hierarchy,
                observer,
                ..
            } = self;
            let EpochScratch {
                shards,
                commit_cursor,
                masks,
                ..
            } = scratch;
            epoch::replay_logs(shards, commit_cursor, masks, hierarchy, observer)
        };
        let committed = match replayed {
            // A prefetch scheduled during the replay that falls due inside
            // the epoch would have been drained mid-epoch by the sequential
            // engine: treat it as a conflict.
            Ok(ops) => {
                if self
                    .observer
                    .next_prefetch_due()
                    .is_some_and(|due| due < t_end)
                {
                    None
                } else {
                    Some(ops)
                }
            }
            Err(epoch::Conflict) => None,
        };
        let result = match committed {
            Some(ops) => {
                for shard in &self.scratch.shards {
                    self.hierarchy.stats.absorb(&shard.stats);
                }
                telemetry.llc_ops_replayed += ops;
                true
            }
            None => {
                // Swap the trashed LLC out for the backup; the backup buffer
                // (now holding garbage) is overwritten by `clone_from` on
                // the next epoch.
                std::mem::swap(
                    &mut self.hierarchy.l3,
                    self.scratch
                        .llc_backup
                        .as_mut()
                        .expect("backup taken above"),
                );
                self.hierarchy.dram = dram_backup;
                self.hierarchy.stats = stats_backup;
                self.observer = observer_backup;
                false
            }
        };
        // The fused serial verify+commit is this path's whole barrier cost.
        telemetry.commit_ns += elapsed_ns(t0);
        result
    }

    /// Restores every shard to its epoch-start state, re-executes the window
    /// sequentially, and resets the adaptive window.
    fn rollback_epoch(
        &mut self,
        telemetry: &mut EpochTelemetry,
        instructions_per_core: u64,
        t_end: Cycle,
        window: &mut EpochWindow,
    ) {
        telemetry.rollbacks += 1;
        {
            let Self {
                scratch,
                cores,
                hierarchy,
                ..
            } = self;
            let EpochScratch { shards, sizes, .. } = scratch;
            let mut base = 0usize;
            for (shard, &size) in shards.iter_mut().zip(sizes.iter()) {
                epoch::rollback_shard(shard, base, cores, hierarchy);
                base += size;
            }
        }
        let t0 = Instant::now();
        self.run_window(instructions_per_core, t_end);
        telemetry.sequential_ns += elapsed_ns(t0);
        telemetry.sequential_windows += 1;
        window.on_rollback();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::core::Access;
    use crate::observer::NullObserver;
    use crate::types::{Addr, CoreId};

    fn stride_source(start: u64, stride: u64, think: Cycle) -> Box<dyn AccessSource + Send> {
        let mut addr = start;
        Box::new(move || {
            addr += stride;
            Some(Access::read(Addr(addr)).after(think))
        })
    }

    #[test]
    fn run_retires_requested_instructions() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 9));
        sys.set_source(CoreId(1), stride_source(1 << 30, 64, 9));
        let report = sys.run(1_000);
        for &i in &report.instructions {
            assert!(i >= 1_000, "retired {i}");
        }
        assert!(report.makespan() >= 1_000);
        assert!(report.ipc(CoreId(0)) > 0.0);
    }

    #[test]
    fn idle_core_finishes_immediately() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 1));
        // Core 1 keeps the default empty source.
        let report = sys.run(100);
        assert_eq!(report.instructions[1], 0);
        assert_eq!(report.completion_cycles[1], 0);
        assert!(report.instructions[0] >= 100);
    }

    #[test]
    fn hot_loop_is_faster_than_streaming() {
        // A tiny working set (all L1 hits) must finish sooner than a stream
        // of cold misses.
        let hot = {
            let mut i = 0u64;
            move || {
                i += 1;
                Some(Access::read(Addr((i % 4) * 64)).after(1))
            }
        };
        let mut sys_hot = System::new(SystemConfig::small_test(), NullObserver);
        sys_hot.set_source(CoreId(0), Box::new(hot));
        let hot_time = sys_hot.run(2_000).completion_cycles[0];

        let mut sys_cold = System::new(SystemConfig::small_test(), NullObserver);
        sys_cold.set_source(CoreId(0), stride_source(0, 1 << 20, 1));
        let cold_time = sys_cold.run(2_000).completion_cycles[0];

        assert!(
            hot_time * 10 < cold_time,
            "hot {hot_time} vs cold {cold_time}"
        );
    }

    #[test]
    fn deterministic_reruns() {
        let run = || {
            let mut sys = System::new(SystemConfig::small_test(), NullObserver);
            sys.set_source(CoreId(0), stride_source(0, 4096, 3));
            sys.set_source(CoreId(1), stride_source(1 << 28, 8192, 5));
            let r = sys.run(5_000);
            (r.completion_cycles.clone(), r.stats.llc_evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_totals() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 0));
        let r = sys.run(50);
        assert_eq!(r.total_instructions(), r.instructions.iter().sum::<u64>());
        assert!(r.dram_reads > 0);
    }
}
