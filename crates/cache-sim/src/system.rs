//! The multi-core system: cores + hierarchy + memory-controller observer.
//!
//! # Scheduling
//!
//! [`System::run`] is event-driven: live cores sit in a binary min-heap keyed
//! by `(local clock, core index)`, and the earliest core is popped and
//! stepped. While the popped core remains strictly earliest it keeps
//! stepping without touching the heap (the common case — cores drift apart
//! in time), so scheduler cost is amortized far below one heap operation per
//! access. Prefetch draining is likewise event-driven: the observer is asked
//! for its earliest pending release time (a static call on the concrete
//! observer type) and drained only when that time has arrived, instead of
//! being polled before every step.
//!
//! The schedule this produces is identical to the previous linear min-scan
//! (ties broken toward the lowest core index), which
//! `tests/scheduler_regression.rs` pins bit-exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::core::{AccessSource, Core};
use crate::hierarchy::Hierarchy;
use crate::observer::TrafficObserver;
use crate::stats::HierarchyStats;
use crate::types::{CoreId, Cycle};

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-core completion time (local clock when the core finished its
    /// instruction quota or exhausted its source).
    pub completion_cycles: Vec<Cycle>,
    /// Per-core instructions retired.
    pub instructions: Vec<u64>,
    /// Hierarchy statistics at the end of the run.
    pub stats: HierarchyStats,
    /// Total DRAM demand reads.
    pub dram_reads: u64,
    /// Total DRAM prefetch reads.
    pub dram_prefetch_reads: u64,
    /// Total DRAM writebacks.
    pub dram_writes: u64,
}

impl SimReport {
    /// Overall execution time: the slowest core's completion time.
    #[must_use]
    pub fn makespan(&self) -> Cycle {
        self.completion_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Instructions per cycle of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn ipc(&self, core: CoreId) -> f64 {
        let cycles = self.completion_cycles[core.0];
        if cycles == 0 {
            0.0
        } else {
            self.instructions[core.0] as f64 / cycles as f64
        }
    }

    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }
}

/// A complete simulated machine.
///
/// Generic over the observer so callers keep typed access to their monitor
/// (e.g. PiPoMonitor statistics) after the run.
///
/// # Examples
///
/// ```
/// use cache_sim::{Access, Addr, NullObserver, System, SystemConfig};
///
/// let mut addr = 0u64;
/// let stream = move || {
///     addr += 64;
///     Some(Access::read(Addr(addr)).after(3))
/// };
/// let mut system = System::new(SystemConfig::small_test(), NullObserver);
/// system.set_source(cache_sim::CoreId(0), Box::new(stream));
/// let report = system.run(10_000);
/// assert!(report.makespan() > 0);
/// ```
#[derive(Debug)]
pub struct System<O: TrafficObserver> {
    hierarchy: Hierarchy,
    cores: Vec<Core>,
    observer: O,
    /// Reusable scheduler heap of `(next event time, core index)`; kept
    /// across runs so repeated [`run`](Self::run) calls do not reallocate.
    schedule: BinaryHeap<Reverse<(Cycle, usize)>>,
}

/// A source that immediately reports exhaustion (default for cores without
/// an assigned workload).
struct EmptySource;

impl AccessSource for EmptySource {
    fn next_access(&mut self) -> Option<crate::core::Access> {
        None
    }
}

impl<O: TrafficObserver> System<O> {
    /// Builds a system with idle cores; assign workloads with
    /// [`set_source`](Self::set_source).
    #[must_use]
    pub fn new(config: crate::config::SystemConfig, observer: O) -> Self {
        let cores: Vec<Core> = (0..config.cores)
            .map(|i| Core::new(CoreId(i), Box::new(EmptySource)))
            .collect();
        let schedule = BinaryHeap::with_capacity(cores.len());
        Self {
            hierarchy: Hierarchy::new(config),
            cores,
            observer,
            schedule,
        }
    }

    /// Assigns a workload to a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_source(&mut self, core: CoreId, source: Box<dyn AccessSource + Send>) {
        self.cores[core.0] = Core::new(core, source);
    }

    /// The underlying hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The memory-controller observer (e.g. the PiPoMonitor instance).
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Runs until every core has retired `instructions_per_core` instructions
    /// (or exhausted its source). Cores interleave in local-time order, which
    /// approximates concurrent execution on a shared hierarchy.
    ///
    /// Steady state performs no heap allocation per simulated access: the
    /// scheduler heap, the observer's prefetch queue, and the drain buffer
    /// are all reused across steps.
    pub fn run(&mut self, instructions_per_core: u64) -> SimReport {
        self.schedule.clear();
        for (idx, core) in self.cores.iter().enumerate() {
            if !core.is_exhausted() && core.retired() < instructions_per_core {
                self.schedule.push(Reverse((core.now(), idx)));
            }
        }
        while let Some(Reverse((_, idx))) = self.schedule.pop() {
            // Step the popped core for as long as it stays the globally
            // earliest `(time, index)` event, draining due prefetches at the
            // core's clock before each step (exactly the schedule the linear
            // min-scan produced, minus the per-step scan).
            loop {
                let now = self.cores[idx].now();
                if self
                    .observer
                    .next_prefetch_due()
                    .is_some_and(|due| due <= now)
                {
                    self.hierarchy.drain_prefetches(now, &mut self.observer);
                }
                if !self.cores[idx].step(&mut self.hierarchy, &mut self.observer) {
                    break; // Source exhausted; the core leaves the schedule.
                }
                if self.cores[idx].retired() >= instructions_per_core {
                    break; // Quota reached.
                }
                let after = self.cores[idx].now();
                if let Some(&Reverse(next)) = self.schedule.peek() {
                    if (after, idx) >= next {
                        self.schedule.push(Reverse((after, idx)));
                        break;
                    }
                }
            }
        }
        // Flush any prefetches still pending at the end of the run.
        let end = self.cores.iter().map(Core::now).max().unwrap_or(0);
        self.hierarchy.drain_prefetches(end, &mut self.observer);
        SimReport {
            completion_cycles: self.cores.iter().map(Core::now).collect(),
            instructions: self.cores.iter().map(Core::retired).collect(),
            stats: self.hierarchy.stats().clone(),
            dram_reads: self.hierarchy.dram().reads(),
            dram_prefetch_reads: self.hierarchy.dram().prefetch_reads(),
            dram_writes: self.hierarchy.dram().writes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::core::Access;
    use crate::observer::NullObserver;
    use crate::types::{Addr, CoreId};

    fn stride_source(start: u64, stride: u64, think: Cycle) -> Box<dyn AccessSource + Send> {
        let mut addr = start;
        Box::new(move || {
            addr += stride;
            Some(Access::read(Addr(addr)).after(think))
        })
    }

    #[test]
    fn run_retires_requested_instructions() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 9));
        sys.set_source(CoreId(1), stride_source(1 << 30, 64, 9));
        let report = sys.run(1_000);
        for &i in &report.instructions {
            assert!(i >= 1_000, "retired {i}");
        }
        assert!(report.makespan() >= 1_000);
        assert!(report.ipc(CoreId(0)) > 0.0);
    }

    #[test]
    fn idle_core_finishes_immediately() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 1));
        // Core 1 keeps the default empty source.
        let report = sys.run(100);
        assert_eq!(report.instructions[1], 0);
        assert_eq!(report.completion_cycles[1], 0);
        assert!(report.instructions[0] >= 100);
    }

    #[test]
    fn hot_loop_is_faster_than_streaming() {
        // A tiny working set (all L1 hits) must finish sooner than a stream
        // of cold misses.
        let hot = {
            let mut i = 0u64;
            move || {
                i += 1;
                Some(Access::read(Addr((i % 4) * 64)).after(1))
            }
        };
        let mut sys_hot = System::new(SystemConfig::small_test(), NullObserver);
        sys_hot.set_source(CoreId(0), Box::new(hot));
        let hot_time = sys_hot.run(2_000).completion_cycles[0];

        let mut sys_cold = System::new(SystemConfig::small_test(), NullObserver);
        sys_cold.set_source(CoreId(0), stride_source(0, 1 << 20, 1));
        let cold_time = sys_cold.run(2_000).completion_cycles[0];

        assert!(
            hot_time * 10 < cold_time,
            "hot {hot_time} vs cold {cold_time}"
        );
    }

    #[test]
    fn deterministic_reruns() {
        let run = || {
            let mut sys = System::new(SystemConfig::small_test(), NullObserver);
            sys.set_source(CoreId(0), stride_source(0, 4096, 3));
            sys.set_source(CoreId(1), stride_source(1 << 28, 8192, 5));
            let r = sys.run(5_000);
            (r.completion_cycles.clone(), r.stats.llc_evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_totals() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 0));
        let r = sys.run(50);
        assert_eq!(r.total_instructions(), r.instructions.iter().sum::<u64>());
        assert!(r.dram_reads > 0);
    }
}
