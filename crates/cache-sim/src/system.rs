//! The multi-core system: cores + hierarchy + memory-controller observer.
//!
//! # Scheduling
//!
//! [`System::run`] is event-driven: live cores sit in a binary min-heap keyed
//! by `(local clock, core index)`, and the earliest core is popped and
//! stepped. While the popped core remains strictly earliest it keeps
//! stepping without touching the heap (the common case — cores drift apart
//! in time), so scheduler cost is amortized far below one heap operation per
//! access. Prefetch draining is likewise event-driven: the observer is asked
//! for its earliest pending release time (a static call on the concrete
//! observer type) and drained only when that time has arrived, instead of
//! being polled before every step.
//!
//! The schedule this produces is identical to the previous linear min-scan
//! (ties broken toward the lowest core index), which
//! `tests/scheduler_regression.rs` pins bit-exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicBool;

use crate::cache::Cache;
use crate::core::{AccessSource, Core};
use crate::epoch::{self, EpochTelemetry, ShardSpec, ShardTask};
use crate::hierarchy::Hierarchy;
use crate::observer::TrafficObserver;
use crate::stats::HierarchyStats;
use crate::types::{CoreId, Cycle};

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-core completion time (local clock when the core finished its
    /// instruction quota or exhausted its source).
    pub completion_cycles: Vec<Cycle>,
    /// Per-core instructions retired.
    pub instructions: Vec<u64>,
    /// Hierarchy statistics at the end of the run.
    pub stats: HierarchyStats,
    /// Total DRAM demand reads.
    pub dram_reads: u64,
    /// Total DRAM prefetch reads.
    pub dram_prefetch_reads: u64,
    /// Total DRAM writebacks.
    pub dram_writes: u64,
}

impl SimReport {
    /// Overall execution time: the slowest core's completion time.
    #[must_use]
    pub fn makespan(&self) -> Cycle {
        self.completion_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Instructions per cycle of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn ipc(&self, core: CoreId) -> f64 {
        let cycles = self.completion_cycles[core.0];
        if cycles == 0 {
            0.0
        } else {
            self.instructions[core.0] as f64 / cycles as f64
        }
    }

    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }
}

/// A complete simulated machine.
///
/// Generic over the observer so callers keep typed access to their monitor
/// (e.g. PiPoMonitor statistics) after the run.
///
/// # Examples
///
/// ```
/// use cache_sim::{Access, Addr, NullObserver, System, SystemConfig};
///
/// let mut addr = 0u64;
/// let stream = move || {
///     addr += 64;
///     Some(Access::read(Addr(addr)).after(3))
/// };
/// let mut system = System::new(SystemConfig::small_test(), NullObserver);
/// system.set_source(cache_sim::CoreId(0), Box::new(stream));
/// let report = system.run(10_000);
/// assert!(report.makespan() > 0);
/// ```
#[derive(Debug)]
pub struct System<O: TrafficObserver> {
    hierarchy: Hierarchy,
    cores: Vec<Core>,
    observer: O,
    /// Reusable scheduler heap of `(next event time, core index)`; kept
    /// across runs so repeated [`run`](Self::run) calls do not reallocate.
    schedule: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Execution counters of the last [`run_sharded`](Self::run_sharded)
    /// call; `None` after a plain [`run`](Self::run).
    telemetry: Option<EpochTelemetry>,
    /// Per-shard speculative LLC copies, allocated on the first sharded
    /// epoch and reused across epochs (and runs) so speculation never
    /// re-allocates LLC-sized buffers.
    shard_llc: Vec<Cache>,
    /// Pre-replay LLC backup, likewise reused across epochs.
    llc_backup: Option<Cache>,
}

/// A source that immediately reports exhaustion (default for cores without
/// an assigned workload).
struct EmptySource;

impl AccessSource for EmptySource {
    fn next_access(&mut self) -> Option<crate::core::Access> {
        None
    }
}

impl<O: TrafficObserver> System<O> {
    /// Builds a system with idle cores; assign workloads with
    /// [`set_source`](Self::set_source).
    #[must_use]
    pub fn new(config: crate::config::SystemConfig, observer: O) -> Self {
        let cores: Vec<Core> = (0..config.cores)
            .map(|i| Core::new(CoreId(i), Box::new(EmptySource)))
            .collect();
        let schedule = BinaryHeap::with_capacity(cores.len());
        Self {
            hierarchy: Hierarchy::new(config),
            cores,
            observer,
            schedule,
            telemetry: None,
            shard_llc: Vec::new(),
            llc_backup: None,
        }
    }

    /// Assigns a workload to a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_source(&mut self, core: CoreId, source: Box<dyn AccessSource + Send>) {
        self.cores[core.0] = Core::new(core, source);
    }

    /// The underlying hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The memory-controller observer (e.g. the PiPoMonitor instance).
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Runs until every core has retired `instructions_per_core` instructions
    /// (or exhausted its source). Cores interleave in local-time order, which
    /// approximates concurrent execution on a shared hierarchy.
    ///
    /// Steady state performs no heap allocation per simulated access: the
    /// scheduler heap, the observer's prefetch queue, and the drain buffer
    /// are all reused across steps.
    pub fn run(&mut self, instructions_per_core: u64) -> SimReport {
        self.telemetry = None;
        self.run_window(instructions_per_core, Cycle::MAX);
        self.finish_run()
    }

    /// Executes every step whose start time falls before `t_end` (pass
    /// [`Cycle::MAX`] for an unbounded run). This is the sequential engine
    /// proper; [`run`](Self::run) is one unbounded window and
    /// [`run_sharded`](Self::run_sharded) re-executes rolled-back or
    /// prefetch-gated epochs through bounded windows. Because the scheduler
    /// orders steps globally by `(start time, core index)`, a run chopped
    /// into windows executes the exact step sequence of an unbounded run.
    fn run_window(&mut self, instructions_per_core: u64, t_end: Cycle) {
        self.schedule.clear();
        for (idx, core) in self.cores.iter().enumerate() {
            if !core.is_exhausted() && core.retired() < instructions_per_core && core.now() < t_end
            {
                self.schedule.push(Reverse((core.now(), idx)));
            }
        }
        while let Some(Reverse((_, idx))) = self.schedule.pop() {
            // Step the popped core for as long as it stays the globally
            // earliest `(time, index)` event, draining due prefetches at the
            // core's clock before each step (exactly the schedule the linear
            // min-scan produced, minus the per-step scan).
            loop {
                let now = self.cores[idx].now();
                if now >= t_end {
                    break; // The core's next step belongs to a later window.
                }
                if self
                    .observer
                    .next_prefetch_due()
                    .is_some_and(|due| due <= now)
                {
                    self.hierarchy.drain_prefetches(now, &mut self.observer);
                }
                if !self.cores[idx].step(&mut self.hierarchy, &mut self.observer) {
                    break; // Source exhausted; the core leaves the schedule.
                }
                if self.cores[idx].retired() >= instructions_per_core {
                    break; // Quota reached.
                }
                let after = self.cores[idx].now();
                if let Some(&Reverse(next)) = self.schedule.peek() {
                    if (after, idx) >= next {
                        self.schedule.push(Reverse((after, idx)));
                        break;
                    }
                }
            }
        }
    }

    /// Flushes pending prefetches and assembles the report (shared tail of
    /// [`run`](Self::run) and [`run_sharded`](Self::run_sharded)).
    fn finish_run(&mut self) -> SimReport {
        let end = self.cores.iter().map(Core::now).max().unwrap_or(0);
        self.hierarchy.drain_prefetches(end, &mut self.observer);
        SimReport {
            completion_cycles: self.cores.iter().map(Core::now).collect(),
            instructions: self.cores.iter().map(Core::retired).collect(),
            stats: self.hierarchy.stats().clone(),
            dram_reads: self.hierarchy.dram().reads(),
            dram_prefetch_reads: self.hierarchy.dram().prefetch_reads(),
            dram_writes: self.hierarchy.dram().writes(),
        }
    }

    /// Telemetry of the last [`run_sharded`](Self::run_sharded) call: how
    /// many epochs ran in parallel, committed, or rolled back. `None` after
    /// a plain [`run`](Self::run).
    #[must_use]
    pub fn epoch_telemetry(&self) -> Option<&EpochTelemetry> {
        self.telemetry.as_ref()
    }
}

impl<O: TrafficObserver + Clone> System<O> {
    /// Like [`run`](Self::run), but advances shards of cores on parallel
    /// worker threads using the optimistic epoch protocol described in the
    /// [`epoch`] module.
    ///
    /// The result is **bit-identical** to [`run`](Self::run) for any shard
    /// count and epoch length: every parallel epoch is verified against an
    /// authoritative sequential replay of its LLC operations and rolled back
    /// to sequential re-execution on any divergence. The observer must be
    /// `Clone` so it can be snapshotted for rollback.
    ///
    /// Inspect [`epoch_telemetry`](Self::epoch_telemetry) afterwards to see
    /// how much of the run actually committed in parallel.
    pub fn run_sharded(&mut self, instructions_per_core: u64, spec: ShardSpec) -> SimReport {
        let shards = spec.shards.clamp(1, self.cores.len().max(1));
        let base_cycles = spec.epoch_cycles.max(1);
        // Adaptive windowing: the per-epoch snapshot cost (LLC clones for
        // every worker plus the rollback backup) is independent of window
        // length, so commit-heavy workloads want long windows while
        // conflict-heavy ones want short windows that bound the wasted
        // speculation. Double the window after every committed epoch (capped
        // at 64× the base) and reset to the base on rollback — the commit
        // history is deterministic, so the window sequence (and the result)
        // stays deterministic too.
        const MAX_WINDOW_GROWTH: Cycle = 64;
        let max_cycles = base_cycles.saturating_mul(MAX_WINDOW_GROWTH);
        let mut window = base_cycles;
        let mut telemetry = EpochTelemetry::default();
        if shards <= 1 {
            // One shard is the sequential engine.
            self.run_window(instructions_per_core, Cycle::MAX);
            self.telemetry = Some(telemetry);
            return self.finish_run();
        }
        let masks = epoch::shard_masks(self.cores.len(), shards);
        loop {
            let cur = self
                .cores
                .iter()
                .filter(|c| !c.is_exhausted() && c.retired() < instructions_per_core)
                .map(Core::now)
                .min();
            let Some(cur) = cur else { break };
            let t_end = cur.saturating_add(window);
            if t_end <= cur {
                // Clock saturated; no window can make progress in parallel.
                self.run_window(instructions_per_core, Cycle::MAX);
                break;
            }
            if self
                .observer
                .next_prefetch_due()
                .is_some_and(|due| due < t_end)
            {
                // A monitor prefetch lands inside this window: its drain
                // point depends on the global step schedule, so run the
                // window sequentially.
                self.run_window(instructions_per_core, t_end);
                telemetry.sequential_windows += 1;
                continue;
            }
            telemetry.parallel_epochs += 1;
            let outcomes = self.speculate_epoch(shards, instructions_per_core, t_end);
            if outcomes.iter().any(epoch::ShardOutcome::conflicted) {
                self.rollback(outcomes);
                telemetry.rollbacks += 1;
                self.run_window(instructions_per_core, t_end);
                telemetry.sequential_windows += 1;
                window = base_cycles;
                continue;
            }
            // Snapshot the shared state the replay mutates, then verify.
            // The LLC backup reuses a persistent buffer (`clone_from`); the
            // rest is small enough to clone fresh.
            match &mut self.llc_backup {
                Some(backup) => backup.clone_from(&self.hierarchy.l3),
                None => self.llc_backup = Some(self.hierarchy.l3.clone()),
            }
            let dram_backup = self.hierarchy.dram.clone();
            let stats_backup = self.hierarchy.stats.clone();
            let observer_backup = self.observer.clone();
            let logs: Vec<&[epoch::LlcOp]> =
                outcomes.iter().map(epoch::ShardOutcome::log).collect();
            let replayed =
                epoch::replay_logs(&logs, &masks, &mut self.hierarchy, &mut self.observer);
            drop(logs);
            let committed = match replayed {
                // A prefetch scheduled during the replay that falls due
                // inside the epoch would have been drained mid-epoch by the
                // sequential engine: treat it as a conflict.
                Ok(ops) => {
                    if self
                        .observer
                        .next_prefetch_due()
                        .is_some_and(|due| due < t_end)
                    {
                        None
                    } else {
                        Some(ops)
                    }
                }
                Err(epoch::Conflict) => None,
            };
            match committed {
                Some(ops) => {
                    for outcome in &outcomes {
                        self.hierarchy.stats.absorb(outcome.stats());
                    }
                    telemetry.committed_epochs += 1;
                    telemetry.llc_ops_replayed += ops;
                    window = window.saturating_mul(2).min(max_cycles);
                }
                None => {
                    // Swap the trashed LLC out for the backup; the backup
                    // buffer (now holding garbage) is overwritten by
                    // `clone_from` on the next epoch.
                    std::mem::swap(
                        &mut self.hierarchy.l3,
                        self.llc_backup.as_mut().expect("backup taken above"),
                    );
                    self.hierarchy.dram = dram_backup;
                    self.hierarchy.stats = stats_backup;
                    self.observer = observer_backup;
                    self.rollback(outcomes);
                    telemetry.rollbacks += 1;
                    self.run_window(instructions_per_core, t_end);
                    telemetry.sequential_windows += 1;
                    window = base_cycles;
                }
            }
        }
        self.telemetry = Some(telemetry);
        self.finish_run()
    }

    /// Runs the speculate phase of one epoch: partitions cores and their
    /// private caches into contiguous shards and advances each on its own
    /// worker thread against a clone of the LLC.
    fn speculate_epoch(
        &mut self,
        shards: usize,
        instructions_per_core: u64,
        t_end: Cycle,
    ) -> Vec<epoch::ShardOutcome> {
        let total_cores = self.cores.len();
        let sizes = epoch::shard_sizes(total_cores, shards);
        let stop = AtomicBool::new(false);
        // Per-shard scratch LLCs are lazily grown once, then reused: each
        // worker `clone_from`s the epoch-start snapshot into its buffer.
        while self.shard_llc.len() < sizes.len() {
            self.shard_llc.push(self.hierarchy.l3.clone());
        }
        let Hierarchy {
            config,
            l1,
            l2,
            l3,
            line_shift,
            ..
        } = &mut self.hierarchy;
        let config: &crate::config::SystemConfig = config;
        let l3: &Cache = l3;
        let line_shift = *line_shift;
        std::thread::scope(|scope| {
            let mut cores_rest: &mut [Core] = &mut self.cores;
            let mut l1_rest: &mut [Cache] = l1;
            let mut l2_rest: &mut [Cache] = l2;
            let mut scratch_rest: &mut [Cache] = &mut self.shard_llc;
            let mut base = 0usize;
            let mut handles = Vec::with_capacity(sizes.len());
            for &size in &sizes {
                let (shard_cores, rest) = cores_rest.split_at_mut(size);
                cores_rest = rest;
                let (shard_l1, rest) = l1_rest.split_at_mut(size);
                l1_rest = rest;
                let (shard_l2, rest) = l2_rest.split_at_mut(size);
                l2_rest = rest;
                let (scratch, rest) = scratch_rest.split_at_mut(1);
                scratch_rest = rest;
                let task = ShardTask {
                    base,
                    total_cores,
                    cores: shard_cores,
                    l1: shard_l1,
                    l2: shard_l2,
                    llc: l3,
                    llc_scratch: &mut scratch[0],
                    config,
                    line_shift,
                };
                let stop = &stop;
                handles.push(scope.spawn(move || {
                    epoch::run_shard_epoch(task, instructions_per_core, t_end, stop)
                }));
                base += size;
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker thread panicked"))
                .collect()
        })
    }

    /// Restores every shard to its epoch-start state.
    fn rollback(&mut self, outcomes: Vec<epoch::ShardOutcome>) {
        for outcome in outcomes {
            epoch::rollback_shard(outcome, &mut self.cores, &mut self.hierarchy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::core::Access;
    use crate::observer::NullObserver;
    use crate::types::{Addr, CoreId};

    fn stride_source(start: u64, stride: u64, think: Cycle) -> Box<dyn AccessSource + Send> {
        let mut addr = start;
        Box::new(move || {
            addr += stride;
            Some(Access::read(Addr(addr)).after(think))
        })
    }

    #[test]
    fn run_retires_requested_instructions() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 9));
        sys.set_source(CoreId(1), stride_source(1 << 30, 64, 9));
        let report = sys.run(1_000);
        for &i in &report.instructions {
            assert!(i >= 1_000, "retired {i}");
        }
        assert!(report.makespan() >= 1_000);
        assert!(report.ipc(CoreId(0)) > 0.0);
    }

    #[test]
    fn idle_core_finishes_immediately() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 1));
        // Core 1 keeps the default empty source.
        let report = sys.run(100);
        assert_eq!(report.instructions[1], 0);
        assert_eq!(report.completion_cycles[1], 0);
        assert!(report.instructions[0] >= 100);
    }

    #[test]
    fn hot_loop_is_faster_than_streaming() {
        // A tiny working set (all L1 hits) must finish sooner than a stream
        // of cold misses.
        let hot = {
            let mut i = 0u64;
            move || {
                i += 1;
                Some(Access::read(Addr((i % 4) * 64)).after(1))
            }
        };
        let mut sys_hot = System::new(SystemConfig::small_test(), NullObserver);
        sys_hot.set_source(CoreId(0), Box::new(hot));
        let hot_time = sys_hot.run(2_000).completion_cycles[0];

        let mut sys_cold = System::new(SystemConfig::small_test(), NullObserver);
        sys_cold.set_source(CoreId(0), stride_source(0, 1 << 20, 1));
        let cold_time = sys_cold.run(2_000).completion_cycles[0];

        assert!(
            hot_time * 10 < cold_time,
            "hot {hot_time} vs cold {cold_time}"
        );
    }

    #[test]
    fn deterministic_reruns() {
        let run = || {
            let mut sys = System::new(SystemConfig::small_test(), NullObserver);
            sys.set_source(CoreId(0), stride_source(0, 4096, 3));
            sys.set_source(CoreId(1), stride_source(1 << 28, 8192, 5));
            let r = sys.run(5_000);
            (r.completion_cycles.clone(), r.stats.llc_evictions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn report_totals() {
        let mut sys = System::new(SystemConfig::small_test(), NullObserver);
        sys.set_source(CoreId(0), stride_source(0, 64, 0));
        let r = sys.run(50);
        assert_eq!(r.total_instructions(), r.instructions.iter().sum::<u64>());
        assert!(r.dram_reads > 0);
    }
}
