//! The memory-controller traffic hook where detection-based defenses attach.
//!
//! PiPoMonitor "locates inside the on-chip memory controller and observes the
//! memory access requests from LLC without extra network traffic" (paper
//! §IV). The [`TrafficObserver`] trait is exactly that vantage point: it sees
//! every LLC→memory demand fetch and every LLC eviction, and may inject
//! prefetches back into the LLC.

use crate::types::{Cycle, LineAddr};

/// Observes LLC↔memory traffic and optionally requests protections.
///
/// Implementations must be deterministic for reproducible experiments.
pub trait TrafficObserver {
    /// Called when the LLC misses and a demand fetch goes to memory.
    ///
    /// Returns `true` when the incoming line must be tagged as a protected
    /// (Ping-Pong) line in the LLC. The default implementation never tags.
    fn on_memory_fetch(&mut self, line: LineAddr, now: Cycle) -> bool {
        let _ = (line, now);
        false
    }

    /// Called when the LLC evicts a line. `protected` and `accessed` are the
    /// line's tag bits (the `pEvict` message carries them to the monitor).
    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        let _ = (line, protected, accessed, now);
    }

    /// Drains prefetches that have become due at or before `now`. The system
    /// inserts each returned line into the LLC via the memory fetch queue.
    fn due_prefetches(&mut self, now: Cycle) -> Vec<LineAddr> {
        let _ = now;
        Vec::new()
    }
}

/// An observer that does nothing: the unprotected baseline system.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TrafficObserver for NullObserver {}

/// A recording observer for tests: remembers every event it saw.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Lines fetched from memory, in order.
    pub fetches: Vec<(LineAddr, Cycle)>,
    /// LLC evictions `(line, protected, accessed, cycle)`, in order.
    pub evictions: Vec<(LineAddr, bool, bool, Cycle)>,
    /// Lines to tag on fetch.
    pub tag_lines: Vec<LineAddr>,
}

impl TrafficObserver for RecordingObserver {
    fn on_memory_fetch(&mut self, line: LineAddr, now: Cycle) -> bool {
        self.fetches.push((line, now));
        self.tag_lines.contains(&line)
    }

    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        self.evictions.push((line, protected, accessed, now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_never_tags() {
        let mut o = NullObserver;
        assert!(!o.on_memory_fetch(LineAddr(1), 0));
        o.on_llc_eviction(LineAddr(1), true, true, 5);
        assert!(o.due_prefetches(100).is_empty());
    }

    #[test]
    fn recording_observer_records_and_tags() {
        let mut o = RecordingObserver::default();
        o.tag_lines.push(LineAddr(7));
        assert!(!o.on_memory_fetch(LineAddr(1), 10));
        assert!(o.on_memory_fetch(LineAddr(7), 20));
        o.on_llc_eviction(LineAddr(7), true, false, 30);
        assert_eq!(o.fetches.len(), 2);
        assert_eq!(o.evictions, vec![(LineAddr(7), true, false, 30)]);
    }
}
