//! The memory-controller traffic hook where detection-based defenses attach.
//!
//! PiPoMonitor "locates inside the on-chip memory controller and observes the
//! memory access requests from LLC without extra network traffic" (paper
//! §IV). The [`TrafficObserver`] trait is exactly that vantage point: it sees
//! every LLC→memory demand fetch and every LLC eviction, and may inject
//! prefetches back into the LLC.
//!
//! # Allocation-free draining
//!
//! Prefetch draining is a sink-style API: the system hands the observer a
//! reusable buffer ([`drain_due_prefetches`](TrafficObserver::drain_due_prefetches))
//! instead of receiving a freshly allocated `Vec` per call, and first asks
//! [`next_prefetch_due`](TrafficObserver::next_prefetch_due) so it only
//! drains when something is actually due. Steady-state simulation therefore
//! performs no per-access heap allocation on the observer path.

use crate::types::{Cycle, LineAddr};

/// Observes LLC↔memory traffic and optionally requests protections.
///
/// Implementations must be deterministic for reproducible experiments, and
/// `Send` so whole systems can be moved to (or built inside) worker threads
/// of a parallel sweep. All observers are plain owned data, so this costs
/// nothing in practice.
pub trait TrafficObserver: Send {
    /// Called when the LLC misses and a demand fetch goes to memory.
    ///
    /// Returns `true` when the incoming line must be tagged as a protected
    /// (Ping-Pong) line in the LLC. The default implementation never tags.
    fn on_memory_fetch(&mut self, line: LineAddr, now: Cycle) -> bool {
        let _ = (line, now);
        false
    }

    /// Called when the LLC evicts a line. `protected` and `accessed` are the
    /// line's tag bits (the `pEvict` message carries them to the monitor).
    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        let _ = (line, protected, accessed, now);
    }

    /// The release time of the next issuable prefetch, or `None` when
    /// nothing can issue.
    ///
    /// "Next issuable" is the observer's call: a FIFO-ordered implementation
    /// (like `PrefetchQueue`) reports its head entry even when a later entry
    /// has an earlier release time — prefetches then issue strictly in
    /// schedule order.
    ///
    /// The system polls this (it is a cheap, non-virtual call on the concrete
    /// observer inside [`System::run`](crate::System::run)) and only invokes
    /// [`drain_due_prefetches`](Self::drain_due_prefetches) when the earliest
    /// release time has been reached — the event-driven alternative to
    /// draining before every simulation step.
    ///
    /// Deliberately *not* defaulted: draining is gated on this method, so an
    /// observer that queued prefetches but reported `None` here would
    /// silently never have them drained. Observers that never prefetch
    /// simply return `None`.
    fn next_prefetch_due(&self) -> Option<Cycle>;

    /// Appends every prefetch issuable at or before `now` into `out`, in
    /// schedule order, removing them from the pending queue.
    ///
    /// `out` is a reusable buffer owned by the caller; implementations must
    /// only `push` (never read stale contents — the caller clears it). The
    /// system inserts each drained line into the LLC via the memory fetch
    /// queue.
    ///
    /// Not defaulted, for the same reason as
    /// [`next_prefetch_due`](Self::next_prefetch_due): an observer that
    /// reported a due time but inherited a no-op drain would silently never
    /// issue its prefetches. Observers that never prefetch leave `out`
    /// untouched.
    fn drain_due_prefetches(&mut self, now: Cycle, out: &mut Vec<LineAddr>);
}

/// An observer that does nothing: the unprotected baseline system.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TrafficObserver for NullObserver {
    fn next_prefetch_due(&self) -> Option<Cycle> {
        None
    }

    fn drain_due_prefetches(&mut self, _now: Cycle, _out: &mut Vec<LineAddr>) {}
}

/// A recording observer for tests: remembers every event it saw.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// Lines fetched from memory, in order.
    pub fetches: Vec<(LineAddr, Cycle)>,
    /// LLC evictions `(line, protected, accessed, cycle)`, in order.
    pub evictions: Vec<(LineAddr, bool, bool, Cycle)>,
    /// Lines to tag on fetch.
    pub tag_lines: Vec<LineAddr>,
}

impl TrafficObserver for RecordingObserver {
    fn on_memory_fetch(&mut self, line: LineAddr, now: Cycle) -> bool {
        self.fetches.push((line, now));
        self.tag_lines.contains(&line)
    }

    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        self.evictions.push((line, protected, accessed, now));
    }

    fn next_prefetch_due(&self) -> Option<Cycle> {
        None
    }

    fn drain_due_prefetches(&mut self, _now: Cycle, _out: &mut Vec<LineAddr>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_never_tags_or_prefetches() {
        let mut o = NullObserver;
        assert!(!o.on_memory_fetch(LineAddr(1), 0));
        o.on_llc_eviction(LineAddr(1), true, true, 5);
        assert_eq!(o.next_prefetch_due(), None);
        let mut out = Vec::new();
        o.drain_due_prefetches(100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn recording_observer_records_and_tags() {
        let mut o = RecordingObserver::default();
        o.tag_lines.push(LineAddr(7));
        assert!(!o.on_memory_fetch(LineAddr(1), 10));
        assert!(o.on_memory_fetch(LineAddr(7), 20));
        o.on_llc_eviction(LineAddr(7), true, false, 30);
        assert_eq!(o.fetches.len(), 2);
        assert_eq!(o.evictions, vec![(LineAddr(7), true, false, 30)]);
    }
}
