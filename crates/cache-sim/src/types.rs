//! Fundamental value types shared across the simulator.

use std::fmt;

/// A simulation timestamp in core clock cycles.
pub type Cycle = u64;

/// A byte-granular physical address.
///
/// # Examples
///
/// ```
/// use cache_sim::{Addr, LineAddr};
///
/// let a = Addr(0x12345);
/// assert_eq!(a.line(64), LineAddr(0x12345 >> 6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address, for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[must_use]
    pub fn line(self, line_size: u64) -> LineAddr {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A line-granular address (byte address divided by the line size).
///
/// This is the unit the caches, the memory controller, and PiPoMonitor's
/// Auto-Cuckoo filter operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    #[must_use]
    pub fn base(self, line_size: u64) -> Addr {
        Addr(self.0 << line_size.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

/// Identifier of a processor core (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Whether this is a store.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// The cache level (or memory) that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Private level-1 data cache.
    L1,
    /// Private level-2 cache.
    L2,
    /// Shared last-level cache.
    L3,
    /// Main memory.
    Memory,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
            Level::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Outcome of a single hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total access latency in cycles.
    pub latency: Cycle,
    /// The level that supplied the data.
    pub served_by: Level,
    /// Whether the access was served by a line that was brought into the LLC
    /// by a (PiPoMonitor) prefetch and had not been demand-touched since.
    pub prefetch_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_to_line_uses_line_size() {
        assert_eq!(Addr(0).line(64), LineAddr(0));
        assert_eq!(Addr(63).line(64), LineAddr(0));
        assert_eq!(Addr(64).line(64), LineAddr(1));
        assert_eq!(Addr(0x1_0040).line(64), LineAddr(0x401));
        assert_eq!(Addr(128).line(128), LineAddr(1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_line_rejects_non_power_of_two() {
        let _ = Addr(0).line(48);
    }

    #[test]
    fn line_base_round_trips() {
        let line = Addr(0x12345).line(64);
        assert_eq!(line.base(64), Addr(0x12340));
        assert_eq!(line.base(64).line(64), line);
    }

    #[test]
    fn access_kind_is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(Level::L3.to_string(), "L3");
        assert_eq!(Level::Memory.to_string(), "memory");
        assert_eq!(LineAddr(16).to_string(), "line 0x10");
    }

    #[test]
    fn conversions_from_raw() {
        assert_eq!(Addr::from(7u64), Addr(7));
        assert_eq!(LineAddr::from(7u64), LineAddr(7));
    }
}
