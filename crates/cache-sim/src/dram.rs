//! Fixed-latency DRAM model behind the memory controller.

use crate::types::Cycle;

/// Main memory with a constant access latency (Table II: 200 cycles) and
/// read/write accounting.
///
/// # Examples
///
/// ```
/// use cache_sim::Dram;
///
/// let mut dram = Dram::new(200);
/// assert_eq!(dram.read(), 200);
/// dram.write();
/// assert_eq!(dram.reads(), 1);
/// assert_eq!(dram.writes(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    latency: Cycle,
    reads: u64,
    writes: u64,
    prefetch_reads: u64,
}

impl Dram {
    /// Creates a DRAM model with the given access latency.
    #[must_use]
    pub fn new(latency: Cycle) -> Self {
        Self {
            latency,
            reads: 0,
            writes: 0,
            prefetch_reads: 0,
        }
    }

    /// Performs a demand read; returns its latency.
    pub fn read(&mut self) -> Cycle {
        self.reads += 1;
        self.latency
    }

    /// Performs a prefetch read (issued by the monitor); returns its latency.
    pub fn prefetch_read(&mut self) -> Cycle {
        self.prefetch_reads += 1;
        self.latency
    }

    /// Performs a writeback. Writebacks are posted (off the critical path),
    /// so no latency is returned.
    pub fn write(&mut self) {
        self.writes += 1;
    }

    /// Absorbs demand traffic counted elsewhere (the epoch engine's verify
    /// workers tally reads/writebacks into per-worker deltas and commit them
    /// here in one step).
    pub(crate) fn absorb_demand_traffic(&mut self, reads: u64, writes: u64) {
        self.reads += reads;
        self.writes += writes;
    }

    /// Configured access latency.
    #[must_use]
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Demand reads served.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Prefetch reads served.
    #[must_use]
    pub fn prefetch_reads(&self) -> u64 {
        self.prefetch_reads
    }

    /// Writebacks absorbed.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_latency_and_counts() {
        let mut d = Dram::new(200);
        assert_eq!(d.read(), 200);
        assert_eq!(d.read(), 200);
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 0);
    }

    #[test]
    fn writes_are_posted() {
        let mut d = Dram::new(123);
        d.write();
        d.write();
        d.write();
        assert_eq!(d.writes(), 3);
        assert_eq!(d.latency(), 123);
    }

    #[test]
    fn prefetch_reads_counted_separately() {
        let mut d = Dram::new(200);
        d.read();
        d.prefetch_read();
        assert_eq!(d.reads(), 1);
        assert_eq!(d.prefetch_reads(), 1);
    }
}
