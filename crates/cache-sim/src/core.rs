//! A simple in-order core model driven by an address stream.

use std::collections::VecDeque;

use crate::hierarchy::Hierarchy;
use crate::observer::TrafficObserver;
use crate::types::{AccessKind, Addr, CoreId, Cycle};

/// One memory access plus the non-memory work preceding it.
///
/// `think_cycles` models the instructions between memory operations: the
/// core retires them at one instruction per cycle before issuing the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address touched.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Non-memory instructions (= cycles) executed before this access.
    pub think_cycles: Cycle,
}

impl Access {
    /// A read with no preceding compute.
    #[must_use]
    pub fn read(addr: Addr) -> Self {
        Self {
            addr,
            kind: AccessKind::Read,
            think_cycles: 0,
        }
    }

    /// A write with no preceding compute.
    #[must_use]
    pub fn write(addr: Addr) -> Self {
        Self {
            addr,
            kind: AccessKind::Write,
            think_cycles: 0,
        }
    }

    /// Sets the compute gap before the access.
    #[must_use]
    pub fn after(mut self, think_cycles: Cycle) -> Self {
        self.think_cycles = think_cycles;
        self
    }
}

/// A deterministic source of memory accesses (a workload).
///
/// Returning `None` means the workload is exhausted; the core then idles.
///
/// Sources handed to a [`Core`] or [`System`](crate::System) must be `Send`
/// (`Box<dyn AccessSource + Send>`): whole systems are then `Send`, so sweep
/// harnesses can fan independent simulations across host threads. The trait
/// itself carries no `Send` bound — non-`Send` sources still work standalone.
pub trait AccessSource {
    /// Produces the next access, or `None` when done.
    fn next_access(&mut self) -> Option<Access>;

    /// Appends up to `max` accesses to `buf`, stopping early if the source
    /// runs dry. Appending nothing means the workload is exhausted.
    ///
    /// The default implementation loops [`next_access`](Self::next_access);
    /// generators override it to amortize per-access overhead (RNG state
    /// loads, bounds setup) across the whole batch. An override must produce
    /// the *identical* access sequence as repeated `next_access` calls —
    /// cores mix the two paths freely (e.g. after an epoch rollback), and
    /// the golden suites pin the merged stream.
    fn refill(&mut self, buf: &mut Vec<Access>, max: usize) {
        for _ in 0..max {
            match self.next_access() {
                Some(access) => buf.push(access),
                None => break,
            }
        }
    }
}

impl<F> AccessSource for F
where
    F: FnMut() -> Option<Access>,
{
    fn next_access(&mut self) -> Option<Access> {
        self()
    }
}

/// How many accesses a core pulls from its source per refill. Small enough
/// that peeking the next access stays inside one batch most of the time,
/// large enough to amortize the generator's per-call overhead.
const BATCH: usize = 64;

/// An in-order, blocking core: one outstanding memory access at a time,
/// IPC = 1 for non-memory instructions.
pub struct Core {
    id: CoreId,
    source: Box<dyn AccessSource + Send>,
    /// Accesses pushed back by a rolled-back speculative epoch; consumed
    /// before the source so a re-execution replays the identical stream.
    lookahead: VecDeque<Access>,
    /// Pre-drawn accesses from the source ([`AccessSource::refill`]); the
    /// cursor `batch_pos` marks the next unconsumed entry. Consumed entries
    /// never return here — rollback re-injects them via `lookahead`.
    batch: Vec<Access>,
    batch_pos: usize,
    /// Local clock: when the core can issue its next instruction.
    now: Cycle,
    /// Instructions retired so far (memory + non-memory).
    retired: u64,
    exhausted: bool,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("now", &self.now)
            .field("retired", &self.retired)
            .field("exhausted", &self.exhausted)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core fed by `source`.
    #[must_use]
    pub fn new(id: CoreId, source: Box<dyn AccessSource + Send>) -> Self {
        Self {
            id,
            source,
            lookahead: VecDeque::new(),
            batch: Vec::with_capacity(BATCH),
            batch_pos: 0,
            now: 0,
            retired: 0,
            exhausted: false,
        }
    }

    /// Core identifier.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Current local time.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether the source ran dry.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Executes the next access (compute gap + memory operation).
    ///
    /// Returns `false` when the source is exhausted.
    pub fn step<O: TrafficObserver + ?Sized>(
        &mut self,
        hierarchy: &mut Hierarchy,
        observer: &mut O,
    ) -> bool {
        let Some(access) = self.pull_access() else {
            return false;
        };
        self.now += access.think_cycles;
        self.retired += access.think_cycles; // 1 instruction per think cycle
        let result = hierarchy.access(self.id, access.addr, access.kind, self.now, observer);
        self.now += result.latency;
        self.retired += 1; // the memory instruction itself
        true
    }

    /// Takes the next access from the rollback lookahead, falling back to the
    /// pre-drawn batch (refilled from the source when empty); marks the core
    /// exhausted when all three run dry.
    #[inline]
    fn pull_access(&mut self) -> Option<Access> {
        if let Some(access) = self.lookahead.pop_front() {
            return Some(access);
        }
        if self.batch_pos == self.batch.len() {
            self.refill_batch();
            if self.batch.is_empty() {
                self.exhausted = true;
                return None;
            }
        }
        let access = self.batch[self.batch_pos];
        self.batch_pos += 1;
        Some(access)
    }

    /// The once-per-[`BATCH`] slow path of [`pull_access`](Self::pull_access),
    /// kept out of line so the per-access fast path stays compact.
    #[cold]
    fn refill_batch(&mut self) {
        self.batch.clear();
        self.batch_pos = 0;
        self.source.refill(&mut self.batch, BATCH);
    }

    /// Address of the next access the core will issue, if already known
    /// (rollback lookahead first, then the pre-drawn batch). Never advances
    /// the source.
    pub(crate) fn peek_addr(&self) -> Option<Addr> {
        if let Some(access) = self.lookahead.front() {
            return Some(access.addr);
        }
        self.batch.get(self.batch_pos).map(|a| a.addr)
    }

    /// Begins one speculative step: pulls the next access, records it on
    /// `tape` (so [`rewind`](Self::rewind) can undo the consumption), and
    /// retires its compute gap. The caller finishes the step with
    /// [`finish_step`](Self::finish_step) once the access latency is known.
    ///
    /// Returns `None` (and marks the core exhausted) when the stream is dry.
    pub(crate) fn begin_step(&mut self, tape: &mut Vec<Access>) -> Option<Access> {
        let access = self.pull_access()?;
        tape.push(access);
        self.now += access.think_cycles;
        self.retired += access.think_cycles;
        Some(access)
    }

    /// Completes a speculative step begun with [`begin_step`](Self::begin_step).
    pub(crate) fn finish_step(&mut self, latency: Cycle) {
        self.now += latency;
        self.retired += 1;
    }

    /// Snapshot of the rollback-relevant execution state
    /// `(now, retired, exhausted)`.
    pub(crate) fn exec_state(&self) -> (Cycle, u64, bool) {
        (self.now, self.retired, self.exhausted)
    }

    /// Rolls the core back to a pre-epoch [`exec_state`](Self::exec_state),
    /// unreading the accesses consumed since (they re-enter the stream ahead
    /// of the source, in original order).
    pub(crate) fn rewind(&mut self, state: (Cycle, u64, bool), tape: &[Access]) {
        let (now, retired, exhausted) = state;
        self.now = now;
        self.retired = retired;
        self.exhausted = exhausted;
        for access in tape.iter().rev() {
            self.lookahead.push_front(*access);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::observer::NullObserver;

    struct FixedSource(Vec<Access>);

    impl AccessSource for FixedSource {
        fn next_access(&mut self) -> Option<Access> {
            if self.0.is_empty() {
                None
            } else {
                Some(self.0.remove(0))
            }
        }
    }

    #[test]
    fn access_builders() {
        let a = Access::read(Addr(0x40)).after(10);
        assert_eq!(a.kind, AccessKind::Read);
        assert_eq!(a.think_cycles, 10);
        let w = Access::write(Addr(0x80));
        assert!(w.kind.is_write());
        assert_eq!(w.think_cycles, 0);
    }

    #[test]
    fn core_advances_clock_by_think_plus_latency() {
        let mut h = Hierarchy::new(SystemConfig::small_test());
        let mut obs = NullObserver;
        let src = FixedSource(vec![Access::read(Addr(0x40)).after(5)]);
        let mut core = Core::new(CoreId(0), Box::new(src));
        assert!(core.step(&mut h, &mut obs));
        // 5 think + 235 memory latency.
        assert_eq!(core.now(), 5 + 235);
        assert_eq!(core.retired(), 6);
    }

    #[test]
    fn core_exhausts_when_source_runs_dry() {
        let mut h = Hierarchy::new(SystemConfig::small_test());
        let mut obs = NullObserver;
        let src = FixedSource(vec![Access::read(Addr(0x40))]);
        let mut core = Core::new(CoreId(0), Box::new(src));
        assert!(core.step(&mut h, &mut obs));
        assert!(!core.step(&mut h, &mut obs));
        assert!(core.is_exhausted());
    }

    #[test]
    fn closure_is_an_access_source() {
        let mut count = 0;
        let mut src = move || {
            count += 1;
            if count <= 2 {
                Some(Access::read(Addr(0x100)))
            } else {
                None
            }
        };
        assert!(src.next_access().is_some());
        assert!(src.next_access().is_some());
        assert!(src.next_access().is_none());
    }
}
