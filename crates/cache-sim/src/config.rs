//! System and per-level cache configuration (paper Table II).

use std::error::Error;
use std::fmt;

use crate::replacement::Replacement;
use crate::types::Cycle;

/// Error produced when validating a [`CacheGeometry`] or [`SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size, way count, or line size was zero or not a power of two where
    /// required.
    BadGeometry(&'static str),
    /// The system needs at least one core.
    NoCores,
    /// The directory's [`SharerSet`](crate::SharerSet) bitmap tracks at most
    /// 64 cores.
    TooManyCores(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadGeometry(what) => write!(f, "invalid cache geometry: {what}"),
            ConfigError::NoCores => write!(f, "system must have at least one core"),
            ConfigError::TooManyCores(cores) => write!(
                f,
                "system has {cores} cores but the sharer bitmap supports at most 64"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets. Power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: Cycle,
}

impl CacheGeometry {
    /// Builds a geometry from a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into a power-of-two number of
    /// sets, or any argument is zero.
    #[must_use]
    pub fn from_capacity(bytes: usize, ways: usize, line_size: usize, latency: Cycle) -> Self {
        assert!(
            bytes > 0 && ways > 0 && line_size > 0,
            "zero geometry argument"
        );
        let lines = bytes / line_size;
        assert!(
            lines.is_multiple_of(ways),
            "capacity must divide into whole sets"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            sets,
            ways,
            latency,
        }
    }

    /// Total line capacity (`sets × ways`).
    #[must_use]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Total byte capacity for a given line size.
    #[must_use]
    pub fn capacity_bytes(&self, line_size: usize) -> usize {
        self.lines() * line_size
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadGeometry`] for zero or non-power-of-two sets.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sets == 0 {
            return Err(ConfigError::BadGeometry("zero sets"));
        }
        if !self.sets.is_power_of_two() {
            return Err(ConfigError::BadGeometry("sets not a power of two"));
        }
        if self.ways == 0 {
            return Err(ConfigError::BadGeometry("zero ways"));
        }
        Ok(())
    }
}

/// Full system configuration.
///
/// # Examples
///
/// The paper's baseline (Table II): quad-core, 64 KB 4-way L1 (2 cycles),
/// 256 KB 8-way L2 (18 cycles), shared 4 MB 16-way L3 (35 cycles), 200-cycle
/// DRAM:
///
/// ```
/// use cache_sim::SystemConfig;
///
/// let cfg = SystemConfig::paper_default();
/// assert_eq!(cfg.cores, 4);
/// assert_eq!(cfg.l3.sets, 4096);
/// assert_eq!(cfg.l3.ways, 16);
/// assert_eq!(cfg.dram_latency, 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Cache line size in bytes (power of two).
    pub line_size: usize,
    /// Private L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Private L2 cache geometry.
    pub l2: CacheGeometry,
    /// Shared inclusive L3 geometry.
    pub l3: CacheGeometry,
    /// DRAM access latency in cycles.
    pub dram_latency: Cycle,
    /// Replacement policy used at every level.
    pub replacement: Replacement,
}

impl SystemConfig {
    /// The paper's Table II configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        let line = 64;
        Self {
            cores: 4,
            line_size: line,
            l1: CacheGeometry::from_capacity(64 << 10, 4, line, 2),
            l2: CacheGeometry::from_capacity(256 << 10, 8, line, 18),
            l3: CacheGeometry::from_capacity(4 << 20, 16, line, 35),
            dram_latency: 200,
            replacement: Replacement::Lru,
        }
    }

    /// A scaled-down configuration for fast unit tests: 2 cores, tiny caches,
    /// same latencies.
    #[must_use]
    pub fn small_test() -> Self {
        let line = 64;
        Self {
            cores: 2,
            line_size: line,
            l1: CacheGeometry::from_capacity(2 << 10, 2, line, 2),
            l2: CacheGeometry::from_capacity(8 << 10, 4, line, 18),
            l3: CacheGeometry::from_capacity(64 << 10, 8, line, 35),
            dram_latency: 200,
            replacement: Replacement::Lru,
        }
    }

    /// LLC capacity in bytes (what PiPoMonitor's overhead is measured
    /// against).
    #[must_use]
    pub fn llc_bytes(&self) -> u64 {
        self.l3.capacity_bytes(self.line_size) as u64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero or more than 64 cores (the sharer
    /// bitmap's limit), a non-power-of-two line size,
    /// or invalid per-level geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::NoCores);
        }
        // The LLC directory tracks sharers in a 64-bit bitmap, and eviction
        // back-invalidation trusts it: a 65th core would silently alias.
        if self.cores > 64 {
            return Err(ConfigError::TooManyCores(self.cores));
        }
        if !self.line_size.is_power_of_two() || self.line_size == 0 {
            return Err(ConfigError::BadGeometry("line size not a power of two"));
        }
        self.l1.validate()?;
        self.l2.validate()?;
        self.l3.validate()?;
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let cfg = SystemConfig::paper_default();
        cfg.validate().expect("valid");
        assert_eq!(cfg.l1.sets, 256);
        assert_eq!(cfg.l1.ways, 4);
        assert_eq!(cfg.l2.sets, 512);
        assert_eq!(cfg.l2.ways, 8);
        assert_eq!(cfg.l3.sets, 4096);
        assert_eq!(cfg.l3.ways, 16);
        assert_eq!(cfg.llc_bytes(), 4 << 20);
    }

    #[test]
    fn small_test_config_is_valid() {
        SystemConfig::small_test().validate().expect("valid");
    }

    #[test]
    fn geometry_capacity_round_trip() {
        let g = CacheGeometry::from_capacity(4 << 20, 16, 64, 35);
        assert_eq!(g.capacity_bytes(64), 4 << 20);
        assert_eq!(g.lines(), 65536);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_weird_capacity() {
        let _ = CacheGeometry::from_capacity(3 * 1024, 4, 64, 1);
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut cfg = SystemConfig::paper_default();
        cfg.cores = 0;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::NoCores);
    }

    #[test]
    fn validate_rejects_more_cores_than_sharer_bits() {
        let mut cfg = SystemConfig::paper_default();
        cfg.cores = 64;
        cfg.validate().expect("64 cores is the limit, not past it");
        cfg.cores = 65;
        assert_eq!(cfg.validate().unwrap_err(), ConfigError::TooManyCores(65));
        assert!(cfg.validate().unwrap_err().to_string().contains("64"));
    }

    #[test]
    fn validate_rejects_bad_line_size() {
        let mut cfg = SystemConfig::paper_default();
        cfg.line_size = 48;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::BadGeometry(_)
        ));
    }

    #[test]
    fn validate_rejects_zero_ways() {
        let mut cfg = SystemConfig::paper_default();
        cfg.l2.ways = 0;
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::BadGeometry(_)
        ));
    }

    #[test]
    fn config_error_display() {
        assert!(ConfigError::NoCores.to_string().contains("core"));
        assert!(ConfigError::BadGeometry("zero sets")
            .to_string()
            .contains("zero sets"));
    }
}
