//! A generic set-associative cache with pluggable replacement.

use crate::config::CacheGeometry;
use crate::line::LineMeta;
use crate::replacement::{Replacement, ReplacementPolicy};
use crate::types::{Cycle, LineAddr};

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its metadata at eviction time.
    pub meta: LineMeta,
}

/// The per-way record scanned on every lookup: the tag packed together with
/// the LRU recency stamp, 16 bytes per way, so a probe-plus-touch of a
/// 4-way set reads and writes exactly one 64-byte host cache line.
#[derive(Debug, Clone, Copy, Default)]
struct WaySlot {
    tag: u64,
    stamp: Cycle,
}

/// One set-associative cache level.
///
/// Lines are identified by [`LineAddr`]; the set index is the low bits of the
/// line address and the tag is the remainder. The cache does not know its
/// level — the [`Hierarchy`](crate::Hierarchy) composes caches into L1/L2/L3.
///
/// Storage is split structure-of-arrays style for the lookup-dominated
/// simulation hot path: a packed array of tag+recency records scanned on
/// every lookup, a validity bitset, and a separate [`LineMeta`] array that is
/// only dereferenced when metadata is actually read or written.
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, CacheGeometry, LineAddr, LineMeta};
/// use cache_sim::Replacement;
///
/// let mut c = Cache::new(CacheGeometry { sets: 4, ways: 2, latency: 2 }, Replacement::Lru);
/// assert!(!c.contains(LineAddr(5)));
/// let evicted = c.fill(LineAddr(5), LineMeta::default());
/// assert!(evicted.is_none());
/// assert!(c.contains(LineAddr(5)));
/// ```
#[derive(Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    /// Tag + LRU stamp of each way, indexed `set * ways + way`; meaningful
    /// only where the corresponding `valid` bit is set.
    slots: Vec<WaySlot>,
    /// One validity bit per slot, packed 64 per word.
    valid: Vec<u64>,
    /// Metadata of each slot, parallel to `slots`.
    metas: Vec<LineMeta>,
    policy: ReplacementPolicy,
    set_mask: u64,
    set_shift: u32,
}

impl Clone for Cache {
    fn clone(&self) -> Self {
        Self {
            geometry: self.geometry,
            slots: self.slots.clone(),
            valid: self.valid.clone(),
            metas: self.metas.clone(),
            policy: self.policy.clone(),
            set_mask: self.set_mask,
            set_shift: self.set_shift,
        }
    }

    /// Overwrites `self` with `source` while reusing `self`'s allocations.
    ///
    /// The epoch-parallel engine snapshots LLC-sized caches every epoch
    /// (per-worker speculation copies plus the rollback backup); cloning
    /// into a reused buffer turns those snapshots into plain `memcpy`s
    /// instead of allocation + page-fault storms.
    fn clone_from(&mut self, source: &Self) {
        self.geometry = source.geometry;
        self.slots.clone_from(&source.slots);
        self.valid.clone_from(&source.valid);
        self.metas.clone_from(&source.metas);
        self.policy.clone_from(&source.policy);
        self.set_mask = source.set_mask;
        self.set_shift = source.set_shift;
    }
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has a non-power-of-two set count.
    #[must_use]
    pub fn new(geometry: CacheGeometry, replacement: Replacement) -> Self {
        assert!(
            geometry.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let policy = ReplacementPolicy::new(replacement, geometry.sets, geometry.ways);
        let lines = geometry.lines();
        Self {
            slots: vec![WaySlot::default(); lines],
            valid: vec![0; lines.div_ceil(64)],
            metas: vec![LineMeta::default(); lines],
            set_mask: (geometry.sets as u64) - 1,
            set_shift: geometry.sets.trailing_zeros(),
            geometry,
            policy,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Set index of a line.
    #[must_use]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.set_shift
    }

    fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr((tag << self.set_shift) | set as u64)
    }

    fn slot_index(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    #[inline]
    fn is_valid(&self, idx: usize) -> bool {
        self.valid[idx >> 6] & (1 << (idx & 63)) != 0
    }

    #[inline]
    fn set_valid(&mut self, idx: usize) {
        self.valid[idx >> 6] |= 1 << (idx & 63);
    }

    #[inline]
    fn clear_valid(&mut self, idx: usize) {
        self.valid[idx >> 6] &= !(1 << (idx & 63));
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let base = set * self.geometry.ways;
        let slots = &self.slots[base..base + self.geometry.ways];
        for (way, slot) in slots.iter().enumerate() {
            if slot.tag == tag && self.is_valid(base + way) {
                return Some((set, way));
            }
        }
        None
    }

    /// Updates replacement state for a touch of `way` in `set`.
    #[inline]
    fn touch_way(&mut self, set: usize, way: usize) {
        if let Some(stamp) = self.policy.lru_stamp() {
            self.slots[set * self.geometry.ways + way].stamp = stamp;
        } else {
            self.policy.on_touch(set, way);
        }
    }

    /// Chooses the victim way of a full `set`.
    fn victim_way(&mut self, set: usize) -> usize {
        if matches!(self.policy, ReplacementPolicy::Lru { .. }) {
            // First-minimum stamp scan, matching classic LRU tie-breaking.
            let base = set * self.geometry.ways;
            let slots = &self.slots[base..base + self.geometry.ways];
            let mut best = 0;
            let mut best_stamp = Cycle::MAX;
            for (way, slot) in slots.iter().enumerate() {
                if slot.stamp < best_stamp {
                    best_stamp = slot.stamp;
                    best = way;
                }
            }
            best
        } else {
            self.policy.victim(set)
        }
    }

    /// Whether the line is resident.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks a line up *and* updates replacement state on a hit. Returns the
    /// line's metadata when resident.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        let (set, way) = self.find(line)?;
        self.touch_way(set, way);
        let idx = self.slot_index(set, way);
        Some(&mut self.metas[idx])
    }

    /// Reads a line's metadata without updating replacement state.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&LineMeta> {
        let (set, way) = self.find(line)?;
        Some(&self.metas[self.slot_index(set, way)])
    }

    /// Mutates a line's metadata without updating replacement state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        let (set, way) = self.find(line)?;
        let idx = self.slot_index(set, way);
        Some(&mut self.metas[idx])
    }

    /// Inserts a line, evicting a victim if the set is full. The new line is
    /// marked most-recently-used. If the line is already resident its
    /// metadata is replaced in place (no eviction).
    pub fn fill(&mut self, line: LineAddr, meta: LineMeta) -> Option<EvictedLine> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        // Already resident: overwrite metadata.
        if let Some((set, way)) = self.find(line) {
            self.touch_way(set, way);
            let idx = self.slot_index(set, way);
            self.metas[idx] = meta;
            return None;
        }
        // Prefer an invalid way.
        for way in 0..self.geometry.ways {
            let idx = self.slot_index(set, way);
            if !self.is_valid(idx) {
                self.slots[idx].tag = tag;
                self.metas[idx] = meta;
                self.set_valid(idx);
                self.touch_way(set, way);
                return None;
            }
        }
        // Evict a victim.
        let way = self.victim_way(set);
        let idx = self.slot_index(set, way);
        let victim_tag = self.slots[idx].tag;
        let victim_meta = self.metas[idx];
        self.slots[idx].tag = tag;
        self.metas[idx] = meta;
        self.touch_way(set, way);
        Some(EvictedLine {
            line: self.line_of(set, victim_tag),
            meta: victim_meta,
        })
    }

    /// Removes a line, returning its metadata if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let (set, way) = self.find(line)?;
        let idx = self.slot_index(set, way);
        let meta = self.metas[idx];
        self.slots[idx] = WaySlot::default();
        self.metas[idx] = LineMeta::default();
        self.clear_valid(idx);
        Some(meta)
    }

    /// Number of valid lines resident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the cache holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid.iter().all(|&w| w == 0)
    }

    /// Iterates over resident lines and their metadata.
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, &LineMeta)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(idx, slot)| {
                if self.is_valid(idx) {
                    let set = idx / self.geometry.ways;
                    Some((self.line_of(set, slot.tag), &self.metas[idx]))
                } else {
                    None
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> Cache {
        Cache::new(
            CacheGeometry {
                sets,
                ways,
                latency: 1,
            },
            Replacement::Lru,
        )
    }

    #[test]
    fn fill_and_lookup() {
        let mut c = cache(4, 2);
        assert!(c.fill(LineAddr(0x10), LineMeta::default()).is_none());
        assert!(c.contains(LineAddr(0x10)));
        assert!(!c.contains(LineAddr(0x11)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let c = cache(4, 2);
        assert_eq!(c.set_of(LineAddr(0)), 0);
        assert_eq!(c.set_of(LineAddr(5)), 1);
        assert_eq!(c.set_of(LineAddr(7)), 3);
    }

    #[test]
    fn eviction_returns_lru_victim_with_correct_address() {
        let mut c = cache(2, 2);
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        assert!(c.fill(LineAddr(0), LineMeta::default()).is_none());
        assert!(c.fill(LineAddr(2), LineMeta::default()).is_none());
        let evicted = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(evicted.line, LineAddr(0));
        assert!(!c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(2)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut c = cache(2, 2);
        c.fill(LineAddr(0), LineMeta::default());
        c.fill(LineAddr(2), LineMeta::default());
        c.touch(LineAddr(0)); // now line 2 is LRU
        let evicted = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(evicted.line, LineAddr(2));
    }

    #[test]
    fn refill_of_resident_line_replaces_meta_without_eviction() {
        let mut c = cache(2, 1);
        c.fill(LineAddr(0), LineMeta::default());
        let meta = LineMeta {
            dirty: true,
            ..LineMeta::default()
        };
        let evicted = c.fill(LineAddr(0), meta);
        assert!(evicted.is_none());
        assert!(c.peek(LineAddr(0)).expect("resident").dirty);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes_and_returns_meta() {
        let mut c = cache(2, 2);
        let meta = LineMeta {
            protected: true,
            ..LineMeta::default()
        };
        c.fill(LineAddr(6), meta);
        let got = c.invalidate(LineAddr(6)).expect("resident");
        assert!(got.protected);
        assert!(!c.contains(LineAddr(6)));
        assert!(c.invalidate(LineAddr(6)).is_none());
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = cache(2, 2);
        c.fill(LineAddr(0), LineMeta::default());
        c.fill(LineAddr(2), LineMeta::default());
        let _ = c.peek(LineAddr(0));
        // Line 0 is still LRU because peek doesn't touch.
        let evicted = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(evicted.line, LineAddr(0));
    }

    #[test]
    fn resident_lines_enumerates_all() {
        let mut c = cache(4, 2);
        for i in 0..5u64 {
            c.fill(LineAddr(i), LineMeta::default());
        }
        let mut lines: Vec<_> = c.resident_lines().map(|(l, _)| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = cache(4, 1);
        for i in 0..4u64 {
            assert!(c.fill(LineAddr(i), LineMeta::default()).is_none());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn meta_mutation_via_peek_mut() {
        let mut c = cache(2, 1);
        c.fill(LineAddr(1), LineMeta::default());
        c.peek_mut(LineAddr(1)).expect("resident").accessed = true;
        assert!(c.peek(LineAddr(1)).expect("resident").accessed);
    }

    #[test]
    fn lru_eviction_follows_touch_order() {
        // Moved here from replacement.rs: LRU ordering now lives in the
        // cache's interleaved stamp array. Lines 0,2,4,6 all map to set 0.
        let mut c = cache(2, 4);
        for line in [6, 2, 0, 4] {
            c.fill(LineAddr(line), LineMeta::default());
        }
        // Fresh conflicting fills must evict in touch order: 6, 2, 0, 4.
        for (i, expect) in [6u64, 2, 0, 4].into_iter().enumerate() {
            let fresh = LineAddr(8 + 2 * i as u64);
            let evicted = c.fill(fresh, LineMeta::default()).expect("set full");
            assert_eq!(evicted.line, LineAddr(expect));
        }
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut c = cache(2, 2);
        // Set 0 holds lines 0, 2; set 1 holds lines 1, 3.
        c.fill(LineAddr(0), LineMeta::default());
        c.fill(LineAddr(2), LineMeta::default());
        c.fill(LineAddr(1), LineMeta::default());
        c.fill(LineAddr(3), LineMeta::default());
        c.touch(LineAddr(0)); // set 0: line 2 is now LRU
        c.touch(LineAddr(3)); // set 1: line 1 is now LRU
        assert_eq!(
            c.fill(LineAddr(4), LineMeta::default()).expect("full").line,
            LineAddr(2)
        );
        assert_eq!(
            c.fill(LineAddr(5), LineMeta::default()).expect("full").line,
            LineAddr(1)
        );
    }

    #[test]
    fn tree_plru_cache_evicts_valid_ways() {
        let mut c = Cache::new(
            CacheGeometry {
                sets: 1,
                ways: 4,
                latency: 1,
            },
            Replacement::TreePlru,
        );
        for i in 0..16u64 {
            c.fill(LineAddr(i), LineMeta::default());
            assert!(c.contains(LineAddr(i)));
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn random_cache_is_deterministic() {
        let run = || {
            let mut c = Cache::new(
                CacheGeometry {
                    sets: 2,
                    ways: 2,
                    latency: 1,
                },
                Replacement::Random { seed: 3 },
            );
            (0..100u64)
                .filter_map(|i| c.fill(LineAddr(i), LineMeta::default()))
                .map(|e| e.line.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
