//! A generic set-associative cache with pluggable replacement.

use crate::config::CacheGeometry;
use crate::line::LineMeta;
use crate::replacement::{Replacement, ReplacementPolicy};
use crate::types::{Cycle, LineAddr};

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its metadata at eviction time.
    pub meta: LineMeta,
}

/// Lane-broadcast constant: the low bit of every byte of a `u64`.
const LANE_LO: u64 = 0x0101_0101_0101_0101;
/// Lane-broadcast constant: the high bit of every byte of a `u64`.
const LANE_HI: u64 = 0x8080_8080_8080_8080;

/// One-byte fingerprint of a tag: seven hash bits plus the forced-set MSB.
///
/// The MSB doubles as the way's validity bit — an empty way stores `0x00`,
/// which can never equal a valid fingerprint, so the probe kernel needs no
/// separate validity bitset. The hash multiplier is the 64-bit golden-ratio
/// constant (SplitMix64's increment), whose top bits mix all tag bits.
#[inline]
fn fingerprint(tag: u64) -> u8 {
    ((tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as u8) | 0x80
}

/// SWAR zero-byte detector: returns a mask with bit `8k+7` set for (at
/// least) every byte `k` of `x` that is zero.
///
/// This is the classic `(x - 0x01…) & !x & 0x80…` trick. It can report a
/// false positive for a `0x01` byte that borrows from a lower zero byte —
/// harmless here, because every candidate lane is confirmed against the full
/// tag array before a hit is declared.
#[inline]
fn zero_byte_lanes(x: u64) -> u64 {
    x.wrapping_sub(LANE_LO) & !x & LANE_HI
}

/// One set-associative cache level.
///
/// Lines are identified by [`LineAddr`]; the set index is the low bits of the
/// line address and the tag is the remainder. The cache does not know its
/// level — the [`Hierarchy`](crate::Hierarchy) composes caches into L1/L2/L3.
///
/// Storage is flat structure-of-arrays, laid out for the probe-dominated
/// simulation hot path: one-byte tag *fingerprints* packed eight per `u64`
/// word (so a whole 8-way set is compared in a single branchless SWAR
/// operation), with the full tags, LRU stamps, and [`LineMeta`] in separate
/// parallel arrays that are only dereferenced on a fingerprint hit. A probe
/// that misses a 16-way set reads 16 bytes of fingerprints instead of 16
/// tag words.
///
/// # Examples
///
/// ```
/// use cache_sim::{Cache, CacheGeometry, LineAddr, LineMeta};
/// use cache_sim::Replacement;
///
/// let mut c = Cache::new(CacheGeometry { sets: 4, ways: 2, latency: 2 }, Replacement::Lru);
/// assert!(!c.contains(LineAddr(5)));
/// let evicted = c.fill(LineAddr(5), LineMeta::default());
/// assert!(evicted.is_none());
/// assert!(c.contains(LineAddr(5)));
/// ```
#[derive(Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    /// Packed per-way fingerprints, `words_per_set` words per set, one byte
    /// per way in ascending way order. `0x00` marks an empty way; pad bytes
    /// beyond the associativity stay `0x00` forever and are masked out of
    /// every scan by the lane masks.
    fps: Vec<u64>,
    /// Full tag of each way, indexed `set * ways + way`; meaningful only
    /// where the fingerprint byte is nonzero.
    tags: Vec<u64>,
    /// LRU recency stamp of each way, parallel to `tags`.
    stamps: Vec<Cycle>,
    /// Metadata of each way, parallel to `tags`.
    metas: Vec<LineMeta>,
    policy: ReplacementPolicy,
    set_mask: u64,
    set_shift: u32,
    /// `ways.div_ceil(8)`: fingerprint words per set.
    words_per_set: usize,
    /// `LANE_HI` restricted to the real-way bytes of a set's last
    /// fingerprint word (all words before it are fully populated).
    tail_lanes: u64,
}

impl Clone for Cache {
    fn clone(&self) -> Self {
        Self {
            geometry: self.geometry,
            fps: self.fps.clone(),
            tags: self.tags.clone(),
            stamps: self.stamps.clone(),
            metas: self.metas.clone(),
            policy: self.policy.clone(),
            set_mask: self.set_mask,
            set_shift: self.set_shift,
            words_per_set: self.words_per_set,
            tail_lanes: self.tail_lanes,
        }
    }

    /// Overwrites `self` with `source` while reusing `self`'s allocations.
    ///
    /// The epoch-parallel engine snapshots LLC-sized caches every epoch
    /// (per-worker speculation copies plus the rollback backup); cloning
    /// into a reused buffer turns those snapshots into plain `memcpy`s
    /// instead of allocation + page-fault storms.
    fn clone_from(&mut self, source: &Self) {
        self.geometry = source.geometry;
        self.fps.clone_from(&source.fps);
        self.tags.clone_from(&source.tags);
        self.stamps.clone_from(&source.stamps);
        self.metas.clone_from(&source.metas);
        self.policy.clone_from(&source.policy);
        self.set_mask = source.set_mask;
        self.set_shift = source.set_shift;
        self.words_per_set = source.words_per_set;
        self.tail_lanes = source.tail_lanes;
    }
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has a non-power-of-two set count.
    #[must_use]
    pub fn new(geometry: CacheGeometry, replacement: Replacement) -> Self {
        assert!(
            geometry.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let policy = ReplacementPolicy::new(replacement, geometry.sets, geometry.ways);
        let lines = geometry.lines();
        let words_per_set = geometry.ways.div_ceil(8);
        let tail_ways = geometry.ways - (words_per_set - 1) * 8;
        let tail_lanes = if tail_ways == 8 {
            LANE_HI
        } else {
            LANE_HI & ((1u64 << (tail_ways * 8)) - 1)
        };
        Self {
            fps: vec![0; geometry.sets * words_per_set],
            tags: vec![0; lines],
            stamps: vec![0; lines],
            metas: vec![LineMeta::default(); lines],
            set_mask: (geometry.sets as u64) - 1,
            set_shift: geometry.sets.trailing_zeros(),
            words_per_set,
            tail_lanes,
            geometry,
            policy,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Set index of a line.
    #[must_use]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// Tag of a line (the bits above the set index).
    pub(crate) fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.set_shift
    }

    /// Reassembles a line address from a set index and tag.
    pub(crate) fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr((tag << self.set_shift) | set as u64)
    }

    fn slot_index(&self, set: usize, way: usize) -> usize {
        set * self.geometry.ways + way
    }

    /// Lane markers (`LANE_HI` bits) of the real ways in fingerprint word
    /// `word` of a set: full for every word but the last, `tail_lanes` there.
    #[inline]
    fn lanes_of(&self, word: usize) -> u64 {
        if word + 1 == self.words_per_set {
            self.tail_lanes
        } else {
            LANE_HI
        }
    }

    /// The fingerprint byte of `way` in `set` (`0x00` = empty way).
    #[inline]
    fn fp_byte(&self, set: usize, way: usize) -> u8 {
        (self.fps[set * self.words_per_set + (way >> 3)] >> ((way & 7) * 8)) as u8
    }

    /// Overwrites the fingerprint byte of `way` in `set`.
    #[inline]
    fn set_fp_byte(&mut self, set: usize, way: usize, fp: u8) {
        let word = &mut self.fps[set * self.words_per_set + (way >> 3)];
        let shift = (way & 7) * 8;
        *word = (*word & !(0xFFu64 << shift)) | (u64::from(fp) << shift);
    }

    /// The branchless probe kernel: way holding `tag` in `set`, if resident.
    ///
    /// Each fingerprint word is compared against a lane-broadcast of the
    /// target fingerprint in one SWAR subtract-and-mask; candidate lanes are
    /// walked lowest-way-first with `trailing_zeros` and confirmed against
    /// the full tag array. First confirmed way wins, preserving the scalar
    /// linear scan's ascending-way order exactly.
    #[inline]
    fn probe_set(&self, set: usize, tag: u64) -> Option<usize> {
        let target = u64::from(fingerprint(tag)).wrapping_mul(LANE_LO);
        let word_base = set * self.words_per_set;
        let base = set * self.geometry.ways;
        // Fast path for geometries whose ways fit one fingerprint word
        // (every L1/L2 in the shipped configs): no word loop, no per-word
        // tail-lane branch.
        if self.words_per_set == 1 {
            let mut cand = zero_byte_lanes(self.fps[word_base] ^ target) & self.tail_lanes;
            while cand != 0 {
                let way = (cand.trailing_zeros() >> 3) as usize;
                if self.tags[base + way] == tag {
                    return Some(way);
                }
                cand &= cand - 1;
            }
            return None;
        }
        for word in 0..self.words_per_set {
            let mut cand =
                zero_byte_lanes(self.fps[word_base + word] ^ target) & self.lanes_of(word);
            while cand != 0 {
                let way = word * 8 + (cand.trailing_zeros() >> 3) as usize;
                if self.tags[base + way] == tag {
                    return Some(way);
                }
                cand &= cand - 1;
            }
        }
        None
    }

    /// Lowest-index empty way of `set`, if any: one branchless complement-
    /// and-mask per fingerprint word (exact — valid fingerprints always have
    /// their MSB set, so an empty way is the only `0x00` lane).
    #[inline]
    fn first_invalid_way(&self, set: usize) -> Option<usize> {
        let word_base = set * self.words_per_set;
        for word in 0..self.words_per_set {
            let empty = !self.fps[word_base + word] & self.lanes_of(word);
            if empty != 0 {
                return Some(word * 8 + (empty.trailing_zeros() >> 3) as usize);
            }
        }
        None
    }

    #[inline]
    fn find(&self, line: LineAddr) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        Some((set, self.probe_set(set, self.tag_of(line))?))
    }

    /// Updates replacement state for a touch of `way` in `set`.
    #[inline]
    fn touch_way(&mut self, set: usize, way: usize) {
        if let Some(stamp) = self.policy.lru_stamp() {
            self.stamps[set * self.geometry.ways + way] = stamp;
        } else {
            self.policy.on_touch(set, way);
        }
    }

    /// Chooses the victim way of a full `set`.
    fn victim_way(&mut self, set: usize) -> usize {
        if matches!(self.policy, ReplacementPolicy::Lru { .. }) {
            // First-minimum stamp scan, matching classic LRU tie-breaking.
            let base = set * self.geometry.ways;
            let stamps = &self.stamps[base..base + self.geometry.ways];
            let mut best = 0;
            let mut best_stamp = Cycle::MAX;
            for (way, &stamp) in stamps.iter().enumerate() {
                if stamp < best_stamp {
                    best_stamp = stamp;
                    best = way;
                }
            }
            best
        } else {
            self.policy.victim(set)
        }
    }

    /// Pulls the probe-critical metadata of `line`'s set toward the host
    /// caches before the access executes: plain loads of the set's first
    /// fingerprint word, tag, and stamp, pinned by [`std::hint::black_box`]
    /// so they survive optimization. This is the scheduler's software
    /// prefetch — the crate is `deny(unsafe_code)`, so an architectural
    /// prefetch intrinsic is out; a discarded demand load warms the same
    /// host cache lines.
    #[inline]
    pub fn prefetch_set(&self, line: LineAddr) {
        let set = self.set_of(line);
        std::hint::black_box(self.fps[set * self.words_per_set]);
    }

    /// Whether the line is resident.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Looks a line up *and* updates replacement state on a hit. Returns the
    /// line's metadata when resident.
    #[inline]
    pub fn touch(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        let (set, way) = self.find(line)?;
        self.touch_way(set, way);
        let idx = self.slot_index(set, way);
        Some(&mut self.metas[idx])
    }

    /// Reads a line's metadata without updating replacement state.
    #[must_use]
    pub fn peek(&self, line: LineAddr) -> Option<&LineMeta> {
        let (set, way) = self.find(line)?;
        Some(&self.metas[self.slot_index(set, way)])
    }

    /// Mutates a line's metadata without updating replacement state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut LineMeta> {
        let (set, way) = self.find(line)?;
        let idx = self.slot_index(set, way);
        Some(&mut self.metas[idx])
    }

    /// Inserts a line, evicting a victim if the set is full. The new line is
    /// marked most-recently-used. If the line is already resident its
    /// metadata is replaced in place (no eviction).
    pub fn fill(&mut self, line: LineAddr, meta: LineMeta) -> Option<EvictedLine> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        // Already resident: overwrite metadata.
        if let Some(way) = self.probe_set(set, tag) {
            self.touch_way(set, way);
            let idx = self.slot_index(set, way);
            self.metas[idx] = meta;
            return None;
        }
        // Prefer the lowest-index empty way.
        if let Some(way) = self.first_invalid_way(set) {
            let idx = self.slot_index(set, way);
            self.set_fp_byte(set, way, fingerprint(tag));
            self.tags[idx] = tag;
            self.metas[idx] = meta;
            self.touch_way(set, way);
            return None;
        }
        // Evict a victim.
        let way = self.victim_way(set);
        let idx = self.slot_index(set, way);
        let victim_tag = self.tags[idx];
        let victim_meta = self.metas[idx];
        self.set_fp_byte(set, way, fingerprint(tag));
        self.tags[idx] = tag;
        self.metas[idx] = meta;
        self.touch_way(set, way);
        Some(EvictedLine {
            line: self.line_of(set, victim_tag),
            meta: victim_meta,
        })
    }

    /// Removes a line, returning its metadata if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<LineMeta> {
        let (set, way) = self.find(line)?;
        let idx = self.slot_index(set, way);
        let meta = self.metas[idx];
        self.set_fp_byte(set, way, 0);
        self.tags[idx] = 0;
        self.stamps[idx] = 0;
        self.metas[idx] = LineMeta::default();
        Some(meta)
    }

    /// Number of valid lines resident.
    ///
    /// Valid fingerprint bytes always have their MSB set and empty/pad bytes
    /// are zero, so this is one popcount per fingerprint word.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fps
            .iter()
            .map(|w| (w & LANE_HI).count_ones() as usize)
            .sum()
    }

    /// Whether the cache holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fps.iter().all(|&w| w == 0)
    }

    /// Way index the branchless fingerprint kernel resolves `line` to, if
    /// resident. Public for the differential suite in
    /// `tests/fingerprint_kernel.rs`; not part of the simulation API.
    #[doc(hidden)]
    #[must_use]
    pub fn probe_way(&self, line: LineAddr) -> Option<usize> {
        self.probe_set(self.set_of(line), self.tag_of(line))
    }

    /// Reference scalar lookup: a plain ascending linear scan over validity
    /// and full tags, retained as the oracle the SWAR kernel is
    /// differentially tested against. Public for
    /// `tests/fingerprint_kernel.rs`; not part of the simulation API.
    #[doc(hidden)]
    #[must_use]
    pub fn probe_way_scalar(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        let base = set * self.geometry.ways;
        (0..self.geometry.ways)
            .find(|&way| self.fp_byte(set, way) != 0 && self.tags[base + way] == tag)
    }

    /// Whether this cache runs true LRU replacement.
    ///
    /// The epoch engine's set-partitioned verify phase reconstructs LRU
    /// recency stamps from the op stream; the other policies (tree-PLRU's
    /// per-set bits could be partitioned, random's global generator cannot)
    /// fall back to the serial verify-while-mutating replay.
    pub(crate) fn is_lru(&self) -> bool {
        matches!(self.policy, ReplacementPolicy::Lru { .. })
    }

    /// Current LRU touch-clock value (the stamp most recently handed out).
    ///
    /// # Panics
    ///
    /// Panics for non-LRU policies.
    pub(crate) fn lru_clock(&self) -> Cycle {
        match &self.policy {
            ReplacementPolicy::Lru { clock } => *clock,
            _ => unreachable!("lru_clock on a non-LRU cache"),
        }
    }

    /// Overwrites the LRU touch clock (the epoch engine's commit step, after
    /// verify workers reconstructed the stamps the sequential replay would
    /// have assigned).
    ///
    /// # Panics
    ///
    /// Panics for non-LRU policies.
    pub(crate) fn set_lru_clock(&mut self, value: Cycle) {
        match &mut self.policy {
            ReplacementPolicy::Lru { clock } => *clock = value,
            _ => unreachable!("set_lru_clock on a non-LRU cache"),
        }
    }

    /// Copies one set's ways into a detached [`SetImage`], growing the image
    /// to this cache's associativity. The image's per-way `fill_ann` markers
    /// are reset to [`NO_FILL_ANN`].
    pub(crate) fn export_set(&self, set: usize, image: &mut SetImage) {
        let ways = self.geometry.ways;
        image.ways.clear();
        image.ways.reserve(ways);
        let base = set * ways;
        for way in 0..ways {
            let idx = base + way;
            image.ways.push(WayImage {
                tag: self.tags[idx],
                stamp: self.stamps[idx],
                meta: self.metas[idx],
                valid: self.fp_byte(set, way) != 0,
                fill_ann: NO_FILL_ANN,
            });
        }
    }

    /// Writes a [`SetImage`] back over one set's ways (tags, stamps,
    /// validity, metadata) — the epoch engine's commit step.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the image's way count does not match this
    /// cache's associativity.
    pub(crate) fn import_set(&mut self, set: usize, image: &SetImage) {
        debug_assert_eq!(image.ways.len(), self.geometry.ways);
        let base = set * self.geometry.ways;
        for (way, w) in image.ways.iter().enumerate() {
            let idx = base + way;
            self.tags[idx] = w.tag;
            self.stamps[idx] = w.stamp;
            self.metas[idx] = w.meta;
            let fp = if w.valid { fingerprint(w.tag) } else { 0 };
            self.set_fp_byte(set, way, fp);
        }
    }

    /// Iterates over resident lines and their metadata.
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, &LineMeta)> + '_ {
        let ways = self.geometry.ways;
        (0..self.geometry.sets).flat_map(move |set| {
            (0..ways).filter_map(move |way| {
                if self.fp_byte(set, way) != 0 {
                    let idx = set * ways + way;
                    Some((self.line_of(set, self.tags[idx]), &self.metas[idx]))
                } else {
                    None
                }
            })
        })
    }
}

/// Marker for "this way was not demand-filled during the current epoch" in a
/// [`SetImage`] (see [`WayImage::fill_ann`]).
pub(crate) const NO_FILL_ANN: u32 = u32::MAX;

/// One way of a [`SetImage`]: the detached copy of a cache way the epoch
/// engine's verify workers evolve instead of mutating the live cache.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WayImage {
    /// Tag (meaningful only when `valid`).
    pub tag: u64,
    /// LRU recency stamp.
    pub stamp: Cycle,
    /// Line metadata.
    pub meta: LineMeta,
    /// Whether the way holds a line.
    pub valid: bool,
    /// Index (into the verify worker's annotation list) of the in-epoch
    /// demand fill that installed the current line, or [`NO_FILL_ANN`]. The
    /// commit phase uses it to patch the observer's protect decision — which
    /// is unknown during the parallel verify — into lines filled this epoch.
    pub fill_ann: u32,
}

/// A detached copy of one cache set (every way's tag, stamp, validity, and
/// metadata), with replay semantics mirroring [`Cache`]'s LRU operations.
///
/// The epoch engine's verify phase partitions LLC sets across workers; each
/// worker lazily snapshots the sets it owns into images
/// ([`Cache::export_set`]), replays the epoch's merged op stream against
/// them with **read-only** access to the live cache, and — only if every
/// prediction verifies — writes the final images back
/// ([`Cache::import_set`]). The mirror methods below must stay branch-for-
/// branch faithful to [`Cache::touch`]/[`Cache::fill`] under LRU: the epoch
/// protocol's bit-identity contract rests on it (pinned by
/// `tests/sharded_regression.rs` and `tests/sharded_differential.rs`).
#[derive(Debug, Default)]
pub(crate) struct SetImage {
    /// The set's ways, index-aligned with the cache's way array.
    pub ways: Vec<WayImage>,
}

/// A victim evicted from a [`SetImage`] by [`SetImage::fill`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvictedWay {
    /// The victim's tag (combine with the set index via [`Cache::line_of`]).
    pub tag: u64,
    /// The victim's metadata at eviction time.
    pub meta: LineMeta,
    /// The victim's in-epoch fill annotation (see [`WayImage::fill_ann`]).
    pub fill_ann: u32,
}

impl SetImage {
    /// Way index holding `tag`, if resident (mirror of `Cache::find`
    /// restricted to one set).
    pub fn find(&self, tag: u64) -> Option<usize> {
        self.ways.iter().position(|w| w.tag == tag && w.valid)
    }

    /// Metadata of the way holding `tag`, without a recency update (mirror
    /// of `Cache::peek_mut`).
    pub fn peek_mut(&mut self, tag: u64) -> Option<&mut LineMeta> {
        let way = self.find(tag)?;
        Some(&mut self.ways[way].meta)
    }

    /// Looks `tag` up and stamps the hit way (mirror of `Cache::touch` with
    /// the LRU stamp supplied by the caller — verify workers reconstruct the
    /// exact stamp sequence the sequential replay would draw from the
    /// cache's touch clock).
    pub fn touch(&mut self, tag: u64, stamp: Cycle) -> Option<&mut LineMeta> {
        let way = self.find(tag)?;
        self.ways[way].stamp = stamp;
        Some(&mut self.ways[way].meta)
    }

    /// Inserts `tag`, evicting the LRU victim if the set is full (mirror of
    /// `Cache::fill` under LRU: prefer the first invalid way, else the
    /// first-minimum-stamp way). `fill_ann` marks the installed way as
    /// demand-filled this epoch.
    ///
    /// The caller guarantees `tag` is not resident (a replayed fill always
    /// follows a missed probe of the same line).
    pub fn fill(
        &mut self,
        tag: u64,
        meta: LineMeta,
        stamp: Cycle,
        fill_ann: u32,
    ) -> Option<EvictedWay> {
        debug_assert!(self.find(tag).is_none(), "fill of a resident line");
        if let Some(way) = self.ways.iter().position(|w| !w.valid) {
            self.ways[way] = WayImage {
                tag,
                stamp,
                meta,
                valid: true,
                fill_ann,
            };
            return None;
        }
        let mut victim = 0;
        let mut best_stamp = Cycle::MAX;
        for (way, w) in self.ways.iter().enumerate() {
            if w.stamp < best_stamp {
                best_stamp = w.stamp;
                victim = way;
            }
        }
        let evicted = EvictedWay {
            tag: self.ways[victim].tag,
            meta: self.ways[victim].meta,
            fill_ann: self.ways[victim].fill_ann,
        };
        self.ways[victim] = WayImage {
            tag,
            stamp,
            meta,
            valid: true,
            fill_ann,
        };
        Some(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> Cache {
        Cache::new(
            CacheGeometry {
                sets,
                ways,
                latency: 1,
            },
            Replacement::Lru,
        )
    }

    #[test]
    fn fill_and_lookup() {
        let mut c = cache(4, 2);
        assert!(c.fill(LineAddr(0x10), LineMeta::default()).is_none());
        assert!(c.contains(LineAddr(0x10)));
        assert!(!c.contains(LineAddr(0x11)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let c = cache(4, 2);
        assert_eq!(c.set_of(LineAddr(0)), 0);
        assert_eq!(c.set_of(LineAddr(5)), 1);
        assert_eq!(c.set_of(LineAddr(7)), 3);
    }

    #[test]
    fn eviction_returns_lru_victim_with_correct_address() {
        let mut c = cache(2, 2);
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        assert!(c.fill(LineAddr(0), LineMeta::default()).is_none());
        assert!(c.fill(LineAddr(2), LineMeta::default()).is_none());
        let evicted = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(evicted.line, LineAddr(0));
        assert!(!c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(2)));
        assert!(c.contains(LineAddr(4)));
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut c = cache(2, 2);
        c.fill(LineAddr(0), LineMeta::default());
        c.fill(LineAddr(2), LineMeta::default());
        c.touch(LineAddr(0)); // now line 2 is LRU
        let evicted = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(evicted.line, LineAddr(2));
    }

    #[test]
    fn refill_of_resident_line_replaces_meta_without_eviction() {
        let mut c = cache(2, 1);
        c.fill(LineAddr(0), LineMeta::default());
        let meta = LineMeta::default().with_dirty(true);
        let evicted = c.fill(LineAddr(0), meta);
        assert!(evicted.is_none());
        assert!(c.peek(LineAddr(0)).expect("resident").dirty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes_and_returns_meta() {
        let mut c = cache(2, 2);
        let meta = LineMeta::default().with_protected(true);
        c.fill(LineAddr(6), meta);
        let got = c.invalidate(LineAddr(6)).expect("resident");
        assert!(got.protected());
        assert!(!c.contains(LineAddr(6)));
        assert!(c.invalidate(LineAddr(6)).is_none());
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut c = cache(2, 2);
        c.fill(LineAddr(0), LineMeta::default());
        c.fill(LineAddr(2), LineMeta::default());
        let _ = c.peek(LineAddr(0));
        // Line 0 is still LRU because peek doesn't touch.
        let evicted = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(evicted.line, LineAddr(0));
    }

    #[test]
    fn resident_lines_enumerates_all() {
        let mut c = cache(4, 2);
        for i in 0..5u64 {
            c.fill(LineAddr(i), LineMeta::default());
        }
        let mut lines: Vec<_> = c.resident_lines().map(|(l, _)| l.0).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = cache(4, 1);
        for i in 0..4u64 {
            assert!(c.fill(LineAddr(i), LineMeta::default()).is_none());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn meta_mutation_via_peek_mut() {
        let mut c = cache(2, 1);
        c.fill(LineAddr(1), LineMeta::default());
        c.peek_mut(LineAddr(1))
            .expect("resident")
            .set_accessed(true);
        assert!(c.peek(LineAddr(1)).expect("resident").accessed());
    }

    #[test]
    fn lru_eviction_follows_touch_order() {
        // Moved here from replacement.rs: LRU ordering now lives in the
        // cache's interleaved stamp array. Lines 0,2,4,6 all map to set 0.
        let mut c = cache(2, 4);
        for line in [6, 2, 0, 4] {
            c.fill(LineAddr(line), LineMeta::default());
        }
        // Fresh conflicting fills must evict in touch order: 6, 2, 0, 4.
        for (i, expect) in [6u64, 2, 0, 4].into_iter().enumerate() {
            let fresh = LineAddr(8 + 2 * i as u64);
            let evicted = c.fill(fresh, LineMeta::default()).expect("set full");
            assert_eq!(evicted.line, LineAddr(expect));
        }
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut c = cache(2, 2);
        // Set 0 holds lines 0, 2; set 1 holds lines 1, 3.
        c.fill(LineAddr(0), LineMeta::default());
        c.fill(LineAddr(2), LineMeta::default());
        c.fill(LineAddr(1), LineMeta::default());
        c.fill(LineAddr(3), LineMeta::default());
        c.touch(LineAddr(0)); // set 0: line 2 is now LRU
        c.touch(LineAddr(3)); // set 1: line 1 is now LRU
        assert_eq!(
            c.fill(LineAddr(4), LineMeta::default()).expect("full").line,
            LineAddr(2)
        );
        assert_eq!(
            c.fill(LineAddr(5), LineMeta::default()).expect("full").line,
            LineAddr(1)
        );
    }

    #[test]
    fn tree_plru_cache_evicts_valid_ways() {
        let mut c = Cache::new(
            CacheGeometry {
                sets: 1,
                ways: 4,
                latency: 1,
            },
            Replacement::TreePlru,
        );
        for i in 0..16u64 {
            c.fill(LineAddr(i), LineMeta::default());
            assert!(c.contains(LineAddr(i)));
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn set_image_round_trips_and_mirrors_lru_fill() {
        // Drive a live cache and a SetImage of one set through the same op
        // sequence; they must agree on hits, victims, and final state.
        let mut c = cache(2, 2);
        c.fill(LineAddr(0), LineMeta::default()); // set 0
        c.fill(LineAddr(2), LineMeta::default()); // set 0
        let mut img = SetImage::default();
        c.export_set(0, &mut img);
        assert_eq!(img.ways.len(), 2);
        assert!(img.ways.iter().all(|w| w.fill_ann == NO_FILL_ANN));

        // Touch line 0 (stamp beyond the cache's clock), then fill line 4:
        // both must evict line 2.
        let clock = c.lru_clock();
        assert!(img.touch(c.tag_of(LineAddr(0)), clock + 1).is_some());
        let evicted = img
            .fill(c.tag_of(LineAddr(4)), LineMeta::default(), clock + 2, 7)
            .expect("set full");
        assert_eq!(c.line_of(0, evicted.tag), LineAddr(2));

        c.touch(LineAddr(0));
        let live = c.fill(LineAddr(4), LineMeta::default()).expect("set full");
        assert_eq!(live.line, LineAddr(2));

        // Import the image back: the live set must match it exactly.
        c.import_set(0, &img);
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(4)));
        assert!(!c.contains(LineAddr(2)));
        let way = img.find(c.tag_of(LineAddr(4))).expect("resident");
        assert_eq!(img.ways[way].fill_ann, 7);
    }

    #[test]
    fn set_image_prefers_invalid_ways() {
        let mut c = cache(2, 2);
        c.fill(LineAddr(0), LineMeta::default());
        let mut img = SetImage::default();
        c.export_set(0, &mut img);
        let tag = c.tag_of(LineAddr(2));
        assert!(img
            .fill(tag, LineMeta::default(), 99, NO_FILL_ANN)
            .is_none());
        assert_eq!(img.find(tag), Some(1), "second way was invalid");
    }

    #[test]
    fn import_rebuilds_fingerprints_for_both_lookups() {
        // 12 ways: the fingerprint layout has a partial tail word, so the
        // rebuilt pad lanes must stay empty. Import into a fresh cache and
        // check both probe paths agree with the original everywhere.
        let geometry = CacheGeometry {
            sets: 4,
            ways: 12,
            latency: 1,
        };
        let mut c = Cache::new(geometry, Replacement::Lru);
        for i in 0..96u64 {
            c.fill(LineAddr(i * 3), LineMeta::default());
        }
        let mut rebuilt = Cache::new(geometry, Replacement::Lru);
        let mut img = SetImage::default();
        for set in 0..geometry.sets {
            c.export_set(set, &mut img);
            rebuilt.import_set(set, &img);
        }
        for i in 0..400u64 {
            let line = LineAddr(i);
            assert_eq!(rebuilt.probe_way(line), c.probe_way(line), "line {i}");
            assert_eq!(
                rebuilt.probe_way(line),
                rebuilt.probe_way_scalar(line),
                "line {i}"
            );
        }
        assert_eq!(rebuilt.len(), c.len());
    }

    #[test]
    fn lru_clock_accessors() {
        let mut c = cache(2, 2);
        assert!(c.is_lru());
        assert_eq!(c.lru_clock(), 0);
        c.fill(LineAddr(0), LineMeta::default());
        assert_eq!(c.lru_clock(), 1);
        c.set_lru_clock(41);
        c.touch(LineAddr(0));
        assert_eq!(c.lru_clock(), 42);
        let random = Cache::new(
            CacheGeometry {
                sets: 2,
                ways: 2,
                latency: 1,
            },
            Replacement::Random { seed: 3 },
        );
        assert!(!random.is_lru());
    }

    #[test]
    fn random_cache_is_deterministic() {
        let run = || {
            let mut c = Cache::new(
                CacheGeometry {
                    sets: 2,
                    ways: 2,
                    latency: 1,
                },
                Replacement::Random { seed: 3 },
            );
            (0..100u64)
                .filter_map(|i| c.fill(LineAddr(i), LineMeta::default()))
                .map(|e| e.line.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
