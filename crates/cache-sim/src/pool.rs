//! A persistent scoped worker pool for the epoch-parallel engine.
//!
//! [`System::run_sharded`](crate::System::run_sharded) dispatches two
//! parallel phases *per epoch* (speculation and verification). Spawning OS
//! threads per epoch — as `std::thread::scope` does — costs tens of
//! microseconds and several heap allocations each time, which both caps the
//! useful epoch rate and breaks the engine's zero-allocation steady state
//! (pinned by `tests/no_alloc_hot_path.rs`). This pool spawns its worker
//! threads once and re-dispatches borrowed closures to them with nothing but
//! mutex/condvar traffic: no per-dispatch allocation, no thread churn.
//!
//! # How borrowed closures cross thread boundaries
//!
//! [`WorkerPool::run`] accepts `&(dyn Fn(usize) + Sync)` with an ordinary
//! (non-`'static`) lifetime and erases that lifetime to hand the reference
//! to the persistent workers. This is the classic scoped-pool pattern
//! (rayon's `scope`, `std::thread::scope` internals): it is sound because
//! `run` does not return until every participating worker has finished the
//! call, so the borrow strictly outlives every use. The lifetime erasure is
//! the crate's only unsafe code and is confined to one expression below.
//!
//! # Panic propagation
//!
//! A panicking worker marks the dispatch poisoned; `run` re-panics on the
//! caller thread once all workers finish, matching the behaviour of the
//! `std::thread::scope` + `join` code this replaces.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A dispatched job: the borrowed worker closure with its lifetime erased.
/// Only ever dereferenced between dispatch and completion of one `run` call
/// (see module docs for the soundness argument).
type Job = &'static (dyn Fn(usize) + Sync);

struct State {
    /// Dispatch generation; workers wake when it advances.
    generation: u64,
    /// The active job, present from dispatch until the caller observes
    /// completion.
    job: Option<Job>,
    /// Worker indices `1..participants` run the job (index 0 is the caller).
    participants: usize,
    /// Participating workers that have not finished the current job yet.
    remaining: usize,
    /// A participating worker panicked during the current job.
    poisoned: bool,
    /// Pool is shutting down; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new generation dispatched (or shutdown).
    go: Condvar,
    /// Signals the caller: `remaining` reached zero.
    done: Condvar,
}

/// Persistent worker threads executing per-epoch closures (see module docs).
///
/// Public beyond the epoch engine: `pipo-serve` schedules cold sweep cells
/// across the same pool type instead of spawning ad-hoc threads per job.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool able to run jobs of up to `workers` participants: the
    /// calling thread acts as participant 0, so `workers - 1` threads are
    /// spawned.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                job: None,
                participants: 0,
                remaining: 0,
                poisoned: false,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let threads = (1..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        Self { shared, threads }
    }

    /// Maximum participants a job may have (spawned threads + the caller).
    pub fn capacity(&self) -> usize {
        self.threads.len() + 1
    }

    /// Runs `f(0)`, `f(1)`, …, `f(participants - 1)` concurrently — `f(0)`
    /// on the calling thread, the rest on pool threads — and returns once
    /// all calls finish. `f` may borrow the caller's stack freely.
    ///
    /// # Panics
    ///
    /// Panics if `participants` exceeds [`capacity`](Self::capacity), or if
    /// any participant panicked (after all participants finish).
    pub fn run(&self, participants: usize, f: &(dyn Fn(usize) + Sync)) {
        assert!(
            participants <= self.capacity(),
            "job wants {participants} participants, pool capacity is {}",
            self.capacity()
        );
        if participants <= 1 {
            f(0);
            return;
        }
        // SAFETY: the erased borrow is only dereferenced by workers between
        // this dispatch and the `remaining == 0` acknowledgement below, and
        // this function does not return (or unwind — no panicking call sits
        // between dispatch and acknowledgement) before that point, so the
        // original `f` outlives every use.
        #[allow(unsafe_code)]
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.generation += 1;
            state.job = Some(job);
            state.participants = participants;
            state.remaining = participants - 1;
            state.poisoned = false;
            drop(state);
            self.shared.go.notify_all();
        }
        // The caller is participant 0 — it works instead of blocking.
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut state = self.shared.state.lock().expect("pool mutex poisoned");
        while state.remaining > 0 {
            state = self.shared.done.wait(state).expect("pool mutex poisoned");
        }
        state.job = None;
        let poisoned = state.poisoned;
        drop(state);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!poisoned, "pool worker panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
            drop(state);
            self.shared.go.notify_all();
        }
        for handle in self.threads.drain(..) {
            // A worker can only panic via a job panic, which `run` already
            // re-reported; ignore the join result during teardown.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job;
        {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            while state.generation == seen_generation && !state.shutdown {
                state = shared.go.wait(state).expect("pool mutex poisoned");
            }
            if state.shutdown {
                return;
            }
            seen_generation = state.generation;
            if index >= state.participants {
                // Not part of this job; wait for the next generation.
                continue;
            }
            job = state.job.expect("dispatched generation carries a job");
        }
        let result = catch_unwind(AssertUnwindSafe(|| job(index)));
        let mut state = shared.state.lock().expect("pool mutex poisoned");
        if result.is_err() {
            state.poisoned = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_participant_exactly_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.capacity(), 4);
        let hits: [AtomicU64; 4] = std::array::from_fn(|_| AtomicU64::new(0));
        for _ in 0..100 {
            pool.run(4, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn jobs_may_borrow_the_stack() {
        let pool = WorkerPool::new(3);
        let data = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        pool.run(3, &|i| {
            data[i].store(i as u64 + 1, Ordering::Relaxed);
        });
        let collected: Vec<u64> = data.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        assert_eq!(collected, vec![1, 2, 3]);
    }

    #[test]
    fn single_participant_runs_inline() {
        let pool = WorkerPool::new(1);
        let touched = AtomicU64::new(0);
        pool.run(1, &|i| {
            assert_eq!(i, 0);
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn undersized_jobs_leave_extra_workers_idle() {
        let pool = WorkerPool::new(4);
        let hits: [AtomicU64; 4] = std::array::from_fn(|_| AtomicU64::new(0));
        pool.run(2, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        pool.run(4, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        let collected: Vec<u64> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        assert_eq!(collected, vec![2, 2, 1, 1]);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|i| {
                assert!(i != 1, "deliberate test panic");
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable after a poisoned dispatch.
        let count = AtomicU64::new(0);
        pool.run(2, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
