//! The three-level inclusive cache hierarchy with a directory-tracking LLC.
//!
//! Modelled behaviours that matter for the PiPoMonitor evaluation:
//!
//! * **Inclusivity.** L1 ⊆ L2 ⊆ L3. Evicting a line from the LLC
//!   *back-invalidates* every private copy — the cross-core eviction signal
//!   Prime+Probe relies on.
//! * **Coherence.** The LLC keeps a sharer bitmap per line; writes invalidate
//!   other cores' private copies (MESI's `M` acquisition, directory style).
//! * **Memory-controller hooks.** Every LLC→memory demand fetch and every
//!   LLC eviction is reported to a [`TrafficObserver`]; observers may tag
//!   incoming lines as protected and inject prefetches.

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::line::{LineMeta, SharerSet};
use crate::observer::TrafficObserver;
use crate::stats::HierarchyStats;
use crate::types::{AccessKind, AccessResult, Addr, CoreId, Cycle, Level, LineAddr};

/// The simulated memory system: per-core L1/L2, shared L3, DRAM.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, Addr, CoreId, Hierarchy, NullObserver, SystemConfig};
///
/// let mut h = Hierarchy::new(SystemConfig::small_test());
/// let mut obs = NullObserver;
/// let r = h.access(CoreId(0), Addr(0x40), AccessKind::Read, 0, &mut obs);
/// assert_eq!(r.served_by, cache_sim::Level::Memory);
/// let r = h.access(CoreId(0), Addr(0x40), AccessKind::Read, 10, &mut obs);
/// assert_eq!(r.served_by, cache_sim::Level::L1);
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    pub(crate) config: SystemConfig,
    pub(crate) l1: Vec<Cache>,
    pub(crate) l2: Vec<Cache>,
    pub(crate) l3: Cache,
    pub(crate) dram: Dram,
    pub(crate) stats: HierarchyStats,
    /// `log2(line_size)`, hoisted so the per-access address-to-line shift
    /// does not recompute it.
    pub(crate) line_shift: u32,
    /// Reusable buffer for observer prefetch draining; drained lines are
    /// staged here so steady-state draining allocates nothing.
    prefetch_scratch: Vec<LineAddr>,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call
    /// [`SystemConfig::validate`] first to handle errors gracefully.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        config.validate().expect("invalid system configuration");
        let l1 = (0..config.cores)
            .map(|_| Cache::new(config.l1, config.replacement))
            .collect();
        let l2 = (0..config.cores)
            .map(|_| Cache::new(config.l2, config.replacement))
            .collect();
        let l3 = Cache::new(config.l3, config.replacement);
        let dram = Dram::new(config.dram_latency);
        let stats = HierarchyStats::new(config.cores);
        let line_shift = (config.line_size as u64).trailing_zeros();
        Self {
            config,
            l1,
            l2,
            l3,
            dram,
            stats,
            line_shift,
            prefetch_scratch: Vec::new(),
        }
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// DRAM counters.
    #[must_use]
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> u64 {
        self.config.line_size as u64
    }

    /// LLC set index of an address (the mapping attackers use to build
    /// eviction sets).
    #[must_use]
    pub fn llc_set_of(&self, addr: Addr) -> usize {
        self.l3.set_of(addr.line(self.line_size()))
    }

    /// LLC associativity.
    #[must_use]
    pub fn llc_ways(&self) -> usize {
        self.config.l3.ways
    }

    /// Number of LLC sets.
    #[must_use]
    pub fn llc_sets(&self) -> usize {
        self.config.l3.sets
    }

    /// Whether a line is currently resident in the LLC.
    #[must_use]
    pub fn llc_contains(&self, addr: Addr) -> bool {
        self.l3.contains(addr.line(self.line_size()))
    }

    /// Whether a line is resident in `core`'s L1.
    #[must_use]
    pub fn l1_contains(&self, core: CoreId, addr: Addr) -> bool {
        self.l1[core.0].contains(addr.line(self.line_size()))
    }

    /// LLC metadata of a line, if resident (testing/diagnostics).
    #[must_use]
    pub fn llc_meta(&self, addr: Addr) -> Option<&LineMeta> {
        self.l3.peek(addr.line(self.line_size()))
    }

    /// Warms the host caches with the probe-critical set metadata of an
    /// upcoming access by `core` (the scheduler's software prefetch): a
    /// plain discarded load of the LLC fingerprint word the next
    /// [`access`](Self::access) may scan. The L1 arrays are small enough to
    /// stay host-resident on their own, so only the LLC is touched.
    #[inline]
    pub fn prefetch_hint(&self, core: CoreId, addr: Addr) {
        let _ = core;
        self.l3.prefetch_set(LineAddr(addr.0 >> self.line_shift));
    }

    /// Performs one memory access by `core` at time `now`.
    ///
    /// Returns the latency and serving level. The observer is consulted on
    /// LLC→memory fetches (to tag protected lines) and notified of LLC
    /// evictions.
    #[inline]
    pub fn access<O: TrafficObserver + ?Sized>(
        &mut self,
        core: CoreId,
        addr: Addr,
        kind: AccessKind,
        now: Cycle,
        observer: &mut O,
    ) -> AccessResult {
        let line = LineAddr(addr.0 >> self.line_shift);
        let is_write = kind.is_write();

        // Each level is probed with a single `touch` lookup: on a hit it
        // returns the metadata and updates replacement state in one way scan,
        // on a miss it is exactly the residency check for the next level.

        // ---- L1 hit ----
        if let Some(meta) = self.l1[core.0].touch(line) {
            meta.or_dirty(is_write);
            let mut latency = self.config.l1.latency;
            if is_write {
                latency += self.write_upgrade(core, line);
            }
            self.stats.record_served(core, Level::L1, latency);
            return AccessResult {
                latency,
                served_by: Level::L1,
                prefetch_hit: false,
            };
        }
        self.access_miss(core, line, is_write, now, observer)
    }

    /// The L1-miss continuation of [`access`](Self::access), kept out of
    /// line: L2/L3/memory handling (fills, coherence, observer events) is an
    /// order of magnitude rarer than an L1 hit, and inlining it would bloat
    /// the per-access fast path in every instantiation of the run loop.
    #[inline(never)]
    fn access_miss<O: TrafficObserver + ?Sized>(
        &mut self,
        core: CoreId,
        line: LineAddr,
        is_write: bool,
        now: Cycle,
        observer: &mut O,
    ) -> AccessResult {
        // ---- L2 hit ----
        if self.l2[core.0].touch(line).is_some() {
            self.fill_l1(core, line, is_write);
            let mut latency = self.config.l2.latency;
            if is_write {
                latency += self.write_upgrade(core, line);
            }
            self.stats.record_served(core, Level::L2, latency);
            return AccessResult {
                latency,
                served_by: Level::L2,
                prefetch_hit: false,
            };
        }

        // ---- L3 hit ----
        if let Some(meta) = self.l3.touch(line) {
            let prefetch_hit = meta.prefetched() && !meta.accessed();
            meta.set_accessed(true);
            meta.set_prefetched(false);
            meta.sharers.insert(core);
            meta.or_dirty(is_write);
            if prefetch_hit {
                self.stats.prefetch_hits += 1;
            }
            let mut latency = self.config.l3.latency;
            if is_write {
                latency += self.invalidate_other_sharers(core, line);
            }
            self.fill_l2(core, line);
            self.fill_l1(core, line, is_write);
            self.stats.record_served(core, Level::L3, latency);
            return AccessResult {
                latency,
                served_by: Level::L3,
                prefetch_hit,
            };
        }

        // ---- Memory ----
        let protect = observer.on_memory_fetch(line, now);
        let latency = self.config.l3.latency + self.dram.read();
        let meta = LineMeta::demand_fill(core, is_write, protect);
        self.fill_l3(line, meta, now, observer);
        self.fill_l2(core, line);
        self.fill_l1(core, line, is_write);
        self.stats.record_served(core, Level::Memory, latency);
        AccessResult {
            latency,
            served_by: Level::Memory,
            prefetch_hit: false,
        }
    }

    /// Inserts a monitor prefetch into the LLC (the paper's Prefetch step).
    ///
    /// If the line is already resident its protection tag is refreshed;
    /// otherwise a DRAM prefetch read fills it with
    /// [`LineMeta::prefetch_fill`] metadata (protected, not yet accessed).
    pub fn insert_prefetch<O: TrafficObserver + ?Sized>(
        &mut self,
        line: LineAddr,
        now: Cycle,
        observer: &mut O,
    ) {
        if let Some(meta) = self.l3.peek_mut(line) {
            meta.set_protected(true);
            return;
        }
        self.dram.prefetch_read();
        self.fill_l3(line, LineMeta::prefetch_fill(), now, observer);
        self.stats.prefetch_fills += 1;
    }

    /// Drains an observer's due prefetches into the LLC.
    ///
    /// A no-op unless the observer's earliest pending prefetch is due. Due
    /// lines are staged in a reusable buffer (snapshot semantics: prefetches
    /// scheduled *during* insertion — e.g. by eviction notifications the
    /// inserts trigger — wait for the next drain), so steady-state draining
    /// performs no heap allocation.
    pub fn drain_prefetches<O: TrafficObserver + ?Sized>(&mut self, now: Cycle, observer: &mut O) {
        match observer.next_prefetch_due() {
            Some(due) if due <= now => {}
            _ => return,
        }
        let mut buf = std::mem::take(&mut self.prefetch_scratch);
        buf.clear();
        observer.drain_due_prefetches(now, &mut buf);
        for &line in &buf {
            self.insert_prefetch(line, now, observer);
        }
        self.prefetch_scratch = buf;
    }

    /// Fills a line into the LLC, handling eviction of a victim: inclusive
    /// back-invalidation of private copies, dirty writeback, and the pEvict
    /// notification to the observer.
    fn fill_l3<O: TrafficObserver + ?Sized>(
        &mut self,
        line: LineAddr,
        meta: LineMeta,
        now: Cycle,
        observer: &mut O,
    ) {
        if let Some(evicted) = self.l3.fill(line, meta) {
            self.stats.llc_evictions += 1;
            let mut dirty = evicted.meta.dirty();
            // Private copies can only live in cores recorded as sharers
            // (inclusivity keeps the directory a superset of the private
            // holders), so iterate the sharer bitmap instead of all cores.
            for c in evicted.meta.sharers.iter() {
                if let Some(m) = self.l1[c.0].invalidate(evicted.line) {
                    self.stats.back_invalidations += 1;
                    dirty |= m.dirty();
                }
                if let Some(m) = self.l2[c.0].invalidate(evicted.line) {
                    self.stats.back_invalidations += 1;
                    dirty |= m.dirty();
                }
            }
            if dirty {
                self.dram.write();
                self.stats.writebacks += 1;
            }
            observer.on_llc_eviction(
                evicted.line,
                evicted.meta.protected(),
                evicted.meta.accessed(),
                now,
            );
        }
    }

    /// Fills a line into `core`'s L2, maintaining L1 ⊆ L2 by back-
    /// invalidating the L1 copy of any victim and propagating dirtiness down.
    fn fill_l2(&mut self, core: CoreId, line: LineAddr) {
        if self.l2[core.0].touch(line).is_some() {
            return;
        }
        if let Some(evicted) = self.l2[core.0].fill(line, LineMeta::default()) {
            let mut dirty = evicted.meta.dirty();
            if let Some(m) = self.l1[core.0].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                dirty |= m.dirty();
            }
            self.demote_private_copy(core, evicted.line, dirty);
        }
    }

    /// Fills a line into `core`'s L1, propagating a dirty victim into L2.
    fn fill_l1(&mut self, core: CoreId, line: LineAddr, is_write: bool) {
        if let Some(meta) = self.l1[core.0].touch(line) {
            meta.or_dirty(is_write);
            return;
        }
        let meta = LineMeta::default().with_dirty(is_write);
        if let Some(evicted) = self.l1[core.0].fill(line, meta) {
            if evicted.meta.dirty() {
                if let Some(m) = self.l2[core.0].peek_mut(evicted.line) {
                    m.set_dirty(true);
                } else {
                    // L2 copy vanished (back-invalidated between fills):
                    // fold the dirtiness into the LLC copy or write back.
                    self.demote_private_copy(core, evicted.line, true);
                }
            }
        }
    }

    /// A private copy of `line` left `core`'s caches; update the directory
    /// and propagate dirtiness to the LLC (or memory if the LLC copy is
    /// already gone).
    fn demote_private_copy(&mut self, core: CoreId, line: LineAddr, dirty: bool) {
        if let Some(m) = self.l3.peek_mut(line) {
            m.sharers.remove(core);
            m.or_dirty(dirty);
        } else if dirty {
            self.dram.write();
            self.stats.writebacks += 1;
        }
    }

    /// A write by `core` must invalidate every other core's private copy
    /// (directory-based MESI upgrade). Returns the extra latency (one LLC
    /// round trip when an upgrade was needed, 0 otherwise).
    fn write_upgrade(&mut self, core: CoreId, line: LineAddr) -> Cycle {
        if let Some(meta) = self.l3.peek_mut(line) {
            meta.set_dirty(true);
            if !meta.sharers.is_sole(core) && !meta.sharers.is_empty() {
                return self.invalidate_other_sharers(core, line);
            }
            meta.sharers.insert(core);
        }
        0
    }

    /// Checks the inclusive-hierarchy invariants, returning a description of
    /// the first violation found (test/diagnostic hook):
    ///
    /// * every line in a core's L1 is also in that core's L2;
    /// * every line in a core's L2 is also in the L3;
    /// * every core recorded as a sharer of an L3 line is consistent with
    ///   the directory (private copies imply sharer bits).
    #[must_use]
    pub fn check_inclusion(&self) -> Option<String> {
        for core in 0..self.config.cores {
            for (line, _) in self.l1[core].resident_lines() {
                if !self.l2[core].contains(line) {
                    return Some(format!("core{core} L1 holds {line} but L2 does not"));
                }
            }
            for (line, _) in self.l2[core].resident_lines() {
                if !self.l3.contains(line) {
                    return Some(format!("core{core} L2 holds {line} but L3 does not"));
                }
                let meta = self.l3.peek(line).expect("checked above");
                if !meta.sharers.contains(crate::types::CoreId(core)) {
                    return Some(format!(
                        "core{core} holds {line} privately but is not a directory sharer"
                    ));
                }
            }
        }
        None
    }

    /// Invalidates other cores' private copies of `line`; returns the extra
    /// latency cost (one LLC access when any invalidation was sent).
    fn invalidate_other_sharers(&mut self, core: CoreId, line: LineAddr) -> Cycle {
        // The sharer set is `Copy`, so snapshot it and walk the bits
        // directly — no allocation on this coherence path.
        let Some(meta) = self.l3.peek(line) else {
            return 0;
        };
        let sharers = meta.sharers;
        let mut any_other = false;
        for other in sharers.iter() {
            if other == core {
                continue;
            }
            any_other = true;
            if self.l1[other.0].invalidate(line).is_some() {
                self.stats.coherence_invalidations += 1;
            }
            if self.l2[other.0].invalidate(line).is_some() {
                self.stats.coherence_invalidations += 1;
            }
        }
        if !any_other {
            return 0;
        }
        if let Some(meta) = self.l3.peek_mut(line) {
            meta.sharers = SharerSet::only(core);
        }
        self.config.l3.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NullObserver, RecordingObserver};

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(SystemConfig::small_test())
    }

    #[test]
    fn cold_miss_goes_to_memory_then_l1_hits() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let r = h.access(CoreId(0), Addr(0x1000), AccessKind::Read, 0, &mut obs);
        assert_eq!(r.served_by, Level::Memory);
        assert_eq!(r.latency, 35 + 200);
        let r = h.access(CoreId(0), Addr(0x1000), AccessKind::Read, 10, &mut obs);
        assert_eq!(r.served_by, Level::L1);
        assert_eq!(r.latency, 2);
    }

    #[test]
    fn same_line_different_byte_hits() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        h.access(CoreId(0), Addr(0x1000), AccessKind::Read, 0, &mut obs);
        let r = h.access(CoreId(0), Addr(0x103f), AccessKind::Read, 1, &mut obs);
        assert_eq!(r.served_by, Level::L1);
    }

    #[test]
    fn cross_core_read_hits_llc() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        h.access(CoreId(0), Addr(0x2000), AccessKind::Read, 0, &mut obs);
        let r = h.access(CoreId(1), Addr(0x2000), AccessKind::Read, 5, &mut obs);
        assert_eq!(r.served_by, Level::L3);
        assert_eq!(r.latency, 35);
        // Both cores are now sharers.
        let meta = h.llc_meta(Addr(0x2000)).expect("resident");
        assert!(meta.sharers.contains(CoreId(0)));
        assert!(meta.sharers.contains(CoreId(1)));
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        h.access(CoreId(0), Addr(0x2000), AccessKind::Read, 0, &mut obs);
        h.access(CoreId(1), Addr(0x2000), AccessKind::Read, 1, &mut obs);
        assert!(h.l1_contains(CoreId(0), Addr(0x2000)));
        // Core 1 writes: core 0's private copies must be invalidated.
        h.access(CoreId(1), Addr(0x2000), AccessKind::Write, 2, &mut obs);
        assert!(!h.l1_contains(CoreId(0), Addr(0x2000)));
        assert!(h.stats().coherence_invalidations > 0);
        let meta = h.llc_meta(Addr(0x2000)).expect("resident");
        assert!(meta.sharers.is_sole(CoreId(1)));
        assert!(meta.dirty());
    }

    #[test]
    fn llc_eviction_back_invalidates_private_copies() {
        let mut h = hierarchy();
        let mut obs = RecordingObserver::default();
        let ways = h.llc_ways();
        let sets = h.llc_sets() as u64;
        let line_size = h.line_size();
        // Core 0 owns the target; core 1 thrashes the target's LLC set. The
        // conflict lines alias only in core 1's private caches, so core 0's
        // L1 copy survives until the LLC eviction back-invalidates it.
        let target = Addr(0);
        h.access(CoreId(0), target, AccessKind::Read, 0, &mut obs);
        assert!(h.l1_contains(CoreId(0), target));
        for i in 1..=(ways as u64) {
            let addr = Addr(i * sets * line_size); // same LLC set, different tag
            h.access(CoreId(1), addr, AccessKind::Read, i, &mut obs);
        }
        // The target must have been evicted from the LLC and, by
        // inclusivity, from core 0's L1 as well.
        assert!(!h.llc_contains(target));
        assert!(
            !h.l1_contains(CoreId(0), target),
            "back-invalidation failed"
        );
        assert!(h.stats().back_invalidations > 0);
        assert!(h.stats().llc_evictions >= 1);
        assert!(!obs.evictions.is_empty());
    }

    #[test]
    fn observer_tag_marks_line_protected() {
        let mut h = hierarchy();
        let mut obs = RecordingObserver::default();
        let line = Addr(0x4000).line(64);
        obs.tag_lines.push(line);
        h.access(CoreId(0), Addr(0x4000), AccessKind::Read, 0, &mut obs);
        let meta = h.llc_meta(Addr(0x4000)).expect("resident");
        assert!(meta.protected());
        assert!(meta.accessed(), "demand fill counts as accessed");
    }

    #[test]
    fn prefetch_fill_is_protected_and_unaccessed() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let line = Addr(0x8000).line(64);
        h.insert_prefetch(line, 0, &mut obs);
        let meta = h.llc_meta(Addr(0x8000)).expect("resident");
        assert!(meta.protected());
        assert!(!meta.accessed());
        assert!(meta.prefetched());
        assert_eq!(h.stats().prefetch_fills, 1);
        assert_eq!(h.dram().prefetch_reads(), 1);
    }

    #[test]
    fn demand_hit_on_prefetched_line_counts_prefetch_hit() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let addr = Addr(0x8000);
        h.insert_prefetch(addr.line(64), 0, &mut obs);
        let r = h.access(CoreId(0), addr, AccessKind::Read, 5, &mut obs);
        assert_eq!(r.served_by, Level::L3);
        assert!(r.prefetch_hit);
        assert_eq!(h.stats().prefetch_hits, 1);
        // Second access is an L1 hit, no more prefetch credit.
        let r = h.access(CoreId(0), addr, AccessKind::Read, 6, &mut obs);
        assert!(!r.prefetch_hit);
    }

    #[test]
    fn prefetch_of_resident_line_just_refreshes_tag() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        h.access(CoreId(0), Addr(0x1000), AccessKind::Read, 0, &mut obs);
        h.insert_prefetch(Addr(0x1000).line(64), 1, &mut obs);
        assert_eq!(h.stats().prefetch_fills, 0);
        assert!(h.llc_meta(Addr(0x1000)).expect("resident").protected());
    }

    #[test]
    fn dirty_llc_eviction_writes_back() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let ways = h.llc_ways();
        let sets = h.llc_sets() as u64;
        let ls = h.line_size();
        h.access(CoreId(0), Addr(0), AccessKind::Write, 0, &mut obs);
        for i in 1..=(ways as u64) {
            h.access(
                CoreId(0),
                Addr(i * sets * ls),
                AccessKind::Read,
                i,
                &mut obs,
            );
        }
        assert!(!h.llc_contains(Addr(0)));
        assert!(h.stats().writebacks >= 1);
        assert!(h.dram().writes() >= 1);
    }

    #[test]
    fn eviction_notification_carries_tag_bits() {
        let mut h = hierarchy();
        let mut obs = RecordingObserver::default();
        let target_line = Addr(0).line(64);
        obs.tag_lines.push(target_line);
        h.access(CoreId(0), Addr(0), AccessKind::Read, 0, &mut obs);
        let ways = h.llc_ways();
        let sets = h.llc_sets() as u64;
        let ls = h.line_size();
        for i in 1..=(ways as u64) {
            h.access(
                CoreId(0),
                Addr(i * sets * ls),
                AccessKind::Read,
                i,
                &mut obs,
            );
        }
        let evict = obs
            .evictions
            .iter()
            .find(|(l, _, _, _)| *l == target_line)
            .expect("target must have been evicted");
        assert!(evict.1, "protected bit must survive to eviction");
        assert!(evict.2, "accessed bit must survive to eviction");
    }

    #[test]
    fn memory_fetch_reported_to_observer_once_per_miss() {
        let mut h = hierarchy();
        let mut obs = RecordingObserver::default();
        h.access(CoreId(0), Addr(0x40), AccessKind::Read, 0, &mut obs);
        h.access(CoreId(0), Addr(0x40), AccessKind::Read, 1, &mut obs);
        h.access(CoreId(1), Addr(0x40), AccessKind::Read, 2, &mut obs);
        assert_eq!(obs.fetches.len(), 1, "only the cold miss reaches memory");
    }

    #[test]
    fn stats_levels_are_consistent() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        for i in 0..100u64 {
            h.access(CoreId(0), Addr(i * 64), AccessKind::Read, i, &mut obs);
        }
        for i in 0..100u64 {
            h.access(CoreId(0), Addr(i * 64), AccessKind::Read, 100 + i, &mut obs);
        }
        let c = h.stats().core(CoreId(0));
        assert_eq!(c.l1.accesses(), 200);
        assert_eq!(c.memory_fetches, 100);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        // small_test L1: 2KB, 2-way, 64B lines -> 16 sets. Fill set 0 of L1
        // beyond its 2 ways but within L2 capacity.
        let l1_sets = 16u64;
        for i in 0..3u64 {
            h.access(
                CoreId(0),
                Addr(i * l1_sets * 64),
                AccessKind::Read,
                i,
                &mut obs,
            );
        }
        // First line fell out of L1 but stays in L2.
        let r = h.access(CoreId(0), Addr(0), AccessKind::Read, 10, &mut obs);
        assert_eq!(r.served_by, Level::L2);
    }
}
