//! Replacement policies for the set-associative caches.
//!
//! The paper does not vary replacement policy; LRU is the default. Tree-PLRU
//! and random replacement are provided for the ablation harness (DESIGN.md
//! §6) because detection-based defenses interact with how predictable LLC
//! evictions are.

use crate::types::Cycle;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// True least-recently-used.
    Lru,
    /// Tree pseudo-LRU (binary decision tree per set), as implemented in most
    /// real L1/L2 caches.
    TreePlru,
    /// Uniform random victim selection, seeded deterministically.
    Random {
        /// Seed for the victim-selection generator.
        seed: u64,
    },
}

impl Default for Replacement {
    fn default() -> Self {
        Replacement::Lru
    }
}

/// Per-cache replacement state machine.
///
/// The cache reports accesses and fills; the policy answers victim queries.
/// All methods take the set index so one policy instance serves the whole
/// cache.
#[derive(Debug, Clone)]
pub enum ReplacementPolicy {
    /// LRU via per-way last-touch timestamps.
    Lru {
        /// `stamp[set * ways + way]` = last touch time.
        stamps: Vec<Cycle>,
        /// Monotone counter, incremented per touch (decoupled from sim time
        /// so two touches in the same cycle still order).
        clock: Cycle,
        /// Ways per set.
        ways: usize,
    },
    /// Tree-PLRU with `ways` a power of two.
    TreePlru {
        /// `ways - 1` internal tree bits per set.
        bits: Vec<bool>,
        /// Ways per set.
        ways: usize,
    },
    /// Random replacement with an xorshift generator.
    Random {
        /// Generator state.
        state: u64,
        /// Ways per set.
        ways: usize,
    },
}

impl ReplacementPolicy {
    /// Instantiates the policy for a cache of `sets × ways`.
    ///
    /// # Panics
    ///
    /// Panics if `Replacement::TreePlru` is requested with a non-power-of-two
    /// way count.
    #[must_use]
    pub fn new(kind: Replacement, sets: usize, ways: usize) -> Self {
        match kind {
            Replacement::Lru => ReplacementPolicy::Lru {
                stamps: vec![0; sets * ways],
                clock: 0,
                ways,
            },
            Replacement::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires power-of-two ways, got {ways}"
                );
                ReplacementPolicy::TreePlru {
                    bits: vec![false; sets * (ways - 1).max(1)],
                    ways,
                }
            }
            Replacement::Random { seed } => ReplacementPolicy::Random {
                state: if seed == 0 { 0xdead_beef_cafe_f00d } else { seed },
                ways,
            },
        }
    }

    /// Notes that `way` of `set` was touched (hit or fill).
    pub fn on_touch(&mut self, set: usize, way: usize) {
        match self {
            ReplacementPolicy::Lru { stamps, clock, ways } => {
                *clock += 1;
                stamps[set * *ways + way] = *clock;
            }
            ReplacementPolicy::TreePlru { bits, ways } => {
                if *ways == 1 {
                    return;
                }
                let base = set * (*ways - 1);
                // Walk root→leaf, pointing each node *away* from this way.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = way >= mid;
                    bits[base + node] = !go_right; // point away
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            ReplacementPolicy::Random { .. } => {}
        }
    }

    /// Chooses a victim way within `set`. All ways are assumed valid (the
    /// cache fills invalid ways before asking).
    pub fn victim(&mut self, set: usize) -> usize {
        match self {
            ReplacementPolicy::Lru { stamps, ways, .. } => {
                let base = set * *ways;
                let mut best = 0;
                let mut best_stamp = Cycle::MAX;
                for way in 0..*ways {
                    let s = stamps[base + way];
                    if s < best_stamp {
                        best_stamp = s;
                        best = way;
                    }
                }
                best
            }
            ReplacementPolicy::TreePlru { bits, ways } => {
                if *ways == 1 {
                    return 0;
                }
                let base = set * (*ways - 1);
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = bits[base + node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementPolicy::Random { state, ways } => {
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                (x % *ways as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = ReplacementPolicy::new(Replacement::Lru, 2, 4);
        for way in 0..4 {
            p.on_touch(0, way);
        }
        p.on_touch(0, 0); // way 0 is now most recent; way 1 is LRU
        assert_eq!(p.victim(0), 1);
        p.on_touch(0, 1);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut p = ReplacementPolicy::new(Replacement::Lru, 2, 2);
        p.on_touch(0, 0);
        p.on_touch(0, 1);
        p.on_touch(1, 1);
        p.on_touch(1, 0);
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.victim(1), 1);
    }

    #[test]
    fn tree_plru_never_picks_most_recent() {
        let mut p = ReplacementPolicy::new(Replacement::TreePlru, 1, 8);
        for way in 0..8 {
            p.on_touch(0, way);
        }
        for way in 0..8 {
            p.on_touch(0, way);
            let v = p.victim(0);
            assert_ne!(v, way, "PLRU must not evict the just-touched way");
            assert!(v < 8);
        }
    }

    #[test]
    fn tree_plru_single_way() {
        let mut p = ReplacementPolicy::new(Replacement::TreePlru, 4, 1);
        p.on_touch(2, 0);
        assert_eq!(p.victim(2), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_odd_ways() {
        let _ = ReplacementPolicy::new(Replacement::TreePlru, 1, 6);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let run = || {
            let mut p = ReplacementPolicy::new(Replacement::Random { seed: 9 }, 1, 16);
            (0..100).map(|_| p.victim(0)).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().all(|&v| v < 16));
        // Not constant.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_zero_seed_is_usable() {
        let mut p = ReplacementPolicy::new(Replacement::Random { seed: 0 }, 1, 4);
        let vs: Vec<_> = (0..50).map(|_| p.victim(0)).collect();
        assert!(vs.iter().any(|&v| v != vs[0]));
    }

    #[test]
    fn lru_full_cycle_order() {
        let mut p = ReplacementPolicy::new(Replacement::Lru, 1, 4);
        for way in [3, 1, 0, 2] {
            p.on_touch(0, way);
        }
        // Eviction order must follow touch order: 3, 1, 0, 2.
        for expect in [3, 1, 0, 2] {
            let v = p.victim(0);
            assert_eq!(v, expect);
            p.on_touch(0, v); // refresh so the next-oldest surfaces
        }
    }
}
