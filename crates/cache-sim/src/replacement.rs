//! Replacement policies for the set-associative caches.
//!
//! The paper does not vary replacement policy; LRU is the default. Tree-PLRU
//! and random replacement are provided for the ablation harness (see
//! "Recorded substitutions" in `ARCHITECTURE.md`) because detection-based
//! defenses interact with how predictable LLC evictions are.
//!
//! LRU recency stamps do **not** live here: they are interleaved with the
//! tags inside [`Cache`](crate::Cache)'s way array, so a lookup and its
//! recency update touch one host cache line per set instead of two parallel
//! arrays. This policy object only carries the monotone LRU clock (and the
//! full state machines of the non-default policies).

use crate::types::Cycle;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU (binary decision tree per set), as implemented in most
    /// real L1/L2 caches.
    TreePlru,
    /// Uniform random victim selection, seeded deterministically.
    Random {
        /// Seed for the victim-selection generator.
        seed: u64,
    },
}

/// Per-cache replacement state machine. Crate-internal: the LRU variant
/// only works driven by [`Cache`](crate::Cache), which keeps the recency
/// stamps interleaved with its tag array and special-cases LRU touch and
/// victim selection; [`on_touch`](Self::on_touch) and
/// [`victim`](Self::victim) serve the tree-PLRU and random policies.
#[derive(Debug, Clone)]
pub(crate) enum ReplacementPolicy {
    /// True LRU. Holds only the monotone touch clock; per-way stamps are
    /// stored in the cache's way array.
    Lru {
        /// Monotone counter, incremented per touch (decoupled from sim time
        /// so two touches in the same cycle still order).
        clock: Cycle,
    },
    /// Tree-PLRU with `ways` a power of two.
    TreePlru {
        /// `ways - 1` internal tree bits per set.
        bits: Vec<bool>,
        /// Ways per set.
        ways: usize,
    },
    /// Random replacement with an xorshift generator.
    Random {
        /// Generator state.
        state: u64,
        /// Ways per set.
        ways: usize,
    },
}

impl ReplacementPolicy {
    /// Instantiates the policy for a cache of `sets × ways`.
    ///
    /// # Panics
    ///
    /// Panics if `Replacement::TreePlru` is requested with a non-power-of-two
    /// way count.
    #[must_use]
    pub fn new(kind: Replacement, sets: usize, ways: usize) -> Self {
        match kind {
            Replacement::Lru => ReplacementPolicy::Lru { clock: 0 },
            Replacement::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires power-of-two ways, got {ways}"
                );
                ReplacementPolicy::TreePlru {
                    bits: vec![false; sets * (ways - 1).max(1)],
                    ways,
                }
            }
            Replacement::Random { seed } => ReplacementPolicy::Random {
                state: if seed == 0 {
                    0xdead_beef_cafe_f00d
                } else {
                    seed
                },
                ways,
            },
        }
    }

    /// For the LRU variant: advances the clock and returns the fresh stamp
    /// the cache must record for the touched way.
    ///
    /// Returns `None` without touching any state for non-LRU policies — the
    /// caller must then report the touch via [`on_touch`](Self::on_touch)
    /// (see `Cache::touch_way`, which uses the `None` as the fast-path
    /// discriminant).
    #[inline]
    pub fn lru_stamp(&mut self) -> Option<Cycle> {
        match self {
            ReplacementPolicy::Lru { clock } => {
                *clock += 1;
                Some(*clock)
            }
            _ => None,
        }
    }

    /// Notes that `way` of `set` was touched (hit or fill). No-op for LRU
    /// (the cache records the stamp from [`lru_stamp`](Self::lru_stamp)
    /// directly into its way array).
    pub fn on_touch(&mut self, set: usize, way: usize) {
        match self {
            ReplacementPolicy::Lru { .. } => {}
            ReplacementPolicy::TreePlru { bits, ways } => {
                if *ways == 1 {
                    return;
                }
                let base = set * (*ways - 1);
                // Walk root→leaf, pointing each node *away* from this way.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = way >= mid;
                    bits[base + node] = !go_right; // point away
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            ReplacementPolicy::Random { .. } => {}
        }
    }

    /// Chooses a victim way within `set` for the non-LRU policies. All ways
    /// are assumed valid (the cache fills invalid ways before asking).
    ///
    /// # Panics
    ///
    /// Panics for the LRU variant: LRU victims are chosen by the cache from
    /// its interleaved stamp array.
    pub fn victim(&mut self, set: usize) -> usize {
        match self {
            ReplacementPolicy::Lru { .. } => {
                unreachable!("LRU victim selection happens in Cache::fill")
            }
            ReplacementPolicy::TreePlru { bits, ways } => {
                if *ways == 1 {
                    return 0;
                }
                let base = set * (*ways - 1);
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = *ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = bits[base + node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementPolicy::Random { state, ways } => {
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                (x % *ways as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_clock_is_monotone() {
        let mut p = ReplacementPolicy::new(Replacement::Lru, 2, 4);
        assert_eq!(p.lru_stamp(), Some(1));
        assert_eq!(p.lru_stamp(), Some(2));
        assert_eq!(p.lru_stamp(), Some(3));
    }

    #[test]
    fn non_lru_policies_report_no_stamp() {
        let mut p = ReplacementPolicy::new(Replacement::TreePlru, 1, 4);
        assert_eq!(p.lru_stamp(), None);
        let mut p = ReplacementPolicy::new(Replacement::Random { seed: 1 }, 1, 4);
        assert_eq!(p.lru_stamp(), None);
    }

    #[test]
    fn tree_plru_never_picks_most_recent() {
        let mut p = ReplacementPolicy::new(Replacement::TreePlru, 1, 8);
        for way in 0..8 {
            p.on_touch(0, way);
        }
        for way in 0..8 {
            p.on_touch(0, way);
            let v = p.victim(0);
            assert_ne!(v, way, "PLRU must not evict the just-touched way");
            assert!(v < 8);
        }
    }

    #[test]
    fn tree_plru_single_way() {
        let mut p = ReplacementPolicy::new(Replacement::TreePlru, 4, 1);
        p.on_touch(2, 0);
        assert_eq!(p.victim(2), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_odd_ways() {
        let _ = ReplacementPolicy::new(Replacement::TreePlru, 1, 6);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let run = || {
            let mut p = ReplacementPolicy::new(Replacement::Random { seed: 9 }, 1, 16);
            (0..100).map(|_| p.victim(0)).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().all(|&v| v < 16));
        // Not constant.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn random_zero_seed_is_usable() {
        let mut p = ReplacementPolicy::new(Replacement::Random { seed: 0 }, 1, 4);
        let vs: Vec<_> = (0..50).map(|_| p.victim(0)).collect();
        assert!(vs.iter().any(|&v| v != vs[0]));
    }
}
