//! Epoch-parallel execution of a single simulated system.
//!
//! [`System::run_sharded`](crate::System::run_sharded) splits one simulation
//! across worker threads while producing **bit-identical** results to the
//! sequential engine. The key observation is that cores couple only through
//! the shared LLC: every L1/L2 interaction is private to one core, so a
//! *shard* (a contiguous range of cores) can advance independently as long
//! as its view of the LLC stays consistent.
//!
//! # The epoch protocol
//!
//! Simulated time is cut into epochs `[T, T + W)`. Each epoch runs three
//! phases:
//!
//! 1. **Speculate (parallel).** Every shard worker advances its cores
//!    through their *real* private L1/L2 caches against a private *clone* of
//!    the LLC, executing exactly the per-core schedule the sequential engine
//!    would (a `(clock, core)` min-heap restricted to the shard). Every
//!    LLC-touching operation — probes that miss L2, write upgrades, private
//!    eviction demotions — is appended to a per-shard log together with the
//!    worker's *predicted* outcome (serving level, latency, evicted victim
//!    and its sharer set, coherence invalidation set).
//! 2. **Merge + replay (sequential barrier).** The shard logs, each already
//!    sorted by `(step start, core id)` — the exact key the sequential
//!    scheduler orders steps by — are k-way merged and replayed against the
//!    *authoritative* LLC, DRAM, statistics, and traffic observer. The
//!    replay performs the true LLC mutations (so replacement state, the
//!    directory, and the observer see the globally interleaved op stream)
//!    and verifies each worker prediction against the authoritative outcome.
//! 3. **Commit or roll back.** If every prediction verified, shard-local
//!    statistics deltas are absorbed and the next epoch begins. On *any*
//!    divergence — a mispredicted serving level or latency, an eviction
//!    victim whose sharer set does not match or crosses a shard boundary, a
//!    coherence invalidation reaching another shard, or a monitor prefetch
//!    becoming due inside the epoch — the whole epoch is rolled back (cores
//!    rewind via access tapes, private caches and LLC/observer/DRAM/stats
//!    restore from snapshots) and re-executed with the sequential engine.
//!
//! Because every committed epoch is *verified* equivalent to sequential
//! execution and every rejected epoch is *re-executed* sequentially, the
//! final [`SimReport`](crate::SimReport) is bit-identical to
//! [`System::run`](crate::System::run) by construction — parallelism can
//! only degrade to sequential speed, never change results.
//! `tests/sharded_regression.rs` pins this across every bundled mix, trace,
//! and a cross-core conflict stress.
//!
//! # What can a worker safely *not* know?
//!
//! The verification rules are chosen so that everything a worker cannot
//! predict is either authoritative at replay time or irrelevant to the
//! worker's own evolution:
//!
//! * The observer's protect decision on a memory fetch only changes LLC
//!   metadata the observer itself later consumes — replay computes it
//!   authoritatively; workers fill a placeholder.
//! * An eviction victim mispredicted by a worker is harmless when both the
//!   predicted and the authoritative victim have **empty sharer sets**: no
//!   private cache is touched either way and the replay notifies the
//!   observer with the authoritative victim.
//! * Statistics split cleanly: workers count private-level events
//!   (L1/L2 service, back-invalidations and coherence invalidations they
//!   applied), the replay counts LLC-level events (L3/memory service, LLC
//!   evictions, writebacks, prefetch fills/hits, DRAM traffic).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::core::{Access, Core};
use crate::hierarchy::Hierarchy;
use crate::line::{LineMeta, SharerSet};
use crate::observer::TrafficObserver;
use crate::stats::HierarchyStats;
use crate::types::{CoreId, Cycle, Level, LineAddr};

/// Default epoch window in simulated cycles.
///
/// Long enough to amortize the per-epoch snapshot and barrier cost over
/// thousands of simulated accesses, short enough that cross-shard LLC
/// interference (which forces a rollback) stays rare on mix-style workloads.
pub const DEFAULT_EPOCH_CYCLES: Cycle = 16_384;

/// How [`System::run_sharded`](crate::System::run_sharded) splits one
/// simulation across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of worker shards. Cores are partitioned into `shards`
    /// contiguous, near-equal ranges; clamped to the core count. `0` or `1`
    /// selects the plain sequential engine.
    pub shards: usize,
    /// Base epoch window in simulated cycles (see [`DEFAULT_EPOCH_CYCLES`]).
    /// The engine adapts from here: the window doubles after every committed
    /// epoch (up to 64× this base) and resets to it on rollback, so
    /// commit-heavy workloads amortize the per-epoch snapshot cost over ever
    /// longer windows while conflict-heavy ones keep wasted speculation
    /// bounded.
    pub epoch_cycles: Cycle,
}

impl ShardSpec {
    /// A spec with `shards` workers and the default epoch window.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
        }
    }

    /// A spec whose epoch window scales with the configured LLC size.
    ///
    /// The per-epoch cost of the protocol is dominated by LLC snapshots
    /// (each worker probes a private clone, plus one rollback backup), which
    /// grow linearly with LLC capacity while the simulated work per cycle
    /// does not. Scaling the window by the LLC's size relative to the
    /// 4 MiB paper default keeps snapshot bytes per simulated cycle — and so
    /// the protocol's overhead ratio — roughly constant on scaled machines.
    #[must_use]
    pub fn for_config(config: &crate::config::SystemConfig, shards: usize) -> Self {
        const PAPER_LLC_BYTES: u64 = 4 << 20;
        let scale = (config.llc_bytes() / PAPER_LLC_BYTES).max(1);
        Self {
            shards,
            epoch_cycles: DEFAULT_EPOCH_CYCLES.saturating_mul(scale),
        }
    }

    /// Overrides the epoch window (clamped to at least 1 cycle at run time).
    #[must_use]
    pub fn with_epoch_cycles(mut self, epoch_cycles: Cycle) -> Self {
        self.epoch_cycles = epoch_cycles;
        self
    }
}

impl Default for ShardSpec {
    /// One shard per available host core.
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::new(threads)
    }
}

/// Execution counters of one [`run_sharded`](crate::System::run_sharded)
/// call: how much of the run committed in parallel and how much fell back to
/// the sequential engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochTelemetry {
    /// Parallel epochs attempted (speculate phase ran).
    pub parallel_epochs: u64,
    /// Parallel epochs whose replay verified and committed.
    pub committed_epochs: u64,
    /// Parallel epochs rolled back to sequential re-execution.
    pub rollbacks: u64,
    /// Windows executed by the sequential engine (rollback re-runs plus
    /// epochs skipped because a monitor prefetch was due inside the window).
    pub sequential_windows: u64,
    /// LLC operations verified by the replay phase of committed epochs.
    pub llc_ops_replayed: u64,
}

/// A worker's predicted outcome of one LLC probe.
#[derive(Debug, Clone, Copy)]
struct Predicted {
    /// Serving level: `Level::L3` or `Level::Memory`.
    served: Level,
    /// Total access latency, including coherence invalidation cost.
    latency: Cycle,
    /// Other sharers invalidated by a write (empty for reads).
    coherence: SharerSet,
    /// LLC victim evicted by a memory fill, if any.
    evicted: Option<PredictedEvict>,
}

/// A worker's predicted LLC eviction.
#[derive(Debug, Clone, Copy)]
struct PredictedEvict {
    line: LineAddr,
    /// The victim's directory sharer set at eviction time.
    sharers: SharerSet,
    /// OR of the dirty bits folded out of the back-invalidated private
    /// copies (the worker applied those invalidations itself).
    private_dirty: bool,
}

/// One logged LLC-touching operation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LlcOp {
    /// Step start time — the sequential scheduler's ordering key.
    start: Cycle,
    /// Core that performed the operation.
    core: CoreId,
    /// Access timestamp (step start plus think cycles) passed to the
    /// hierarchy and observer.
    now: Cycle,
    line: LineAddr,
    kind: LlcOpKind,
}

#[derive(Debug, Clone, Copy)]
enum LlcOpKind {
    /// An access that missed L2 and probed the LLC.
    Probe {
        is_write: bool,
        predicted: Predicted,
    },
    /// A write that hit L1/L2 and upgraded ownership through the directory.
    WriteUpgrade {
        predicted_extra: Cycle,
        predicted_others: SharerSet,
    },
    /// A private cache evicted its copy of `line` (directory update).
    Demote { private_dirty: bool },
}

/// Everything a shard worker produces: the op log, shard-local statistics,
/// and the state needed to roll the shard back.
pub(crate) struct ShardOutcome {
    base: usize,
    log: Vec<LlcOp>,
    stats: HierarchyStats,
    conflict: bool,
    backup_l1: Vec<Cache>,
    backup_l2: Vec<Cache>,
    tapes: Vec<Vec<Access>>,
    saved: Vec<(Cycle, u64, bool)>,
}

impl ShardOutcome {
    pub(crate) fn conflicted(&self) -> bool {
        self.conflict
    }

    pub(crate) fn log(&self) -> &[LlcOp] {
        &self.log
    }

    pub(crate) fn stats(&self) -> &HierarchyStats {
        &self.stats
    }
}

/// Borrowed inputs of one shard worker for one epoch.
pub(crate) struct ShardTask<'a> {
    /// Global index of the shard's first core.
    pub base: usize,
    /// Total cores in the system (sizes the shard-local statistics block).
    pub total_cores: usize,
    /// The shard's cores (authoritative — no other thread touches them).
    pub cores: &'a mut [Core],
    /// The shard cores' private L1s (authoritative).
    pub l1: &'a mut [Cache],
    /// The shard cores' private L2s (authoritative).
    pub l2: &'a mut [Cache],
    /// Epoch-start LLC snapshot; the worker probes `llc_scratch`, a private
    /// copy of this.
    pub llc: &'a Cache,
    /// Persistent per-shard scratch the snapshot is copied into — reused
    /// across epochs so speculation never re-allocates LLC-sized buffers.
    pub llc_scratch: &'a mut Cache,
    pub config: &'a SystemConfig,
    pub line_shift: u32,
}

/// Shard sizes for partitioning `cores` cores into `shards` contiguous
/// ranges: the first `cores % shards` shards take one extra core.
pub(crate) fn shard_sizes(cores: usize, shards: usize) -> Vec<usize> {
    let shards = shards.clamp(1, cores.max(1));
    let base = cores / shards;
    let rem = cores % shards;
    (0..shards).map(|s| base + usize::from(s < rem)).collect()
}

/// Per-core membership mask of the shard owning each core.
pub(crate) fn shard_masks(cores: usize, shards: usize) -> Vec<u64> {
    let mut masks = Vec::with_capacity(cores);
    let mut lo = 0usize;
    for size in shard_sizes(cores, shards) {
        let mask = mask_of_range(lo, size);
        for _ in 0..size {
            masks.push(mask);
        }
        lo += size;
    }
    masks
}

fn mask_of_range(base: usize, len: usize) -> u64 {
    debug_assert!(base + len <= 64, "sharer bitmap supports at most 64 cores");
    if len == 64 {
        u64::MAX
    } else {
        ((1u64 << len) - 1) << base
    }
}

/// Runs one shard for one epoch: advances every shard core whose next step
/// starts before `t_end`, speculating against a clone of the LLC snapshot.
pub(crate) fn run_shard_epoch(
    task: ShardTask<'_>,
    quota: u64,
    t_end: Cycle,
    stop: &AtomicBool,
) -> ShardOutcome {
    let ShardTask {
        base,
        total_cores,
        cores,
        l1,
        l2,
        llc,
        llc_scratch,
        config,
        line_shift,
    } = task;
    let n = cores.len();
    let backup_l1 = l1.to_vec();
    let backup_l2 = l2.to_vec();
    let saved: Vec<_> = cores.iter().map(Core::exec_state).collect();
    let mut tapes: Vec<Vec<Access>> = vec![Vec::new(); n];
    llc_scratch.clone_from(llc);
    let mut exec = ShardExec {
        base,
        mask: mask_of_range(base, n),
        l1,
        l2,
        llc: llc_scratch,
        config,
        line_shift,
        stats: HierarchyStats::new(total_cores),
        log: Vec::new(),
        conflict: false,
    };

    // The shard-local scheduler mirrors the sequential engine exactly: a
    // min-heap on (local clock, global core index), stepping the popped core
    // while it stays strictly earliest. Restricted to one shard this yields
    // the global sequential order filtered to the shard's cores, so the op
    // log comes out sorted by the merge key.
    let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::with_capacity(n);
    for (li, core) in cores.iter().enumerate() {
        if !core.is_exhausted() && core.retired() < quota && core.now() < t_end {
            heap.push(Reverse((core.now(), base + li)));
        }
    }
    'outer: while let Some(Reverse((_, idx))) = heap.pop() {
        let li = idx - base;
        loop {
            if stop.load(Ordering::Relaxed) {
                break 'outer; // Another shard conflicted; the epoch is doomed.
            }
            let start = cores[li].now();
            if start >= t_end {
                break; // The core's next step belongs to a later epoch.
            }
            let Some(access) = cores[li].begin_step(&mut tapes[li]) else {
                break; // Source exhausted.
            };
            let now = cores[li].now();
            let latency = exec.access(CoreId(idx), access, start, now);
            cores[li].finish_step(latency);
            if exec.conflict {
                stop.store(true, Ordering::Relaxed);
                break 'outer;
            }
            if cores[li].retired() >= quota {
                break;
            }
            let after = cores[li].now();
            if let Some(&Reverse(next)) = heap.peek() {
                if (after, idx) >= next {
                    heap.push(Reverse((after, idx)));
                    break;
                }
            }
        }
    }

    ShardOutcome {
        base,
        log: exec.log,
        stats: exec.stats,
        conflict: exec.conflict,
        backup_l1,
        backup_l2,
        tapes,
        saved,
    }
}

/// Rolls one shard back to its epoch-start state.
pub(crate) fn rollback_shard(outcome: ShardOutcome, cores: &mut [Core], hierarchy: &mut Hierarchy) {
    let ShardOutcome {
        base,
        backup_l1,
        backup_l2,
        tapes,
        saved,
        ..
    } = outcome;
    for (li, (l1, l2)) in backup_l1.into_iter().zip(backup_l2).enumerate() {
        let idx = base + li;
        cores[idx].rewind(saved[li], &tapes[li]);
        hierarchy.l1[idx] = l1;
        hierarchy.l2[idx] = l2;
    }
}

/// The speculative execution engine of one shard: the private-cache half is
/// authoritative (it mirrors [`Hierarchy::access`] exactly), the LLC half
/// runs against a clone and logs predictions for the replay to verify.
struct ShardExec<'a> {
    base: usize,
    /// Membership mask of this shard's cores.
    mask: u64,
    l1: &'a mut [Cache],
    l2: &'a mut [Cache],
    /// Private LLC copy, mutated only by this shard's speculated ops.
    llc: &'a mut Cache,
    config: &'a SystemConfig,
    line_shift: u32,
    /// Shard-local statistics delta: private-level events only.
    stats: HierarchyStats,
    log: Vec<LlcOp>,
    conflict: bool,
}

impl ShardExec<'_> {
    /// Mirror of [`Hierarchy::access`] — every branch, fill, and latency
    /// term corresponds 1:1 to the sequential implementation. Divergence
    /// here is caught by replay verification (and only costs a rollback),
    /// but the private-level halves (L1/L2 probes and fills) must stay
    /// exactly faithful: they are authoritative.
    fn access(&mut self, core: CoreId, access: Access, start: Cycle, now: Cycle) -> Cycle {
        let line = LineAddr(access.addr.0 >> self.line_shift);
        let is_write = access.kind.is_write();
        let li = core.0 - self.base;

        // ---- L1 hit ----
        if let Some(meta) = self.l1[li].touch(line) {
            if is_write {
                meta.dirty = true;
            }
            let mut latency = self.config.l1.latency;
            if is_write {
                latency += self.write_upgrade(core, line, start, now);
            }
            self.stats.record_served(core, Level::L1, latency);
            return latency;
        }

        // ---- L2 hit ----
        if self.l2[li].touch(line).is_some() {
            self.fill_l1(core, line, is_write, start, now);
            let mut latency = self.config.l2.latency;
            if is_write {
                latency += self.write_upgrade(core, line, start, now);
            }
            self.stats.record_served(core, Level::L2, latency);
            return latency;
        }

        // ---- L3 hit (speculative: probes the LLC clone) ----
        if let Some(meta) = self.llc.touch(line) {
            meta.accessed = true;
            meta.prefetched = false;
            meta.sharers.insert(core);
            if is_write {
                meta.dirty = true;
            }
            let mut latency = self.config.l3.latency;
            let mut coherence = SharerSet::empty();
            if is_write {
                let (extra, others) = self.invalidate_other_sharers(core, line);
                latency += extra;
                coherence = others;
            }
            // prefetch-hit accounting and L3-level stats happen at replay,
            // from the authoritative metadata.
            self.log.push(LlcOp {
                start,
                core,
                now,
                line,
                kind: LlcOpKind::Probe {
                    is_write,
                    predicted: Predicted {
                        served: Level::L3,
                        latency,
                        coherence,
                        evicted: None,
                    },
                },
            });
            self.fill_l2(core, line, start, now);
            self.fill_l1(core, line, is_write, start, now);
            return latency;
        }

        // ---- Memory (speculative) ----
        // The observer's protect decision is unknowable here; the replay
        // recomputes it. It does not affect anything the worker observes.
        let latency = self.config.l3.latency + self.config.dram_latency;
        let meta = LineMeta::demand_fill(core, is_write, false);
        let evicted = self.fill_llc(line, meta);
        self.log.push(LlcOp {
            start,
            core,
            now,
            line,
            kind: LlcOpKind::Probe {
                is_write,
                predicted: Predicted {
                    served: Level::Memory,
                    latency,
                    coherence: SharerSet::empty(),
                    evicted,
                },
            },
        });
        self.fill_l2(core, line, start, now);
        self.fill_l1(core, line, is_write, start, now);
        latency
    }

    fn in_shard(&self, core: CoreId) -> bool {
        self.mask & (1u64 << core.0) != 0
    }

    /// Speculative LLC fill: evict from the clone, back-invalidate the
    /// victim's private copies *within this shard*, and report the predicted
    /// victim. A victim shared outside the shard is a conflict — the other
    /// shard's cores would have needed a mid-epoch back-invalidation.
    fn fill_llc(&mut self, line: LineAddr, meta: LineMeta) -> Option<PredictedEvict> {
        let evicted = self.llc.fill(line, meta)?;
        if evicted.meta.sharers.bits() & !self.mask != 0 {
            self.conflict = true;
        }
        let mut private_dirty = false;
        for c in evicted.meta.sharers.iter() {
            if !self.in_shard(c) {
                continue;
            }
            let li = c.0 - self.base;
            if let Some(m) = self.l1[li].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                private_dirty |= m.dirty;
            }
            if let Some(m) = self.l2[li].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                private_dirty |= m.dirty;
            }
        }
        Some(PredictedEvict {
            line: evicted.line,
            sharers: evicted.meta.sharers,
            private_dirty,
        })
    }

    /// Mirror of `Hierarchy::fill_l2` (private levels authoritative, LLC
    /// demotion logged).
    fn fill_l2(&mut self, core: CoreId, line: LineAddr, start: Cycle, now: Cycle) {
        let li = core.0 - self.base;
        if self.l2[li].touch(line).is_some() {
            return;
        }
        if let Some(evicted) = self.l2[li].fill(line, LineMeta::default()) {
            let mut dirty = evicted.meta.dirty;
            if let Some(m) = self.l1[li].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                dirty |= m.dirty;
            }
            self.demote(core, evicted.line, dirty, start, now);
        }
    }

    /// Mirror of `Hierarchy::fill_l1`.
    fn fill_l1(&mut self, core: CoreId, line: LineAddr, is_write: bool, start: Cycle, now: Cycle) {
        let li = core.0 - self.base;
        if let Some(meta) = self.l1[li].touch(line) {
            meta.dirty |= is_write;
            return;
        }
        let meta = LineMeta {
            dirty: is_write,
            ..LineMeta::default()
        };
        if let Some(evicted) = self.l1[li].fill(line, meta) {
            if evicted.meta.dirty {
                if let Some(m) = self.l2[li].peek_mut(evicted.line) {
                    m.dirty = true;
                } else {
                    self.demote(core, evicted.line, true, start, now);
                }
            }
        }
    }

    /// Mirror of `Hierarchy::demote_private_copy`: applied to the clone and
    /// logged. Demotions carry no latency and touch no private state, so
    /// the replay applies them authoritatively without verification.
    fn demote(&mut self, core: CoreId, line: LineAddr, dirty: bool, start: Cycle, now: Cycle) {
        if let Some(m) = self.llc.peek_mut(line) {
            m.sharers.remove(core);
            m.dirty |= dirty;
        }
        // Writeback accounting for a vanished LLC copy happens at replay.
        self.log.push(LlcOp {
            start,
            core,
            now,
            line,
            kind: LlcOpKind::Demote {
                private_dirty: dirty,
            },
        });
    }

    /// Mirror of `Hierarchy::write_upgrade`, always logged — even when the
    /// clone misses the line — so the replay can detect an upgrade that the
    /// authoritative LLC would have charged differently.
    fn write_upgrade(&mut self, core: CoreId, line: LineAddr, start: Cycle, now: Cycle) -> Cycle {
        let mut needs_invalidation = false;
        if let Some(meta) = self.llc.peek_mut(line) {
            meta.dirty = true;
            if !meta.sharers.is_sole(core) && !meta.sharers.is_empty() {
                needs_invalidation = true;
            } else {
                meta.sharers.insert(core);
            }
        }
        let (extra, others) = if needs_invalidation {
            self.invalidate_other_sharers(core, line)
        } else {
            (0, SharerSet::empty())
        };
        self.log.push(LlcOp {
            start,
            core,
            now,
            line,
            kind: LlcOpKind::WriteUpgrade {
                predicted_extra: extra,
                predicted_others: others,
            },
        });
        extra
    }

    /// Mirror of `Hierarchy::invalidate_other_sharers`, restricted to this
    /// shard; an out-of-shard sharer is a conflict.
    fn invalidate_other_sharers(&mut self, core: CoreId, line: LineAddr) -> (Cycle, SharerSet) {
        let Some(meta) = self.llc.peek(line) else {
            return (0, SharerSet::empty());
        };
        let sharers = meta.sharers;
        let mut others = SharerSet::empty();
        for other in sharers.iter() {
            if other == core {
                continue;
            }
            others.insert(other);
            if !self.in_shard(other) {
                self.conflict = true;
                continue;
            }
            let li = other.0 - self.base;
            if self.l1[li].invalidate(line).is_some() {
                self.stats.coherence_invalidations += 1;
            }
            if self.l2[li].invalidate(line).is_some() {
                self.stats.coherence_invalidations += 1;
            }
        }
        if others.is_empty() {
            return (0, SharerSet::empty());
        }
        if let Some(meta) = self.llc.peek_mut(line) {
            meta.sharers = SharerSet::only(core);
        }
        (self.config.l3.latency, others)
    }
}

/// A verification failure: some worker prediction diverged from the
/// authoritative replay, or an op crossed a shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Conflict;

/// Merges the shard logs in `(step start, core id)` order — the sequential
/// scheduler's key — and replays every op against the authoritative LLC,
/// DRAM, statistics, and observer, verifying worker predictions.
///
/// On `Err(Conflict)` the hierarchy and observer are left partially mutated;
/// the caller must restore them from its epoch-start snapshots.
pub(crate) fn replay_logs(
    logs: &[&[LlcOp]],
    masks: &[u64],
    hierarchy: &mut Hierarchy,
    observer: &mut dyn TrafficObserver,
) -> Result<u64, Conflict> {
    let mut cursor = vec![0usize; logs.len()];
    let mut replayed = 0u64;
    loop {
        let mut best: Option<((Cycle, usize), usize)> = None;
        for (shard, log) in logs.iter().enumerate() {
            if let Some(op) = log.get(cursor[shard]) {
                let key = (op.start, op.core.0);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, shard));
                }
            }
        }
        let Some((_, shard)) = best else {
            break;
        };
        let op = logs[shard][cursor[shard]];
        cursor[shard] += 1;
        replay_op(&op, masks, hierarchy, observer)?;
        replayed += 1;
    }
    Ok(replayed)
}

fn replay_op(
    op: &LlcOp,
    masks: &[u64],
    hierarchy: &mut Hierarchy,
    observer: &mut dyn TrafficObserver,
) -> Result<(), Conflict> {
    let core = op.core;
    let line = op.line;
    match op.kind {
        LlcOpKind::Probe {
            is_write,
            predicted,
        } => {
            if let Some(meta) = hierarchy.l3.touch(line) {
                // Authoritative L3 hit.
                if predicted.served != Level::L3 {
                    return Err(Conflict);
                }
                let prefetch_hit = meta.prefetched && !meta.accessed;
                meta.accessed = true;
                meta.prefetched = false;
                meta.sharers.insert(core);
                if is_write {
                    meta.dirty = true;
                }
                if prefetch_hit {
                    hierarchy.stats.prefetch_hits += 1;
                }
                let mut latency = hierarchy.config.l3.latency;
                if is_write {
                    latency += replay_invalidate_others(
                        hierarchy,
                        core,
                        line,
                        predicted.coherence,
                        masks,
                    )?;
                } else if !predicted.coherence.is_empty() {
                    return Err(Conflict);
                }
                if latency != predicted.latency {
                    return Err(Conflict);
                }
                hierarchy.stats.record_served(core, Level::L3, latency);
            } else {
                // Authoritative memory fetch.
                if predicted.served != Level::Memory {
                    return Err(Conflict);
                }
                let protect = observer.on_memory_fetch(line, op.now);
                let latency = hierarchy.config.l3.latency + hierarchy.dram.read();
                if latency != predicted.latency {
                    return Err(Conflict);
                }
                let meta = LineMeta::demand_fill(core, is_write, protect);
                replay_fill(
                    hierarchy,
                    observer,
                    core,
                    line,
                    meta,
                    predicted.evicted,
                    op.now,
                    masks,
                )?;
                hierarchy.stats.record_served(core, Level::Memory, latency);
            }
        }
        LlcOpKind::WriteUpgrade {
            predicted_extra,
            predicted_others,
        } => {
            let mut needs_invalidation = false;
            if let Some(meta) = hierarchy.l3.peek_mut(line) {
                meta.dirty = true;
                if !meta.sharers.is_sole(core) && !meta.sharers.is_empty() {
                    needs_invalidation = true;
                } else {
                    meta.sharers.insert(core);
                }
            }
            let extra = if needs_invalidation {
                replay_invalidate_others(hierarchy, core, line, predicted_others, masks)?
            } else {
                if !predicted_others.is_empty() {
                    return Err(Conflict);
                }
                0
            };
            if extra != predicted_extra {
                return Err(Conflict);
            }
        }
        LlcOpKind::Demote { private_dirty } => {
            // Demotions carry no worker-visible outcome: apply
            // authoritatively (mirror of `demote_private_copy`).
            if let Some(m) = hierarchy.l3.peek_mut(line) {
                m.sharers.remove(core);
                m.dirty |= private_dirty;
            } else if private_dirty {
                hierarchy.dram.write();
                hierarchy.stats.writebacks += 1;
            }
        }
    }
    Ok(())
}

/// Authoritative LLC fill with eviction verification (mirror of
/// `Hierarchy::fill_l3`, with the private back-invalidation replaced by the
/// check that the worker already performed exactly it).
#[allow(clippy::too_many_arguments)]
fn replay_fill(
    hierarchy: &mut Hierarchy,
    observer: &mut dyn TrafficObserver,
    core: CoreId,
    line: LineAddr,
    meta: LineMeta,
    predicted: Option<PredictedEvict>,
    now: Cycle,
    masks: &[u64],
) -> Result<(), Conflict> {
    match (hierarchy.l3.fill(line, meta), predicted) {
        (None, None) => Ok(()),
        (None, Some(pe)) => {
            // The worker evicted a victim the authoritative LLC did not.
            // Harmless only if the worker's victim had no private copies.
            if pe.sharers.is_empty() {
                Ok(())
            } else {
                Err(Conflict)
            }
        }
        (Some(evicted), pred) => {
            hierarchy.stats.llc_evictions += 1;
            let (pe_line, pe_sharers, pe_private_dirty) = match pred {
                Some(pe) => (Some(pe.line), pe.sharers, pe.private_dirty),
                None => (None, SharerSet::empty(), false),
            };
            let dirty;
            if pe_line == Some(evicted.line) && pe_sharers == evicted.meta.sharers {
                // Exact prediction: the worker back-invalidated precisely
                // the private copies the sequential engine would have —
                // provided none lay outside the worker's shard.
                if evicted.meta.sharers.bits() & !masks[core.0] != 0 {
                    return Err(Conflict);
                }
                dirty = evicted.meta.dirty | pe_private_dirty;
            } else if evicted.meta.sharers.is_empty() && pe_sharers.is_empty() {
                // Victim mismatch with no private copies on either side: no
                // back-invalidation was needed or performed, the observer is
                // notified with the authoritative victim below, and the
                // worker's clone divergence is discarded at the barrier.
                dirty = evicted.meta.dirty;
            } else {
                return Err(Conflict);
            }
            if dirty {
                hierarchy.dram.write();
                hierarchy.stats.writebacks += 1;
            }
            observer.on_llc_eviction(
                evicted.line,
                evicted.meta.protected,
                evicted.meta.accessed,
                now,
            );
            Ok(())
        }
    }
}

/// Authoritative mirror of `Hierarchy::invalidate_other_sharers`: updates
/// the directory and charges latency, verifying that the worker invalidated
/// exactly the authoritative sharer set (all of it inside the op's shard).
/// The private-copy invalidations themselves were already performed — and
/// counted — by the worker.
fn replay_invalidate_others(
    hierarchy: &mut Hierarchy,
    core: CoreId,
    line: LineAddr,
    predicted_others: SharerSet,
    masks: &[u64],
) -> Result<Cycle, Conflict> {
    let Some(meta) = hierarchy.l3.peek(line) else {
        return if predicted_others.is_empty() {
            Ok(0)
        } else {
            Err(Conflict)
        };
    };
    let mut others = meta.sharers;
    others.remove(core);
    if others != predicted_others {
        return Err(Conflict);
    }
    if others.bits() & !masks[core.0] != 0 {
        return Err(Conflict);
    }
    if others.is_empty() {
        return Ok(0);
    }
    if let Some(meta) = hierarchy.l3.peek_mut(line) {
        meta.sharers = SharerSet::only(core);
    }
    Ok(hierarchy.config.l3.latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sizes_partition_evenly() {
        assert_eq!(shard_sizes(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(shard_sizes(7, 4), vec![2, 2, 2, 1]);
        assert_eq!(shard_sizes(4, 8), vec![1, 1, 1, 1]);
        assert_eq!(shard_sizes(3, 1), vec![3]);
        assert_eq!(shard_sizes(1, 1), vec![1]);
        for (cores, shards) in [(13, 5), (64, 7), (2, 2)] {
            let sizes = shard_sizes(cores, shards);
            assert_eq!(sizes.iter().sum::<usize>(), cores);
            assert!(sizes.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn shard_masks_cover_all_cores_disjointly() {
        let masks = shard_masks(13, 5);
        assert_eq!(masks.len(), 13);
        for (core, mask) in masks.iter().enumerate() {
            assert_ne!(mask & (1 << core), 0, "core {core} not in its own mask");
        }
        // Masks of different shards are disjoint; within a shard, equal.
        let distinct: std::collections::BTreeSet<u64> = masks.iter().copied().collect();
        assert_eq!(distinct.len(), 5);
        assert_eq!(distinct.iter().fold(0, |a, m| a | m), (1 << 13) - 1);
        let or: u64 = distinct.iter().sum(); // disjoint ⇒ sum == or
        assert_eq!(or, (1 << 13) - 1);
    }

    #[test]
    fn mask_of_range_full_width() {
        assert_eq!(mask_of_range(0, 64), u64::MAX);
        assert_eq!(mask_of_range(0, 1), 1);
        assert_eq!(mask_of_range(62, 2), 0b11 << 62);
    }

    #[test]
    fn default_shard_spec_uses_host_parallelism() {
        let spec = ShardSpec::default();
        assert!(spec.shards >= 1);
        assert_eq!(spec.epoch_cycles, DEFAULT_EPOCH_CYCLES);
        let custom = ShardSpec::new(4).with_epoch_cycles(100);
        assert_eq!(custom.shards, 4);
        assert_eq!(custom.epoch_cycles, 100);
    }
}
