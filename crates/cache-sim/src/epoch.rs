//! Epoch-parallel execution of a single simulated system.
//!
//! [`System::run_sharded`](crate::System::run_sharded) splits one simulation
//! across worker threads while producing **bit-identical** results to the
//! sequential engine. The key observation is that cores couple only through
//! the shared LLC: every L1/L2 interaction is private to one core, so a
//! *shard* (a contiguous range of cores) can advance independently as long
//! as its view of the LLC stays consistent.
//!
//! # The epoch protocol
//!
//! Simulated time is cut into epochs `[T, T + W)`. Each epoch runs four
//! phases:
//!
//! 1. **Speculate (parallel, core-partitioned).** Every shard worker
//!    advances its cores through their *real* private L1/L2 caches against a
//!    private *clone* of the LLC, executing exactly the per-core schedule
//!    the sequential engine would (a `(clock, core)` min-heap restricted to
//!    the shard). Every LLC-touching operation — probes that miss L2, write
//!    upgrades, private eviction demotions — is appended to a per-shard log
//!    together with the worker's *predicted* outcome (serving level,
//!    latency, evicted victim and its sharer set, coherence invalidation
//!    set).
//! 2. **Verify (parallel, set-partitioned, read-only).** The shard logs,
//!    each already sorted by `(step start, core id)` — the exact key the
//!    sequential scheduler orders steps by — are k-way merged by a second
//!    team of workers, each owning a contiguous range of **LLC sets**.
//!    Because every logged op touches exactly one set, and LRU recency
//!    stamps (the only cross-set replacement state) are reconstructible
//!    from the merged op order alone, each worker can replay its sets'
//!    authoritative evolution in detached `SetImage` scratch — probing
//!    the live LLC read-only — and check every worker prediction exactly
//!    as the old serial replay did. Nothing shared is mutated: a failed
//!    verification costs only the shard-local rollback.
//! 3. **Commit (sequential, mutation-only).** Only verified epochs reach
//!    this slim phase, and it re-decides nothing: it walks the merge-ordered
//!    *annotations* the verify workers produced (memory fetches and
//!    evictions — the only observer-visible events), calls the observer
//!    hooks, patches the observer's protect decisions into the lines filled
//!    this epoch, memcpys the touched set images back into the live LLC,
//!    and absorbs the per-worker statistics and DRAM deltas.
//! 4. **Roll back on any divergence.** A mispredicted serving level or
//!    latency, an eviction victim whose sharer set does not match or
//!    crosses a shard boundary, a coherence invalidation reaching another
//!    shard, or a monitor prefetch becoming due inside the epoch — any of
//!    these rolls the whole epoch back (cores rewind via access tapes,
//!    private caches restore from snapshots; the LLC, DRAM, and statistics
//!    were never touched) and re-executes it with the sequential engine.
//!
//! Because every committed epoch is *verified* equivalent to sequential
//! execution and every rejected epoch is *re-executed* sequentially, the
//! final [`SimReport`](crate::SimReport) is bit-identical to
//! [`System::run`](crate::System::run) by construction — parallelism can
//! only degrade to sequential speed, never change results.
//! `tests/sharded_regression.rs` pins this across every bundled mix, trace,
//! and a cross-core conflict stress; `tests/sharded_differential.rs` pins
//! it across randomized workload mixes, core counts, shard counts, and
//! epoch bases.
//!
//! # Why the verify phase may run set-partitioned
//!
//! Every logged op addresses one line, hence one LLC set. Under LRU the only
//! state shared *between* sets is the monotone touch clock, and exactly the
//! probe ops advance it (one touch per probe, in merge order), so a worker
//! that walks the full merged stream can reconstruct the exact stamp the
//! sequential replay would assign to each touch — and therefore the exact
//! victim of every fill. Tree-PLRU keeps per-set bits (partitionable, but
//! not worth a second code path) and random replacement draws victims from
//! one global generator whose sequence depends on the cross-set eviction
//! interleaving — those policies fall back to the serial verify-while-
//! mutating replay (with its snapshot/restore cost), selected per run by
//! `Cache::is_lru`.
//!
//! # What can a worker safely *not* know?
//!
//! The verification rules are chosen so that everything a speculating shard
//! cannot predict is either recomputed authoritatively by the verify/commit
//! phases or irrelevant to the shard's own evolution:
//!
//! * The observer's protect decision on a memory fetch only changes LLC
//!   metadata the observer itself later consumes — the commit walk computes
//!   it authoritatively; workers fill a placeholder that the copyback
//!   patches.
//! * An eviction victim mispredicted by a shard is harmless when both the
//!   predicted and the authoritative victim have **empty sharer sets**: no
//!   private cache is touched either way and the commit walk notifies the
//!   observer with the authoritative victim.
//! * Statistics split cleanly: shards count private-level events (L1/L2
//!   service, back-invalidations and coherence invalidations they applied),
//!   verify workers count LLC-level events (L3/memory service, LLC
//!   evictions, writebacks, prefetch hits, DRAM traffic).
//!
//! # Zero-allocation steady state
//!
//! All per-epoch state — shard logs, access tapes, private-cache backups,
//! speculation LLC clones, set images, annotations, merge cursors — lives in
//! a `EpochScratch` owned by the `System` and is reset (never reallocated)
//! each epoch, mirroring how `Cache::clone_from` already recycles the LLC
//! snapshot buffers. Together with the persistent worker pool
//! (`crate::pool`) this makes steady-state epochs allocation-free, pinned by
//! `tests/no_alloc_hot_path.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::cache::{Cache, SetImage, NO_FILL_ANN};
use crate::config::SystemConfig;
use crate::core::{Access, Core};
use crate::hierarchy::Hierarchy;
use crate::line::{LineMeta, SharerSet};
use crate::observer::TrafficObserver;
use crate::stats::HierarchyStats;
use crate::types::{CoreId, Cycle, Level, LineAddr};

/// Default epoch window in simulated cycles.
///
/// Long enough to amortize the per-epoch snapshot and barrier cost over
/// thousands of simulated accesses, short enough that cross-shard LLC
/// interference (which forces a rollback) stays rare on mix-style workloads.
pub const DEFAULT_EPOCH_CYCLES: Cycle = 16_384;

/// Upper bound on shard (and verify-worker) count: the sharer bitmap —
/// and therefore the whole engine — supports at most 64 cores.
pub(crate) const MAX_SHARDS: usize = 64;

/// How [`System::run_sharded`](crate::System::run_sharded) splits one
/// simulation across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of worker shards. Cores are partitioned into `shards`
    /// contiguous, near-equal ranges; clamped to the core count. `0` or `1`
    /// selects the plain sequential engine.
    pub shards: usize,
    /// Base epoch window in simulated cycles (see [`DEFAULT_EPOCH_CYCLES`]).
    /// The engine adapts from here via the [`EpochWindow`] state machine:
    /// the window doubles after every committed epoch (up to 64× this base)
    /// and resets to it on rollback, so commit-heavy workloads amortize the
    /// per-epoch snapshot cost over ever longer windows while conflict-heavy
    /// ones keep wasted speculation bounded.
    pub epoch_cycles: Cycle,
}

impl ShardSpec {
    /// A spec with `shards` workers and the default epoch window.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            epoch_cycles: DEFAULT_EPOCH_CYCLES,
        }
    }

    /// A spec whose epoch window scales with the configured LLC size.
    ///
    /// The per-epoch cost of the protocol is dominated by LLC snapshots
    /// (each worker probes a private clone, plus the set copyback), which
    /// grow linearly with LLC capacity while the simulated work per cycle
    /// does not. Scaling the window by the LLC's size relative to the
    /// 4 MiB paper default keeps snapshot bytes per simulated cycle — and so
    /// the protocol's overhead ratio — roughly constant on scaled machines.
    #[must_use]
    pub fn for_config(config: &crate::config::SystemConfig, shards: usize) -> Self {
        const PAPER_LLC_BYTES: u64 = 4 << 20;
        let scale = (config.llc_bytes() / PAPER_LLC_BYTES).max(1);
        Self {
            shards,
            epoch_cycles: DEFAULT_EPOCH_CYCLES.saturating_mul(scale),
        }
    }

    /// Overrides the epoch window (clamped to at least 1 cycle at run time).
    #[must_use]
    pub fn with_epoch_cycles(mut self, epoch_cycles: Cycle) -> Self {
        self.epoch_cycles = epoch_cycles;
        self
    }
}

impl Default for ShardSpec {
    /// One shard per available host core.
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::new(threads)
    }
}

/// The adaptive epoch-window state machine: the per-epoch overhead
/// (snapshots, barriers, the commit walk) is independent of window length,
/// so commit-heavy workloads want long windows while conflict-heavy ones
/// want short windows that bound the wasted speculation.
///
/// The policy is deterministic — double on commit, capped at
/// [`MAX_GROWTH`](Self::MAX_GROWTH)× the base; reset to the base on
/// rollback — so the window sequence (and with it the simulation result)
/// depends only on the deterministic commit history, never on wall-clock
/// timing. Property-tested in this module's unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWindow {
    base: Cycle,
    current: Cycle,
}

impl EpochWindow {
    /// Growth cap: the window never exceeds `MAX_GROWTH × base`.
    pub const MAX_GROWTH: Cycle = 64;

    /// A window starting (and resetting) at `base` cycles, clamped to ≥ 1.
    #[must_use]
    pub fn new(base: Cycle) -> Self {
        let base = base.max(1);
        Self {
            base,
            current: base,
        }
    }

    /// The current window length in cycles.
    #[must_use]
    pub fn current(&self) -> Cycle {
        self.current
    }

    /// The base (post-rollback) window length in cycles.
    #[must_use]
    pub fn base(&self) -> Cycle {
        self.base
    }

    /// An epoch committed: double the window, saturating at the growth cap.
    pub fn on_commit(&mut self) {
        let max = self.base.saturating_mul(Self::MAX_GROWTH);
        self.current = self.current.saturating_mul(2).min(max);
    }

    /// An epoch rolled back: reset to the base window.
    pub fn on_rollback(&mut self) {
        self.current = self.base;
    }
}

/// Execution counters of one [`run_sharded`](crate::System::run_sharded)
/// call: how much of the run committed in parallel, how much fell back to
/// the sequential engine, and where the wall-clock went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochTelemetry {
    /// Parallel epochs attempted (speculate phase ran).
    pub parallel_epochs: u64,
    /// Parallel epochs whose verification passed and whose effects
    /// committed.
    pub committed_epochs: u64,
    /// Parallel epochs rolled back to sequential re-execution.
    pub rollbacks: u64,
    /// Windows executed by the sequential engine (rollback re-runs plus
    /// epochs skipped because a monitor prefetch was due inside the window).
    pub sequential_windows: u64,
    /// LLC operations checked by the verify phase of committed epochs.
    pub llc_ops_replayed: u64,
    /// Wall-clock nanoseconds in the parallel speculate phase.
    pub speculate_ns: u64,
    /// Wall-clock nanoseconds in the parallel verify phase (the serial
    /// replay phase it replaced is the `commit_ns` + `verify_ns` of old).
    pub verify_ns: u64,
    /// Wall-clock nanoseconds in the sequential mutation-only commit phase
    /// (observer walk + set copyback + delta absorption).
    pub commit_ns: u64,
    /// Wall-clock nanoseconds re-executing windows sequentially (rollback
    /// re-runs and prefetch-gated windows).
    pub sequential_ns: u64,
}

impl EpochTelemetry {
    /// Fraction of the phase-attributed wall-clock spent in the serial
    /// commit phase — the residue the verify/commit split shrank the old
    /// serial replay down to. `0.0` when no phase time was recorded.
    #[must_use]
    pub fn serial_commit_share(&self) -> f64 {
        let total = self.speculate_ns + self.verify_ns + self.commit_ns + self.sequential_ns;
        if total == 0 {
            0.0
        } else {
            self.commit_ns as f64 / total as f64
        }
    }
}

/// A worker's predicted outcome of one LLC probe.
#[derive(Debug, Clone, Copy)]
struct Predicted {
    /// Serving level: `Level::L3` or `Level::Memory`.
    served: Level,
    /// Total access latency, including coherence invalidation cost.
    latency: Cycle,
    /// Other sharers invalidated by a write (empty for reads).
    coherence: SharerSet,
    /// LLC victim evicted by a memory fill, if any.
    evicted: Option<PredictedEvict>,
}

/// A worker's predicted LLC eviction.
#[derive(Debug, Clone, Copy)]
struct PredictedEvict {
    line: LineAddr,
    /// The victim's directory sharer set at eviction time.
    sharers: SharerSet,
    /// OR of the dirty bits folded out of the back-invalidated private
    /// copies (the worker applied those invalidations itself).
    private_dirty: bool,
}

/// One logged LLC-touching operation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LlcOp {
    /// Step start time — the sequential scheduler's ordering key.
    start: Cycle,
    /// Core that performed the operation.
    core: CoreId,
    /// Access timestamp (step start plus think cycles) passed to the
    /// hierarchy and observer.
    now: Cycle,
    line: LineAddr,
    kind: LlcOpKind,
}

#[derive(Debug, Clone, Copy)]
enum LlcOpKind {
    /// An access that missed L2 and probed the LLC.
    Probe {
        is_write: bool,
        predicted: Predicted,
    },
    /// A write that hit L1/L2 and upgraded ownership through the directory.
    WriteUpgrade {
        predicted_extra: Cycle,
        predicted_others: SharerSet,
    },
    /// A private cache evicted its copy of `line` (directory update).
    Demote { private_dirty: bool },
}

/// Shard sizes for partitioning `cores` cores into `shards` contiguous
/// ranges: the first `cores % shards` shards take one extra core.
pub(crate) fn shard_sizes(cores: usize, shards: usize) -> Vec<usize> {
    let shards = shards.clamp(1, cores.max(1));
    let base = cores / shards;
    let rem = cores % shards;
    (0..shards).map(|s| base + usize::from(s < rem)).collect()
}

/// Per-core membership mask of the shard owning each core.
pub(crate) fn shard_masks(cores: usize, shards: usize) -> Vec<u64> {
    let mut masks = Vec::with_capacity(cores);
    let mut lo = 0usize;
    for size in shard_sizes(cores, shards) {
        let mask = mask_of_range(lo, size);
        for _ in 0..size {
            masks.push(mask);
        }
        lo += size;
    }
    masks
}

fn mask_of_range(base: usize, len: usize) -> u64 {
    debug_assert!(base + len <= 64, "sharer bitmap supports at most 64 cores");
    if len == 64 {
        u64::MAX
    } else {
        ((1u64 << len) - 1) << base
    }
}

/// Pooled per-shard state of the speculate phase, reset (never reallocated)
/// every epoch.
#[derive(Debug)]
pub(crate) struct ShardScratch {
    /// Speculation LLC: `clone_from`'d from the epoch-start snapshot.
    pub(crate) llc: Cache,
    /// Epoch-start copies of the shard cores' private L1s.
    pub(crate) backup_l1: Vec<Cache>,
    /// Epoch-start copies of the shard cores' private L2s.
    pub(crate) backup_l2: Vec<Cache>,
    /// Per-core access tapes (accesses consumed this epoch, for rewind).
    pub(crate) tapes: Vec<Vec<Access>>,
    /// The shard's LLC op log, sorted by `(start, core)`.
    pub(crate) log: Vec<LlcOp>,
    /// Shard-local statistics delta: private-level events only.
    pub(crate) stats: HierarchyStats,
    /// Epoch-start `(now, retired, exhausted)` of each shard core.
    pub(crate) saved: Vec<(Cycle, u64, bool)>,
    /// The shard-local scheduler heap, reused across epochs.
    pub(crate) heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// The shard hit a cross-shard interaction while speculating.
    pub(crate) conflict: bool,
}

/// A merge-ordered, observer-visible side effect recorded by a verify
/// worker: the commit walk replays exactly these against the observer,
/// re-deciding nothing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpEffect {
    /// Index of the originating op in the epoch's merged stream (the commit
    /// walk's ordering key; ties — a fetch and its eviction — stay in list
    /// order within one worker and cannot occur across workers, whose set
    /// ranges are disjoint).
    op_idx: u32,
    /// Access timestamp passed to the observer hook.
    now: Cycle,
    /// The fetched line (fetch) or the authoritative victim (evict).
    line: LineAddr,
    kind: EffectKind,
}

#[derive(Debug, Clone, Copy)]
enum EffectKind {
    /// `observer.on_memory_fetch`; `protect` is the observer's decision,
    /// written during the commit walk and read back by the copyback (and by
    /// later evictions of the same line via `protect_from`).
    Fetch { protect: bool },
    /// `observer.on_llc_eviction` of `line`.
    Evict {
        /// The victim's protect tag as of the epoch start — authoritative
        /// unless the victim was demand-filled *this epoch*.
        protected: bool,
        /// The victim's accessed tag (fully deterministic).
        accessed: bool,
        /// Annotation index (same worker) of the in-epoch fetch that filled
        /// the victim, or [`NO_FILL_ANN`]: the commit walk then uses that
        /// fetch's protect decision instead of `protected`.
        protect_from: u32,
    },
}

/// Pooled state of one set-partitioned verify worker.
#[derive(Debug)]
pub(crate) struct VerifyScratch {
    /// First LLC set this worker owns.
    pub(crate) set_lo: usize,
    /// One past the last LLC set this worker owns.
    pub(crate) set_hi: usize,
    /// Detached images of the owned sets, indexed `set - set_lo`; snapshot
    /// lazily (see `epoch_tag`) so an epoch only copies the sets it touches.
    images: Vec<SetImage>,
    /// Epoch id each image was last snapshotted for; `!= epoch_id` means
    /// the image is stale and must be re-exported before use.
    epoch_tag: Vec<u64>,
    /// Owned sets touched this epoch (the copyback list).
    touched: Vec<usize>,
    /// K-way merge cursors over the shard logs.
    cursor: Vec<usize>,
    /// Merge-ordered observer-visible effects (see [`OpEffect`]).
    ann: Vec<OpEffect>,
    /// LLC-level statistics delta (L3/memory service, evictions,
    /// writebacks, prefetch hits).
    stats: HierarchyStats,
    /// DRAM demand reads this worker's ops performed.
    dram_reads: u64,
    /// DRAM writebacks this worker's ops performed.
    dram_writes: u64,
    /// A prediction failed verification.
    pub(crate) conflict: bool,
    /// Ops this worker verified (its share of the merged stream).
    pub(crate) ops: u64,
    /// Total probe ops in the merged stream (identical across workers; the
    /// committed LRU clock advances by exactly this much).
    total_probes: u64,
}

/// All pooled epoch state owned by a `System`, rebuilt only when the
/// `(cores, shards)` shape changes and reset in place otherwise.
#[derive(Debug)]
pub(crate) struct EpochScratch {
    /// Per-shard speculate-phase state.
    pub(crate) shards: Vec<ShardScratch>,
    /// Per-worker verify-phase state.
    pub(crate) verify: Vec<VerifyScratch>,
    /// Per-core shard-membership masks.
    pub(crate) masks: Vec<u64>,
    /// Shard sizes (contiguous core ranges).
    pub(crate) sizes: Vec<usize>,
    /// Merge cursors of the commit walk (also reused by the legacy serial
    /// replay of non-LRU policies).
    pub(crate) commit_cursor: Vec<usize>,
    /// Pre-replay LLC backup — only the legacy (non-LRU) path mutates the
    /// LLC before knowing the epoch verifies, so only it needs this.
    pub(crate) llc_backup: Option<Cache>,
    /// `(cores, shards)` the scratch is currently shaped for.
    shape: (usize, usize),
    /// Monotone epoch counter versioning the lazy set-image snapshots.
    epoch_id: u64,
}

impl EpochScratch {
    /// An empty scratch; [`prepare`](Self::prepare) shapes it.
    pub(crate) fn new() -> Self {
        Self {
            shards: Vec::new(),
            verify: Vec::new(),
            masks: Vec::new(),
            sizes: Vec::new(),
            commit_cursor: Vec::new(),
            llc_backup: None,
            shape: (0, 0),
            epoch_id: 0,
        }
    }

    /// (Re)shapes the scratch for `shards` shards over the hierarchy's
    /// cores. A no-op — in particular, allocation-free — when the shape is
    /// unchanged since the last call.
    pub(crate) fn prepare(&mut self, hierarchy: &Hierarchy, shards: usize) {
        let cores = hierarchy.l1.len();
        if self.shape == (cores, shards) {
            return;
        }
        self.shape = (cores, shards);
        self.masks = shard_masks(cores, shards);
        self.sizes = shard_sizes(cores, shards);
        self.shards.clear();
        let mut base = 0usize;
        for &size in &self.sizes {
            self.shards.push(ShardScratch {
                llc: hierarchy.l3.clone(),
                backup_l1: hierarchy.l1[base..base + size].to_vec(),
                backup_l2: hierarchy.l2[base..base + size].to_vec(),
                tapes: vec![Vec::new(); size],
                log: Vec::new(),
                stats: HierarchyStats::new(cores),
                saved: Vec::with_capacity(size),
                heap: BinaryHeap::with_capacity(size),
                conflict: false,
            });
            base += size;
        }
        let sets = hierarchy.l3.geometry().sets;
        let workers = self.sizes.len();
        self.verify.clear();
        for w in 0..workers {
            let set_lo = sets * w / workers;
            let set_hi = sets * (w + 1) / workers;
            self.verify.push(VerifyScratch {
                set_lo,
                set_hi,
                images: (set_lo..set_hi).map(|_| SetImage::default()).collect(),
                epoch_tag: vec![0; set_hi - set_lo],
                touched: Vec::new(),
                cursor: Vec::new(),
                ann: Vec::new(),
                stats: HierarchyStats::new(cores),
                dram_reads: 0,
                dram_writes: 0,
                conflict: false,
                ops: 0,
                total_probes: 0,
            });
        }
        self.llc_backup = None;
    }

    /// Starts a new epoch, returning its id (used to invalidate the lazy
    /// set-image snapshots without clearing them).
    pub(crate) fn begin_epoch(&mut self) -> u64 {
        self.epoch_id += 1;
        self.epoch_id
    }
}

/// Borrowed inputs of one shard worker for one epoch.
pub(crate) struct ShardTask<'a> {
    /// Global index of the shard's first core.
    pub base: usize,
    /// Total cores in the system (sizes the shard-local statistics block).
    pub total_cores: usize,
    /// The shard's cores (authoritative — no other thread touches them).
    pub cores: &'a mut [Core],
    /// The shard cores' private L1s (authoritative).
    pub l1: &'a mut [Cache],
    /// The shard cores' private L2s (authoritative).
    pub l2: &'a mut [Cache],
    /// Epoch-start LLC snapshot; the worker probes its scratch LLC, a
    /// private copy of this.
    pub llc: &'a Cache,
    pub config: &'a SystemConfig,
    pub line_shift: u32,
}

/// Runs one shard for one epoch: advances every shard core whose next step
/// starts before `t_end`, speculating against a clone of the LLC snapshot.
/// All epoch state (backups, tapes, log, stats) lands in `scratch`.
pub(crate) fn run_shard_epoch(
    task: &mut ShardTask<'_>,
    scratch: &mut ShardScratch,
    quota: u64,
    t_end: Cycle,
    stop: &AtomicBool,
) {
    let ShardScratch {
        llc: scratch_llc,
        backup_l1,
        backup_l2,
        tapes,
        log,
        stats,
        saved,
        heap,
        conflict,
    } = scratch;
    let base = task.base;
    let n = task.cores.len();
    for (backup, live) in backup_l1.iter_mut().zip(task.l1.iter()) {
        backup.clone_from(live);
    }
    for (backup, live) in backup_l2.iter_mut().zip(task.l2.iter()) {
        backup.clone_from(live);
    }
    saved.clear();
    saved.extend(task.cores.iter().map(Core::exec_state));
    for tape in tapes.iter_mut() {
        tape.clear();
    }
    log.clear();
    stats.reset(task.total_cores);
    scratch_llc.clone_from(task.llc);
    let mut exec = ShardExec {
        base,
        mask: mask_of_range(base, n),
        l1: &mut *task.l1,
        l2: &mut *task.l2,
        llc: scratch_llc,
        config: task.config,
        line_shift: task.line_shift,
        stats,
        log,
        conflict: false,
    };

    // The shard-local scheduler mirrors the sequential engine exactly: a
    // min-heap on (local clock, global core index), stepping the popped core
    // while it stays strictly earliest. Restricted to one shard this yields
    // the global sequential order filtered to the shard's cores, so the op
    // log comes out sorted by the merge key.
    heap.clear();
    for (li, core) in task.cores.iter().enumerate() {
        if !core.is_exhausted() && core.retired() < quota && core.now() < t_end {
            heap.push(Reverse((core.now(), base + li)));
        }
    }
    'outer: while let Some(Reverse((_, idx))) = heap.pop() {
        let li = idx - base;
        loop {
            if stop.load(Ordering::Relaxed) {
                break 'outer; // Another shard conflicted; the epoch is doomed.
            }
            let start = task.cores[li].now();
            if start >= t_end {
                break; // The core's next step belongs to a later epoch.
            }
            let Some(access) = task.cores[li].begin_step(&mut tapes[li]) else {
                break; // Source exhausted.
            };
            let now = task.cores[li].now();
            let latency = exec.access(CoreId(idx), access, start, now);
            task.cores[li].finish_step(latency);
            if exec.conflict {
                stop.store(true, Ordering::Relaxed);
                break 'outer;
            }
            if task.cores[li].retired() >= quota {
                break;
            }
            let after = task.cores[li].now();
            if let Some(&Reverse(next)) = heap.peek() {
                if (after, idx) >= next {
                    heap.push(Reverse((after, idx)));
                    break;
                }
            }
        }
    }

    *conflict = exec.conflict;
}

/// Rolls one shard back to its epoch-start state. The backup buffers are
/// swapped (not copied) into the hierarchy and hold garbage afterwards; the
/// next epoch's snapshot overwrites them.
pub(crate) fn rollback_shard(
    scratch: &mut ShardScratch,
    base: usize,
    cores: &mut [Core],
    hierarchy: &mut Hierarchy,
) {
    for li in 0..scratch.saved.len() {
        let idx = base + li;
        cores[idx].rewind(scratch.saved[li], &scratch.tapes[li]);
        std::mem::swap(&mut hierarchy.l1[idx], &mut scratch.backup_l1[li]);
        std::mem::swap(&mut hierarchy.l2[idx], &mut scratch.backup_l2[li]);
    }
}

/// The speculative execution engine of one shard: the private-cache half is
/// authoritative (it mirrors [`Hierarchy::access`] exactly), the LLC half
/// runs against a clone and logs predictions for the verify phase to check.
struct ShardExec<'a> {
    base: usize,
    /// Membership mask of this shard's cores.
    mask: u64,
    l1: &'a mut [Cache],
    l2: &'a mut [Cache],
    /// Private LLC copy, mutated only by this shard's speculated ops.
    llc: &'a mut Cache,
    config: &'a SystemConfig,
    line_shift: u32,
    /// Shard-local statistics delta: private-level events only.
    stats: &'a mut HierarchyStats,
    log: &'a mut Vec<LlcOp>,
    conflict: bool,
}

impl ShardExec<'_> {
    /// Mirror of [`Hierarchy::access`] — every branch, fill, and latency
    /// term corresponds 1:1 to the sequential implementation. Divergence
    /// here is caught by the verify phase (and only costs a rollback), but
    /// the private-level halves (L1/L2 probes and fills) must stay exactly
    /// faithful: they are authoritative.
    fn access(&mut self, core: CoreId, access: Access, start: Cycle, now: Cycle) -> Cycle {
        let line = LineAddr(access.addr.0 >> self.line_shift);
        let is_write = access.kind.is_write();
        let li = core.0 - self.base;

        // ---- L1 hit ----
        if let Some(meta) = self.l1[li].touch(line) {
            meta.or_dirty(is_write);
            let mut latency = self.config.l1.latency;
            if is_write {
                latency += self.write_upgrade(core, line, start, now);
            }
            self.stats.record_served(core, Level::L1, latency);
            return latency;
        }

        // ---- L2 hit ----
        if self.l2[li].touch(line).is_some() {
            self.fill_l1(core, line, is_write, start, now);
            let mut latency = self.config.l2.latency;
            if is_write {
                latency += self.write_upgrade(core, line, start, now);
            }
            self.stats.record_served(core, Level::L2, latency);
            return latency;
        }

        // ---- L3 hit (speculative: probes the LLC clone) ----
        if let Some(meta) = self.llc.touch(line) {
            meta.set_accessed(true);
            meta.set_prefetched(false);
            meta.sharers.insert(core);
            meta.or_dirty(is_write);
            let mut latency = self.config.l3.latency;
            let mut coherence = SharerSet::empty();
            if is_write {
                let (extra, others) = self.invalidate_other_sharers(core, line);
                latency += extra;
                coherence = others;
            }
            // prefetch-hit accounting and L3-level stats happen at verify,
            // from the authoritative metadata.
            self.log.push(LlcOp {
                start,
                core,
                now,
                line,
                kind: LlcOpKind::Probe {
                    is_write,
                    predicted: Predicted {
                        served: Level::L3,
                        latency,
                        coherence,
                        evicted: None,
                    },
                },
            });
            self.fill_l2(core, line, start, now);
            self.fill_l1(core, line, is_write, start, now);
            return latency;
        }

        // ---- Memory (speculative) ----
        // The observer's protect decision is unknowable here; the commit
        // walk recomputes it. It does not affect anything the worker
        // observes.
        let latency = self.config.l3.latency + self.config.dram_latency;
        let meta = LineMeta::demand_fill(core, is_write, false);
        let evicted = self.fill_llc(line, meta);
        self.log.push(LlcOp {
            start,
            core,
            now,
            line,
            kind: LlcOpKind::Probe {
                is_write,
                predicted: Predicted {
                    served: Level::Memory,
                    latency,
                    coherence: SharerSet::empty(),
                    evicted,
                },
            },
        });
        self.fill_l2(core, line, start, now);
        self.fill_l1(core, line, is_write, start, now);
        latency
    }

    fn in_shard(&self, core: CoreId) -> bool {
        self.mask & (1u64 << core.0) != 0
    }

    /// Speculative LLC fill: evict from the clone, back-invalidate the
    /// victim's private copies *within this shard*, and report the predicted
    /// victim. A victim shared outside the shard is a conflict — the other
    /// shard's cores would have needed a mid-epoch back-invalidation.
    fn fill_llc(&mut self, line: LineAddr, meta: LineMeta) -> Option<PredictedEvict> {
        let evicted = self.llc.fill(line, meta)?;
        if evicted.meta.sharers.bits() & !self.mask != 0 {
            self.conflict = true;
        }
        let mut private_dirty = false;
        for c in evicted.meta.sharers.iter() {
            if !self.in_shard(c) {
                continue;
            }
            let li = c.0 - self.base;
            if let Some(m) = self.l1[li].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                private_dirty |= m.dirty();
            }
            if let Some(m) = self.l2[li].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                private_dirty |= m.dirty();
            }
        }
        Some(PredictedEvict {
            line: evicted.line,
            sharers: evicted.meta.sharers,
            private_dirty,
        })
    }

    /// Mirror of `Hierarchy::fill_l2` (private levels authoritative, LLC
    /// demotion logged).
    fn fill_l2(&mut self, core: CoreId, line: LineAddr, start: Cycle, now: Cycle) {
        let li = core.0 - self.base;
        if self.l2[li].touch(line).is_some() {
            return;
        }
        if let Some(evicted) = self.l2[li].fill(line, LineMeta::default()) {
            let mut dirty = evicted.meta.dirty();
            if let Some(m) = self.l1[li].invalidate(evicted.line) {
                self.stats.back_invalidations += 1;
                dirty |= m.dirty();
            }
            self.demote(core, evicted.line, dirty, start, now);
        }
    }

    /// Mirror of `Hierarchy::fill_l1`.
    fn fill_l1(&mut self, core: CoreId, line: LineAddr, is_write: bool, start: Cycle, now: Cycle) {
        let li = core.0 - self.base;
        if let Some(meta) = self.l1[li].touch(line) {
            meta.or_dirty(is_write);
            return;
        }
        let meta = LineMeta::default().with_dirty(is_write);
        if let Some(evicted) = self.l1[li].fill(line, meta) {
            if evicted.meta.dirty() {
                if let Some(m) = self.l2[li].peek_mut(evicted.line) {
                    m.set_dirty(true);
                } else {
                    self.demote(core, evicted.line, true, start, now);
                }
            }
        }
    }

    /// Mirror of `Hierarchy::demote_private_copy`: applied to the clone and
    /// logged. Demotions carry no latency and touch no private state, so
    /// the verify phase applies them authoritatively without checking a
    /// prediction.
    fn demote(&mut self, core: CoreId, line: LineAddr, dirty: bool, start: Cycle, now: Cycle) {
        if let Some(m) = self.llc.peek_mut(line) {
            m.sharers.remove(core);
            m.or_dirty(dirty);
        }
        // Writeback accounting for a vanished LLC copy happens at verify.
        self.log.push(LlcOp {
            start,
            core,
            now,
            line,
            kind: LlcOpKind::Demote {
                private_dirty: dirty,
            },
        });
    }

    /// Mirror of `Hierarchy::write_upgrade`, always logged — even when the
    /// clone misses the line — so the verify phase can detect an upgrade
    /// that the authoritative LLC would have charged differently.
    fn write_upgrade(&mut self, core: CoreId, line: LineAddr, start: Cycle, now: Cycle) -> Cycle {
        let mut needs_invalidation = false;
        if let Some(meta) = self.llc.peek_mut(line) {
            meta.set_dirty(true);
            if !meta.sharers.is_sole(core) && !meta.sharers.is_empty() {
                needs_invalidation = true;
            } else {
                meta.sharers.insert(core);
            }
        }
        let (extra, others) = if needs_invalidation {
            self.invalidate_other_sharers(core, line)
        } else {
            (0, SharerSet::empty())
        };
        self.log.push(LlcOp {
            start,
            core,
            now,
            line,
            kind: LlcOpKind::WriteUpgrade {
                predicted_extra: extra,
                predicted_others: others,
            },
        });
        extra
    }

    /// Mirror of `Hierarchy::invalidate_other_sharers`, restricted to this
    /// shard; an out-of-shard sharer is a conflict.
    fn invalidate_other_sharers(&mut self, core: CoreId, line: LineAddr) -> (Cycle, SharerSet) {
        let Some(meta) = self.llc.peek(line) else {
            return (0, SharerSet::empty());
        };
        let sharers = meta.sharers;
        let mut others = SharerSet::empty();
        for other in sharers.iter() {
            if other == core {
                continue;
            }
            others.insert(other);
            if !self.in_shard(other) {
                self.conflict = true;
                continue;
            }
            let li = other.0 - self.base;
            if self.l1[li].invalidate(line).is_some() {
                self.stats.coherence_invalidations += 1;
            }
            if self.l2[li].invalidate(line).is_some() {
                self.stats.coherence_invalidations += 1;
            }
        }
        if others.is_empty() {
            return (0, SharerSet::empty());
        }
        if let Some(meta) = self.llc.peek_mut(line) {
            meta.sharers = SharerSet::only(core);
        }
        (self.config.l3.latency, others)
    }
}

/// A verification failure: some worker prediction diverged from the
/// authoritative outcome, or an op crossed a shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Conflict;

/// The parallel verify phase of one worker: k-way merges the shard logs in
/// `(step start, core id)` order — the sequential scheduler's key — and for
/// every op addressing one of this worker's LLC sets, replays the set's
/// authoritative evolution in a detached [`SetImage`] (lazily snapshotted
/// from the live LLC, which is only ever *read*), checking each shard
/// prediction exactly as the serial replay would.
///
/// LRU stamps are reconstructed from the merged stream: every probe op —
/// and only probe ops — advances the touch clock by one, so the stamp of
/// the k-th probe is `epoch-start clock + k` regardless of which set it
/// lands in. The worker counts probes globally (it walks the full stream
/// anyway) and stamps only its own sets' touches.
pub(crate) fn verify_epoch(
    shards: &[ShardScratch],
    vs: &mut VerifyScratch,
    llc: &Cache,
    config: &SystemConfig,
    masks: &[u64],
    epoch_id: u64,
) {
    let VerifyScratch {
        set_lo,
        set_hi,
        images,
        epoch_tag,
        touched,
        cursor,
        ann,
        stats,
        dram_reads,
        dram_writes,
        conflict,
        ops,
        total_probes,
    } = vs;
    let (set_lo, set_hi) = (*set_lo, *set_hi);
    touched.clear();
    ann.clear();
    stats.reset(masks.len());
    *dram_reads = 0;
    *dram_writes = 0;
    *conflict = false;
    *ops = 0;
    *total_probes = 0;
    cursor.clear();
    cursor.resize(shards.len(), 0);

    let start_clock = llc.lru_clock();
    let mut probes: u64 = 0;
    let mut op_idx: u32 = 0;
    loop {
        let mut best: Option<((Cycle, usize), usize)> = None;
        for (shard, scratch) in shards.iter().enumerate() {
            if let Some(op) = scratch.log.get(cursor[shard]) {
                let key = (op.start, op.core.0);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, shard));
                }
            }
        }
        let Some((_, shard)) = best else {
            break;
        };
        let op = shards[shard].log[cursor[shard]];
        cursor[shard] += 1;
        if matches!(op.kind, LlcOpKind::Probe { .. }) {
            probes += 1;
        }
        let set = llc.set_of(op.line);
        if set >= set_lo && set < set_hi {
            let slot = set - set_lo;
            if epoch_tag[slot] != epoch_id {
                llc.export_set(set, &mut images[slot]);
                epoch_tag[slot] = epoch_id;
                touched.push(set);
            }
            let outcome = verify_op(
                &op,
                &mut images[slot],
                set,
                llc,
                config,
                masks,
                start_clock + probes,
                op_idx,
                ann,
                stats,
                dram_reads,
                dram_writes,
            );
            if outcome.is_err() {
                *conflict = true;
                return;
            }
            *ops += 1;
        }
        op_idx += 1;
    }
    *total_probes = probes;
}

/// Checks one op against the authoritative set evolution (mirror of the
/// serial `replay_op`, with cache mutations redirected to the [`SetImage`],
/// observer calls deferred as annotations, and DRAM/statistics counted into
/// the worker's deltas).
#[allow(clippy::too_many_arguments)]
fn verify_op(
    op: &LlcOp,
    image: &mut SetImage,
    set: usize,
    llc: &Cache,
    config: &SystemConfig,
    masks: &[u64],
    stamp: Cycle,
    op_idx: u32,
    ann: &mut Vec<OpEffect>,
    stats: &mut HierarchyStats,
    dram_reads: &mut u64,
    dram_writes: &mut u64,
) -> Result<(), Conflict> {
    let core = op.core;
    let tag = llc.tag_of(op.line);
    match op.kind {
        LlcOpKind::Probe {
            is_write,
            predicted,
        } => {
            if let Some(meta) = image.touch(tag, stamp) {
                // Authoritative L3 hit.
                if predicted.served != Level::L3 {
                    return Err(Conflict);
                }
                let prefetch_hit = meta.prefetched() && !meta.accessed();
                meta.set_accessed(true);
                meta.set_prefetched(false);
                meta.sharers.insert(core);
                meta.or_dirty(is_write);
                if prefetch_hit {
                    stats.prefetch_hits += 1;
                }
                let mut latency = config.l3.latency;
                if is_write {
                    latency += verify_invalidate_others(
                        image,
                        tag,
                        core,
                        predicted.coherence,
                        masks,
                        config,
                    )?;
                } else if !predicted.coherence.is_empty() {
                    return Err(Conflict);
                }
                if latency != predicted.latency {
                    return Err(Conflict);
                }
                stats.record_served(core, Level::L3, latency);
            } else {
                // Authoritative memory fetch.
                if predicted.served != Level::Memory {
                    return Err(Conflict);
                }
                let latency = config.l3.latency + config.dram_latency;
                if latency != predicted.latency {
                    return Err(Conflict);
                }
                *dram_reads += 1;
                let fill_ann = u32::try_from(ann.len()).expect("under 4G ops per epoch");
                debug_assert_ne!(fill_ann, NO_FILL_ANN);
                ann.push(OpEffect {
                    op_idx,
                    now: op.now,
                    line: op.line,
                    kind: EffectKind::Fetch { protect: false },
                });
                // Placeholder protect bit; the copyback patches the commit
                // walk's authoritative decision in.
                let meta = LineMeta::demand_fill(core, is_write, false);
                let evicted = image.fill(tag, meta, stamp, fill_ann);
                verify_fill_outcome(
                    evicted,
                    predicted.evicted,
                    set,
                    llc,
                    core,
                    masks,
                    op_idx,
                    op.now,
                    ann,
                    stats,
                    dram_writes,
                )?;
                stats.record_served(core, Level::Memory, latency);
            }
        }
        LlcOpKind::WriteUpgrade {
            predicted_extra,
            predicted_others,
        } => {
            let mut needs_invalidation = false;
            if let Some(meta) = image.peek_mut(tag) {
                meta.set_dirty(true);
                if !meta.sharers.is_sole(core) && !meta.sharers.is_empty() {
                    needs_invalidation = true;
                } else {
                    meta.sharers.insert(core);
                }
            }
            let extra = if needs_invalidation {
                verify_invalidate_others(image, tag, core, predicted_others, masks, config)?
            } else {
                if !predicted_others.is_empty() {
                    return Err(Conflict);
                }
                0
            };
            if extra != predicted_extra {
                return Err(Conflict);
            }
        }
        LlcOpKind::Demote { private_dirty } => {
            // Demotions carry no worker-visible outcome: apply
            // authoritatively (mirror of `demote_private_copy`).
            if let Some(m) = image.peek_mut(tag) {
                m.sharers.remove(core);
                m.or_dirty(private_dirty);
            } else if private_dirty {
                *dram_writes += 1;
                stats.writebacks += 1;
            }
        }
    }
    Ok(())
}

/// Authoritative LLC-fill eviction verification (mirror of the serial
/// `replay_fill`, against the set image).
#[allow(clippy::too_many_arguments)]
fn verify_fill_outcome(
    evicted: Option<crate::cache::EvictedWay>,
    predicted: Option<PredictedEvict>,
    set: usize,
    llc: &Cache,
    core: CoreId,
    masks: &[u64],
    op_idx: u32,
    now: Cycle,
    ann: &mut Vec<OpEffect>,
    stats: &mut HierarchyStats,
    dram_writes: &mut u64,
) -> Result<(), Conflict> {
    match (evicted, predicted) {
        (None, None) => Ok(()),
        (None, Some(pe)) => {
            // The shard evicted a victim the authoritative LLC did not.
            // Harmless only if the shard's victim had no private copies.
            if pe.sharers.is_empty() {
                Ok(())
            } else {
                Err(Conflict)
            }
        }
        (Some(evicted), pred) => {
            stats.llc_evictions += 1;
            let evicted_line = llc.line_of(set, evicted.tag);
            let (pe_line, pe_sharers, pe_private_dirty) = match pred {
                Some(pe) => (Some(pe.line), pe.sharers, pe.private_dirty),
                None => (None, SharerSet::empty(), false),
            };
            let dirty;
            if pe_line == Some(evicted_line) && pe_sharers == evicted.meta.sharers {
                // Exact prediction: the shard back-invalidated precisely
                // the private copies the sequential engine would have —
                // provided none lay outside the shard.
                if evicted.meta.sharers.bits() & !masks[core.0] != 0 {
                    return Err(Conflict);
                }
                dirty = evicted.meta.dirty() | pe_private_dirty;
            } else if evicted.meta.sharers.is_empty() && pe_sharers.is_empty() {
                // Victim mismatch with no private copies on either side: no
                // back-invalidation was needed or performed, the observer is
                // notified with the authoritative victim, and the shard's
                // clone divergence is discarded at the barrier.
                dirty = evicted.meta.dirty();
            } else {
                return Err(Conflict);
            }
            if dirty {
                *dram_writes += 1;
                stats.writebacks += 1;
            }
            ann.push(OpEffect {
                op_idx,
                now,
                line: evicted_line,
                kind: EffectKind::Evict {
                    protected: evicted.meta.protected(),
                    accessed: evicted.meta.accessed(),
                    protect_from: evicted.fill_ann,
                },
            });
            Ok(())
        }
    }
}

/// Authoritative mirror of `Hierarchy::invalidate_other_sharers` against the
/// set image: updates the directory and charges latency, verifying that the
/// shard invalidated exactly the authoritative sharer set (all of it inside
/// the op's shard). The private-copy invalidations themselves were already
/// performed — and counted — by the shard.
fn verify_invalidate_others(
    image: &mut SetImage,
    tag: u64,
    core: CoreId,
    predicted_others: SharerSet,
    masks: &[u64],
    config: &SystemConfig,
) -> Result<Cycle, Conflict> {
    let Some(way) = image.find(tag) else {
        return if predicted_others.is_empty() {
            Ok(0)
        } else {
            Err(Conflict)
        };
    };
    let mut others = image.ways[way].meta.sharers;
    others.remove(core);
    if others != predicted_others {
        return Err(Conflict);
    }
    if others.bits() & !masks[core.0] != 0 {
        return Err(Conflict);
    }
    if others.is_empty() {
        return Ok(0);
    }
    image.ways[way].meta.sharers = SharerSet::only(core);
    Ok(config.l3.latency)
}

/// The first half of the commit phase: walks the verify workers' merge-
/// ordered annotations, calling the observer hooks in the exact order the
/// sequential engine would — `on_memory_fetch` (recording its protect
/// decision back into the annotation) and `on_llc_eviction` (resolving the
/// victim's protect tag via `protect_from` when the victim was filled this
/// epoch).
///
/// This is the only epoch step that mutates the observer before the epoch
/// is fully committed; the caller snapshots the observer first and restores
/// it if a prefetch scheduled here falls due inside the epoch.
pub(crate) fn commit_observer_walk(
    verify: &mut [VerifyScratch],
    cursor: &mut Vec<usize>,
    observer: &mut dyn TrafficObserver,
) {
    cursor.clear();
    cursor.resize(verify.len(), 0);
    loop {
        let mut best: Option<(u32, usize)> = None;
        for (w, vs) in verify.iter().enumerate() {
            if let Some(effect) = vs.ann.get(cursor[w]) {
                if best.is_none_or(|(bi, _)| effect.op_idx < bi) {
                    best = Some((effect.op_idx, w));
                }
            }
        }
        let Some((_, w)) = best else {
            break;
        };
        let i = cursor[w];
        cursor[w] += 1;
        let effect = verify[w].ann[i];
        match effect.kind {
            EffectKind::Fetch { .. } => {
                let protect = observer.on_memory_fetch(effect.line, effect.now);
                verify[w].ann[i].kind = EffectKind::Fetch { protect };
            }
            EffectKind::Evict {
                protected,
                accessed,
                protect_from,
            } => {
                let protected = if protect_from == NO_FILL_ANN {
                    protected
                } else {
                    // The victim was demand-filled this epoch: its protect
                    // tag is whatever the observer decided for that fetch
                    // (same worker — same set — and already walked, since
                    // the fill precedes the eviction in merge order).
                    match verify[w].ann[protect_from as usize].kind {
                        EffectKind::Fetch { protect } => protect,
                        EffectKind::Evict { .. } => {
                            unreachable!("fill_ann references a fetch annotation")
                        }
                    }
                };
                observer.on_llc_eviction(effect.line, protected, accessed, effect.now);
            }
        }
    }
}

/// The second half of the commit phase: patches the observer's protect
/// decisions into the lines demand-filled this epoch, memcpys every touched
/// set image back into the live LLC, advances the LRU touch clock by the
/// epoch's probe count, and absorbs the per-worker and per-shard statistics
/// and DRAM deltas.
pub(crate) fn commit_absorb(
    verify: &mut [VerifyScratch],
    shards: &[ShardScratch],
    hierarchy: &mut Hierarchy,
) {
    if let Some(first) = verify.first() {
        let clock = hierarchy.l3.lru_clock() + first.total_probes;
        hierarchy.l3.set_lru_clock(clock);
    }
    for vs in verify.iter_mut() {
        let VerifyScratch {
            set_lo,
            images,
            touched,
            ann,
            stats,
            dram_reads,
            dram_writes,
            ..
        } = vs;
        for &set in touched.iter() {
            let image = &mut images[set - *set_lo];
            for way in image.ways.iter_mut() {
                if way.valid && way.fill_ann != NO_FILL_ANN {
                    if let EffectKind::Fetch { protect } = ann[way.fill_ann as usize].kind {
                        way.meta.set_protected(protect);
                    }
                }
            }
            hierarchy.l3.import_set(set, image);
        }
        hierarchy.stats.absorb(stats);
        hierarchy
            .dram
            .absorb_demand_traffic(*dram_reads, *dram_writes);
    }
    for shard in shards {
        hierarchy.stats.absorb(&shard.stats);
    }
}

/// Legacy serial replay for non-LRU replacement policies (see the module
/// docs): merges the shard logs in `(step start, core id)` order and replays
/// every op against the authoritative LLC, DRAM, statistics, and observer,
/// verifying predictions *while mutating*.
///
/// On `Err(Conflict)` the hierarchy and observer are left partially mutated;
/// the caller must restore them from its epoch-start snapshots.
pub(crate) fn replay_logs(
    shards: &[ShardScratch],
    cursor: &mut Vec<usize>,
    masks: &[u64],
    hierarchy: &mut Hierarchy,
    observer: &mut dyn TrafficObserver,
) -> Result<u64, Conflict> {
    cursor.clear();
    cursor.resize(shards.len(), 0);
    let mut replayed = 0u64;
    loop {
        let mut best: Option<((Cycle, usize), usize)> = None;
        for (shard, scratch) in shards.iter().enumerate() {
            if let Some(op) = scratch.log.get(cursor[shard]) {
                let key = (op.start, op.core.0);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, shard));
                }
            }
        }
        let Some((_, shard)) = best else {
            break;
        };
        let op = shards[shard].log[cursor[shard]];
        cursor[shard] += 1;
        replay_op(&op, masks, hierarchy, observer)?;
        replayed += 1;
    }
    Ok(replayed)
}

fn replay_op(
    op: &LlcOp,
    masks: &[u64],
    hierarchy: &mut Hierarchy,
    observer: &mut dyn TrafficObserver,
) -> Result<(), Conflict> {
    let core = op.core;
    let line = op.line;
    match op.kind {
        LlcOpKind::Probe {
            is_write,
            predicted,
        } => {
            if let Some(meta) = hierarchy.l3.touch(line) {
                // Authoritative L3 hit.
                if predicted.served != Level::L3 {
                    return Err(Conflict);
                }
                let prefetch_hit = meta.prefetched() && !meta.accessed();
                meta.set_accessed(true);
                meta.set_prefetched(false);
                meta.sharers.insert(core);
                meta.or_dirty(is_write);
                if prefetch_hit {
                    hierarchy.stats.prefetch_hits += 1;
                }
                let mut latency = hierarchy.config.l3.latency;
                if is_write {
                    latency += replay_invalidate_others(
                        hierarchy,
                        core,
                        line,
                        predicted.coherence,
                        masks,
                    )?;
                } else if !predicted.coherence.is_empty() {
                    return Err(Conflict);
                }
                if latency != predicted.latency {
                    return Err(Conflict);
                }
                hierarchy.stats.record_served(core, Level::L3, latency);
            } else {
                // Authoritative memory fetch.
                if predicted.served != Level::Memory {
                    return Err(Conflict);
                }
                let protect = observer.on_memory_fetch(line, op.now);
                let latency = hierarchy.config.l3.latency + hierarchy.dram.read();
                if latency != predicted.latency {
                    return Err(Conflict);
                }
                let meta = LineMeta::demand_fill(core, is_write, protect);
                replay_fill(
                    hierarchy,
                    observer,
                    core,
                    line,
                    meta,
                    predicted.evicted,
                    op.now,
                    masks,
                )?;
                hierarchy.stats.record_served(core, Level::Memory, latency);
            }
        }
        LlcOpKind::WriteUpgrade {
            predicted_extra,
            predicted_others,
        } => {
            let mut needs_invalidation = false;
            if let Some(meta) = hierarchy.l3.peek_mut(line) {
                meta.set_dirty(true);
                if !meta.sharers.is_sole(core) && !meta.sharers.is_empty() {
                    needs_invalidation = true;
                } else {
                    meta.sharers.insert(core);
                }
            }
            let extra = if needs_invalidation {
                replay_invalidate_others(hierarchy, core, line, predicted_others, masks)?
            } else {
                if !predicted_others.is_empty() {
                    return Err(Conflict);
                }
                0
            };
            if extra != predicted_extra {
                return Err(Conflict);
            }
        }
        LlcOpKind::Demote { private_dirty } => {
            // Demotions carry no worker-visible outcome: apply
            // authoritatively (mirror of `demote_private_copy`).
            if let Some(m) = hierarchy.l3.peek_mut(line) {
                m.sharers.remove(core);
                m.or_dirty(private_dirty);
            } else if private_dirty {
                hierarchy.dram.write();
                hierarchy.stats.writebacks += 1;
            }
        }
    }
    Ok(())
}

/// Authoritative LLC fill with eviction verification (mirror of
/// `Hierarchy::fill_l3`, with the private back-invalidation replaced by the
/// check that the worker already performed exactly it).
#[allow(clippy::too_many_arguments)]
fn replay_fill(
    hierarchy: &mut Hierarchy,
    observer: &mut dyn TrafficObserver,
    core: CoreId,
    line: LineAddr,
    meta: LineMeta,
    predicted: Option<PredictedEvict>,
    now: Cycle,
    masks: &[u64],
) -> Result<(), Conflict> {
    match (hierarchy.l3.fill(line, meta), predicted) {
        (None, None) => Ok(()),
        (None, Some(pe)) => {
            // The worker evicted a victim the authoritative LLC did not.
            // Harmless only if the worker's victim had no private copies.
            if pe.sharers.is_empty() {
                Ok(())
            } else {
                Err(Conflict)
            }
        }
        (Some(evicted), pred) => {
            hierarchy.stats.llc_evictions += 1;
            let (pe_line, pe_sharers, pe_private_dirty) = match pred {
                Some(pe) => (Some(pe.line), pe.sharers, pe.private_dirty),
                None => (None, SharerSet::empty(), false),
            };
            let dirty;
            if pe_line == Some(evicted.line) && pe_sharers == evicted.meta.sharers {
                // Exact prediction: the worker back-invalidated precisely
                // the private copies the sequential engine would have —
                // provided none lay outside the worker's shard.
                if evicted.meta.sharers.bits() & !masks[core.0] != 0 {
                    return Err(Conflict);
                }
                dirty = evicted.meta.dirty() | pe_private_dirty;
            } else if evicted.meta.sharers.is_empty() && pe_sharers.is_empty() {
                // Victim mismatch with no private copies on either side: no
                // back-invalidation was needed or performed, the observer is
                // notified with the authoritative victim below, and the
                // worker's clone divergence is discarded at the barrier.
                dirty = evicted.meta.dirty();
            } else {
                return Err(Conflict);
            }
            if dirty {
                hierarchy.dram.write();
                hierarchy.stats.writebacks += 1;
            }
            observer.on_llc_eviction(
                evicted.line,
                evicted.meta.protected(),
                evicted.meta.accessed(),
                now,
            );
            Ok(())
        }
    }
}

/// Authoritative mirror of `Hierarchy::invalidate_other_sharers`: updates
/// the directory and charges latency, verifying that the worker invalidated
/// exactly the authoritative sharer set (all of it inside the op's shard).
/// The private-copy invalidations themselves were already performed — and
/// counted — by the worker.
fn replay_invalidate_others(
    hierarchy: &mut Hierarchy,
    core: CoreId,
    line: LineAddr,
    predicted_others: SharerSet,
    masks: &[u64],
) -> Result<Cycle, Conflict> {
    let Some(meta) = hierarchy.l3.peek(line) else {
        return if predicted_others.is_empty() {
            Ok(0)
        } else {
            Err(Conflict)
        };
    };
    let mut others = meta.sharers;
    others.remove(core);
    if others != predicted_others {
        return Err(Conflict);
    }
    if others.bits() & !masks[core.0] != 0 {
        return Err(Conflict);
    }
    if others.is_empty() {
        return Ok(0);
    }
    if let Some(meta) = hierarchy.l3.peek_mut(line) {
        meta.sharers = SharerSet::only(core);
    }
    Ok(hierarchy.config.l3.latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_sizes_partition_evenly() {
        assert_eq!(shard_sizes(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(shard_sizes(7, 4), vec![2, 2, 2, 1]);
        assert_eq!(shard_sizes(4, 8), vec![1, 1, 1, 1]);
        assert_eq!(shard_sizes(3, 1), vec![3]);
        assert_eq!(shard_sizes(1, 1), vec![1]);
        for (cores, shards) in [(13, 5), (64, 7), (2, 2)] {
            let sizes = shard_sizes(cores, shards);
            assert_eq!(sizes.iter().sum::<usize>(), cores);
            assert!(sizes.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn shard_masks_cover_all_cores_disjointly() {
        let masks = shard_masks(13, 5);
        assert_eq!(masks.len(), 13);
        for (core, mask) in masks.iter().enumerate() {
            assert_ne!(mask & (1 << core), 0, "core {core} not in its own mask");
        }
        // Masks of different shards are disjoint; within a shard, equal.
        let distinct: std::collections::BTreeSet<u64> = masks.iter().copied().collect();
        assert_eq!(distinct.len(), 5);
        assert_eq!(distinct.iter().fold(0, |a, m| a | m), (1 << 13) - 1);
        let or: u64 = distinct.iter().sum(); // disjoint ⇒ sum == or
        assert_eq!(or, (1 << 13) - 1);
    }

    #[test]
    fn mask_of_range_full_width() {
        assert_eq!(mask_of_range(0, 64), u64::MAX);
        assert_eq!(mask_of_range(0, 1), 1);
        assert_eq!(mask_of_range(62, 2), 0b11 << 62);
    }

    #[test]
    fn default_shard_spec_uses_host_parallelism() {
        let spec = ShardSpec::default();
        assert!(spec.shards >= 1);
        assert_eq!(spec.epoch_cycles, DEFAULT_EPOCH_CYCLES);
        let custom = ShardSpec::new(4).with_epoch_cycles(100);
        assert_eq!(custom.shards, 4);
        assert_eq!(custom.epoch_cycles, 100);
    }

    // ---- EpochWindow state machine (property tests) ----

    /// Replays a commit/rollback history against a window.
    fn replay_history(base: Cycle, history: &[bool]) -> EpochWindow {
        let mut w = EpochWindow::new(base);
        for &committed in history {
            if committed {
                w.on_commit();
            } else {
                w.on_rollback();
            }
        }
        w
    }

    proptest! {
        #[test]
        fn window_stays_within_bounds(
            base in 0u64..200_000,
            history in prop::collection::vec(any::<bool>(), 1..200),
        ) {
            let w = replay_history(base, &history);
            let effective_base = base.max(1);
            prop_assert!(w.current() >= effective_base);
            prop_assert!(w.current() <= effective_base.saturating_mul(EpochWindow::MAX_GROWTH));
            prop_assert_eq!(w.base(), effective_base);
        }

        #[test]
        fn window_resets_on_rollback_and_doubles_on_commit(
            base in 1u64..100_000,
            commits in 0usize..20,
        ) {
            let mut w = EpochWindow::new(base);
            for i in 0..commits {
                let before = w.current();
                w.on_commit();
                // Doubles exactly until the cap, then pins there.
                let expected = (before.saturating_mul(2)).min(base * EpochWindow::MAX_GROWTH);
                prop_assert_eq!(w.current(), expected);
                if i as u64 >= EpochWindow::MAX_GROWTH.trailing_zeros() as u64 {
                    prop_assert_eq!(w.current(), base * EpochWindow::MAX_GROWTH);
                }
            }
            w.on_rollback();
            prop_assert_eq!(w.current(), base);
        }

        #[test]
        fn window_depends_only_on_suffix_after_last_rollback(
            base in 1u64..10_000,
            prefix in prop::collection::vec(any::<bool>(), 0..40),
            commits_after in 0usize..10,
        ) {
            // Any history ending in a rollback followed by k commits equals
            // a fresh window with k commits: the state machine is memoryless
            // across rollbacks (what makes the window sequence — and the
            // simulation result — deterministic under rollback timing).
            let mut history = prefix.clone();
            history.push(false);
            history.extend(std::iter::repeat_n(true, commits_after));
            let with_prefix = replay_history(base, &history);
            let fresh = replay_history(base, &vec![true; commits_after]);
            prop_assert_eq!(with_prefix, fresh);
        }

        #[test]
        fn for_config_scales_window_with_llc_size(ways_scale in 1usize..16) {
            let mut config = SystemConfig::paper_default();
            config.l3.ways *= ways_scale;
            let spec = ShardSpec::for_config(&config, 4);
            prop_assert_eq!(spec.shards, 4);
            // paper_default LLC is the 4 MiB reference: the window scales
            // linearly with the ways multiplier.
            prop_assert_eq!(
                spec.epoch_cycles,
                DEFAULT_EPOCH_CYCLES * ways_scale as u64
            );
        }
    }

    #[test]
    fn zero_base_window_is_clamped_to_one_cycle() {
        let w = EpochWindow::new(0);
        assert_eq!(w.current(), 1);
        assert_eq!(w.base(), 1);
        let mut w = w;
        w.on_commit();
        assert_eq!(w.current(), 2);
    }

    #[test]
    fn saturating_base_window_never_overflows() {
        let mut w = EpochWindow::new(Cycle::MAX / 2);
        w.on_commit();
        w.on_commit();
        assert_eq!(w.current(), Cycle::MAX);
        w.on_rollback();
        assert_eq!(w.current(), Cycle::MAX / 2);
    }

    #[test]
    fn for_config_small_llcs_keep_default_window() {
        let spec = ShardSpec::for_config(&SystemConfig::small_test(), 2);
        assert_eq!(spec.epoch_cycles, DEFAULT_EPOCH_CYCLES);
    }

    #[test]
    fn scratch_reshapes_only_on_shape_change() {
        let hierarchy = Hierarchy::new(SystemConfig::small_test());
        let mut scratch = EpochScratch::new();
        scratch.prepare(&hierarchy, 2);
        assert_eq!(scratch.shards.len(), 2);
        assert_eq!(scratch.verify.len(), 2);
        let sets = hierarchy.l3.geometry().sets;
        assert_eq!(scratch.verify[0].set_lo, 0);
        assert_eq!(scratch.verify.last().expect("workers").set_hi, sets);
        // Verify ranges tile the sets exactly.
        for pair in scratch.verify.windows(2) {
            assert_eq!(pair[0].set_hi, pair[1].set_lo);
        }
        let id1 = scratch.begin_epoch();
        scratch.prepare(&hierarchy, 2); // same shape: nothing rebuilt
        let id2 = scratch.begin_epoch();
        assert_eq!(id2, id1 + 1, "epoch ids must survive same-shape prepare");
        scratch.prepare(&hierarchy, 1); // reshape
        assert_eq!(scratch.shards.len(), 1);
        assert_eq!(scratch.verify.len(), 1);
    }
}
