//! Hit/miss and coherence-event accounting.

use crate::types::{CoreId, Cycle, Level};

/// Hits and misses at one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses served at this level.
    pub hits: u64,
    /// Accesses that had to descend further.
    pub misses: u64,
}

impl LevelStats {
    /// Total lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `0.0..=1.0`; `0.0` when no accesses occurred.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Adds another counter set into this one (shard-merge step).
    pub fn absorb(&mut self, other: &LevelStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Per-core access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// L1 hits/misses.
    pub l1: LevelStats,
    /// L2 hits/misses.
    pub l2: LevelStats,
    /// L3 hits/misses.
    pub l3: LevelStats,
    /// Demand fetches that went to memory.
    pub memory_fetches: u64,
    /// Cycles this core spent stalled on memory accesses.
    pub stall_cycles: Cycle,
}

impl CoreStats {
    /// Adds another core's counters into this one (shard-merge step).
    pub fn absorb(&mut self, other: &CoreStats) {
        self.l1.absorb(&other.l1);
        self.l2.absorb(&other.l2);
        self.l3.absorb(&other.l3);
        self.memory_fetches += other.memory_fetches;
        self.stall_cycles += other.stall_cycles;
    }
}

/// Whole-hierarchy statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Per-core counters, indexed by core id.
    pub per_core: Vec<CoreStats>,
    /// LLC evictions (capacity/conflict, all causes).
    pub llc_evictions: u64,
    /// Private-cache lines invalidated because their LLC copy was evicted
    /// (the inclusive back-invalidation attackers exploit).
    pub back_invalidations: u64,
    /// Private-cache lines invalidated by another core's write (coherence).
    pub coherence_invalidations: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Lines inserted into the LLC by the monitor's prefetch path.
    pub prefetch_fills: u64,
    /// Demand accesses that hit a prefetched, not-yet-touched LLC line
    /// (the prefetch saved a memory round trip).
    pub prefetch_hits: u64,
}

impl HierarchyStats {
    /// Creates zeroed statistics for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        Self {
            per_core: vec![CoreStats::default(); cores],
            ..Self::default()
        }
    }

    /// Mutable per-core counters for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_mut(&mut self, core: CoreId) -> &mut CoreStats {
        &mut self.per_core[core.0]
    }

    /// Per-core counters for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core(&self, core: CoreId) -> &CoreStats {
        &self.per_core[core.0]
    }

    /// Records a hit at `level` for `core`, marking misses at the levels
    /// above it.
    pub fn record_access(&mut self, core: CoreId, served_by: Level) {
        self.record_served(core, served_by, 0);
    }

    /// Like [`record_access`](Self::record_access) but also charges the
    /// access latency to the core's stall cycles, all through one per-core
    /// lookup — the form the hierarchy's hot path uses.
    #[inline]
    pub fn record_served(&mut self, core: CoreId, served_by: Level, latency: Cycle) {
        let c = self.core_mut(core);
        c.stall_cycles += latency;
        match served_by {
            Level::L1 => {
                c.l1.hits += 1;
            }
            Level::L2 => {
                c.l1.misses += 1;
                c.l2.hits += 1;
            }
            Level::L3 => {
                c.l1.misses += 1;
                c.l2.misses += 1;
                c.l3.hits += 1;
            }
            Level::Memory => {
                c.l1.misses += 1;
                c.l2.misses += 1;
                c.l3.misses += 1;
                c.memory_fetches += 1;
            }
        }
    }

    /// Total demand memory fetches across cores.
    #[must_use]
    pub fn total_memory_fetches(&self) -> u64 {
        self.per_core.iter().map(|c| c.memory_fetches).sum()
    }

    /// Zeroes every counter in place, keeping the per-core allocation (the
    /// epoch engine resets pooled per-shard and per-verify-worker deltas
    /// each epoch without reallocating them).
    pub(crate) fn reset(&mut self, cores: usize) {
        if self.per_core.len() != cores {
            self.per_core.resize(cores, CoreStats::default());
        }
        self.per_core.fill(CoreStats::default());
        self.llc_evictions = 0;
        self.back_invalidations = 0;
        self.coherence_invalidations = 0;
        self.writebacks = 0;
        self.prefetch_fills = 0;
        self.prefetch_hits = 0;
    }

    /// Adds another statistics block into this one.
    ///
    /// This is the shard-merge step of the epoch-parallel engine: every
    /// counter is a sum, so absorbing shard-local deltas is associative and
    /// commutative — combining shards in any order yields identical totals
    /// (pinned by `tests/observer_merge.rs`).
    ///
    /// # Panics
    ///
    /// Panics if the two blocks track a different number of cores.
    pub fn absorb(&mut self, other: &HierarchyStats) {
        assert_eq!(
            self.per_core.len(),
            other.per_core.len(),
            "cannot merge statistics of differently sized systems"
        );
        for (mine, theirs) in self.per_core.iter_mut().zip(&other.per_core) {
            mine.absorb(theirs);
        }
        self.llc_evictions += other.llc_evictions;
        self.back_invalidations += other.back_invalidations;
        self.coherence_invalidations += other.coherence_invalidations;
        self.writebacks += other.writebacks;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_hits += other.prefetch_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_stats_ratios() {
        let s = LevelStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn record_access_marks_upper_levels_missed() {
        let mut h = HierarchyStats::new(2);
        h.record_access(CoreId(1), Level::L3);
        let c = h.core(CoreId(1));
        assert_eq!(c.l1.misses, 1);
        assert_eq!(c.l2.misses, 1);
        assert_eq!(c.l3.hits, 1);
        assert_eq!(c.memory_fetches, 0);
        // Core 0 untouched.
        assert_eq!(h.core(CoreId(0)).l1.accesses(), 0);
    }

    #[test]
    fn record_memory_access_counts_fetch() {
        let mut h = HierarchyStats::new(1);
        h.record_access(CoreId(0), Level::Memory);
        let c = h.core(CoreId(0));
        assert_eq!(c.l3.misses, 1);
        assert_eq!(c.memory_fetches, 1);
        assert_eq!(h.total_memory_fetches(), 1);
    }

    #[test]
    fn record_l1_hit_touches_only_l1() {
        let mut h = HierarchyStats::new(1);
        h.record_access(CoreId(0), Level::L1);
        let c = h.core(CoreId(0));
        assert_eq!(c.l1.hits, 1);
        assert_eq!(c.l2.accesses(), 0);
    }
}
