//! Integration tests for the persistent content-addressed result store.
//!
//! `src/store.rs` carries targeted unit tests (FNV vectors, canonical-key
//! pins, basic round trips); this suite attacks the log format the way the
//! trace_v2 suite attacks the trace decoder:
//!
//! * randomized record sets — keys and payloads mixing newlines, quotes,
//!   frame-magic lookalikes and multi-byte UTF-8 — must round-trip through
//!   flush + reopen with last-put-wins semantics;
//! * recovery must tolerate truncation at **every** byte offset and byte
//!   flips at every offset without panicking, and must never resurrect a
//!   record that differs from what was written;
//! * the LRU budget must hold after eviction, evict the least-recently-used
//!   record first, and survive reopen (file order is recency order);
//! * an interrupted atomic write (temp file present, rename never happened)
//!   must leave the previous log fully readable.

use std::collections::HashMap;
use std::path::PathBuf;

use pipo_bench::ResultStore;
use proptest::collection::vec;
use proptest::prelude::*;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pipo_store_it_{}_{name}.log", std::process::id()))
}

/// Builds a string over a deliberately hostile alphabet: record-frame
/// lookalikes, newlines, JSON metacharacters, NUL, multi-byte UTF-8.
fn hostile_string(picks: Vec<u8>) -> String {
    const PIECES: [&str; 12] = [
        "rec ",
        "\n",
        "pipo-store v1",
        "\"",
        "\\",
        " ",
        "é",
        "😀",
        "k",
        "0",
        "{\"v\": 1}",
        "\u{0}",
    ];
    picks
        .into_iter()
        .map(|p| PIECES[p as usize % PIECES.len()])
        .collect()
}

fn arb_records() -> impl Strategy<Value = Vec<(String, String)>> {
    vec(
        (
            vec(any::<u8>(), 1..12).prop_map(hostile_string),
            vec(any::<u8>(), 0..20).prop_map(hostile_string),
        ),
        0..16,
    )
}

proptest! {
    #[test]
    fn arbitrary_records_round_trip_through_flush_and_reopen(
        records in arb_records(),
        case in 0u64..u64::MAX,
    ) {
        let path = temp_path(&format!("roundtrip_{case}"));
        std::fs::remove_file(&path).ok();
        let mut store = ResultStore::open(&path).expect("open fresh");
        let mut expected: HashMap<&str, &str> = HashMap::new();
        for (key, payload) in &records {
            store.put(key, payload);
            expected.insert(key, payload);
        }
        store.flush().expect("flush");

        let mut reopened = ResultStore::open(&path).expect("reopen");
        prop_assert_eq!(reopened.len(), expected.len());
        prop_assert_eq!(reopened.telemetry().dropped_tail_bytes, 0);
        for (key, payload) in &expected {
            prop_assert_eq!(reopened.get(key), Some(*payload));
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The canonical on-disk fixture the corruption tests chew on: a few
/// records with distinct sizes and contents.
fn write_fixture(path: &PathBuf) -> Vec<(String, String)> {
    std::fs::remove_file(path).ok();
    let records: Vec<(String, String)> = (0..5)
        .map(|i| {
            (
                format!("pipo/v1 test key {i}"),
                format!(
                    "{{\n  \"value\": {i},\n  \"pad\": \"{}\"\n}}\n",
                    "x".repeat(i * 7)
                ),
            )
        })
        .collect();
    let mut store = ResultStore::open(path).expect("open fresh");
    for (key, payload) in &records {
        store.put(key, payload);
    }
    store.flush().expect("flush");
    records
}

#[test]
fn recovery_survives_truncation_at_every_byte() {
    const HEADER_LEN: usize = "pipo-store v1\n".len();
    let path = temp_path("truncate");
    let records = write_fixture(&path);
    let image = std::fs::read(&path).expect("read log");
    let cut_path = temp_path("truncate_cut");
    for cut in 0..=image.len() {
        std::fs::write(&cut_path, &image[..cut]).expect("write truncated log");
        // Every cut must open: a torn tail is data loss, never an error or
        // a panic.
        let mut store = ResultStore::open(&cut_path)
            .unwrap_or_else(|e| panic!("cut at {cut} failed to open: {e}"));
        let telemetry = store.telemetry();
        if cut < HEADER_LEN {
            // A torn header recovers as an empty store.
            assert_eq!(store.len(), 0, "cut {cut}");
            assert_eq!(telemetry.dropped_tail_bytes, cut as u64, "cut {cut}");
        } else {
            // Recovered log bytes + dropped tail bytes account for the
            // whole truncated file — nothing silently vanishes.
            assert_eq!(
                store.bytes() + telemetry.dropped_tail_bytes,
                cut as u64,
                "cut {cut}: bytes accounted for"
            );
        }
        // Records were flushed oldest-first, so what survives is a prefix:
        // each record is intact until the first missing one, none after.
        let survived: Vec<bool> = records
            .iter()
            .map(|(key, payload)| match store.get(key) {
                Some(got) => {
                    assert_eq!(got, payload, "cut {cut}: served payload intact");
                    true
                }
                None => false,
            })
            .collect();
        let prefix_len = survived.iter().take_while(|&&s| s).count();
        assert!(
            survived[prefix_len..].iter().all(|&s| !s),
            "cut {cut}: survivors form a prefix, got {survived:?}"
        );
        assert_eq!(
            telemetry.recovered_records as usize, prefix_len,
            "cut {cut}"
        );
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cut_path).ok();
}

#[test]
fn recovery_survives_a_flip_at_every_byte_without_resurrecting_garbage() {
    let path = temp_path("flip");
    let records = write_fixture(&path);
    let image = std::fs::read(&path).expect("read log");
    let flip_path = temp_path("flip_cut");
    for offset in 0..image.len() {
        let mut corrupt = image.clone();
        corrupt[offset] ^= 0x20;
        std::fs::write(&flip_path, &corrupt).expect("write corrupt log");
        // A flipped byte may drop records (checksum mismatch ends the scan)
        // or reject the file outright (header damage) — but every record
        // that *does* come back must be byte-identical to one we wrote.
        let Ok(mut store) = ResultStore::open(&flip_path) else {
            continue;
        };
        let recovered = store.len();
        assert!(
            recovered <= records.len(),
            "flip at {offset} resurrected extra records"
        );
        let mut matched = 0;
        for (key, payload) in &records {
            if let Some(got) = store.get(key) {
                assert_eq!(got, payload, "flip at {offset} corrupted a served payload");
                matched += 1;
            }
        }
        assert_eq!(
            matched, recovered,
            "flip at {offset}: every recovered record matches an original"
        );
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&flip_path).ok();
}

#[test]
fn lru_budget_holds_and_evicts_least_recently_used_first() {
    let path = temp_path("lru");
    std::fs::remove_file(&path).ok();
    // Each record is ~160 encoded bytes, so four fit the budget and a
    // fifth forces an eviction.
    let payload = |i: usize| format!("payload {i} {}", "x".repeat(100));
    let budget = 700u64;
    let mut store = ResultStore::with_budget(&path, budget).expect("open budgeted");
    for i in 0..4 {
        store.put(&format!("key-{i}"), &payload(i));
    }
    assert_eq!(
        store.telemetry().evictions,
        0,
        "four records fit the budget"
    );
    // Refresh key-0 so key-1 is now the least recently used.
    assert!(
        store.get("key-0").is_some(),
        "key-0 still live before refresh"
    );
    store.put("key-4", &payload(4));
    assert!(
        store.bytes() <= budget,
        "budget holds: {} bytes of {budget}",
        store.bytes()
    );
    assert!(store.telemetry().evictions > 0, "budget forced an eviction");
    assert!(
        store.get("key-0").is_some(),
        "recently refreshed record survives eviction"
    );
    assert_eq!(
        store.get("key-1"),
        None,
        "least recently used record is evicted first"
    );
    assert!(
        store.get("key-4").is_some(),
        "newest record always survives"
    );
    store.flush().expect("flush");

    // Survivors' recency order is now key-2 < key-3 < key-0 < key-4, and
    // flush wrote them oldest-first. Reopen with the same budget and push
    // past it again: the on-disk order must drive the next eviction, so
    // key-2 goes first.
    let mut reopened = ResultStore::with_budget(&path, budget).expect("reopen");
    assert_eq!(reopened.telemetry().recovered_records, 4);
    reopened.put("key-new", &payload(9));
    assert!(
        reopened.telemetry().evictions > 0,
        "refill forced an eviction"
    );
    assert_eq!(
        reopened.get("key-2"),
        None,
        "on-disk recency order drives post-reopen eviction"
    );
    assert!(reopened.get("key-3").is_some());
    assert!(reopened.get("key-new").is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn interrupted_atomic_write_leaves_the_old_log_readable() {
    let path = temp_path("torn");
    let records = write_fixture(&path);
    let old_image = std::fs::read(&path).expect("read log");

    // Simulate another writer killed mid-`write_atomic`: its temp file
    // exists (with a torn half-image) but the rename never happened.
    let tmp = PathBuf::from(format!("{}.tmp.99999", path.display()));
    std::fs::write(&tmp, &old_image[..old_image.len() / 2]).expect("write torn temp");

    let mut store = ResultStore::open(&path).expect("old log opens untouched");
    assert_eq!(store.len(), records.len());
    for (key, payload) in &records {
        assert_eq!(store.get(key), Some(payload.as_str()));
    }
    // A subsequent successful flush replaces the log wholesale.
    store.put("fresh", "{\"v\": 9}");
    store.flush().expect("flush over torn state");
    let mut reopened = ResultStore::open(&path).expect("reopen");
    assert_eq!(reopened.len(), records.len() + 1);
    assert_eq!(reopened.get("fresh"), Some("{\"v\": 9}"));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&tmp).ok();
}
