//! End-to-end tests of the `pipo-serve` line-JSON protocol: a real server
//! on a real socket, driven by real TCP clients.
//!
//! The cells are tiny (`mix3`, 20 k instructions per core) so a full
//! submit → recompute → resubmit-warm cycle stays in test-suite time.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use pipo_bench::serve::{ServeOptions, Server};
use pipo_bench::{Json, ResultStore};

fn temp_store(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pipo_serve_it_{}_{name}.log", std::process::id()))
}

/// Binds a server on a free port and runs it on a background thread.
fn start_server(
    path: &PathBuf,
    max_instructions: u64,
) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    std::fs::remove_file(path).ok();
    let store = ResultStore::open(path).expect("open fresh store");
    let server = Server::bind(
        store,
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_instructions,
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone socket"));
        Self { reader, writer }
    }

    fn send(&mut self, request: &str) {
        self.writer
            .write_all(request.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send request");
    }

    fn read_line(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection unexpectedly");
        assert!(line.ends_with('\n'), "responses are newline-terminated");
        Json::parse(line.trim_end()).expect("responses are valid JSON")
    }

    /// Sends a job and reads until its `done` (or error) line. Returns
    /// `(per-cell lines, summary line)`.
    fn job(&mut self, request: &str) -> (Vec<Json>, Json) {
        self.send(request);
        let mut cells = Vec::new();
        loop {
            let doc = self.read_line();
            let ok = doc.get("ok").and_then(Json::as_bool) == Some(true);
            let done = doc.get("done").and_then(Json::as_bool) == Some(true);
            if !ok || done {
                return (cells, doc);
            }
            cells.push(doc);
        }
    }
}

fn u64_field(doc: &Json, name: &str) -> u64 {
    doc.get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{name} missing from {doc:?}"))
}

const JOB: &str = r#"{"op":"job","cells":[
    {"mix":"mix3","instructions":20000,"seed":1},
    {"mix":"mix3","instructions":20000,"seed":1,"delay":100,"label":"slow"}]}"#;

#[test]
fn second_submission_is_served_from_the_store_byte_identically() {
    let path = temp_store("warm");
    let (addr, server) = start_server(&path, 1_000_000);
    let mut client = Client::connect(addr);

    let (cold_cells, cold_done) = client.job(&JOB.replace('\n', " "));
    assert_eq!(cold_cells.len(), 2);
    for cell in &cold_cells {
        assert_eq!(cell.get("cached").and_then(Json::as_bool), Some(false));
    }
    assert_eq!(u64_field(&cold_done, "hits"), 0);
    assert_eq!(u64_field(&cold_done, "misses"), 2);
    assert_eq!(u64_field(&cold_done, "store_records"), 2);

    // Same job again, same connection: all warm, and the result objects are
    // byte-identical to the cold ones (this is the cache's core contract).
    let (warm_cells, warm_done) = client.job(&JOB.replace('\n', " "));
    assert_eq!(warm_cells.len(), 2);
    let by_cell = |cells: &[Json]| -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> = cells
            .iter()
            .map(|c| {
                (
                    u64_field(c, "cell"),
                    c.get("result").expect("result present").to_line(),
                )
            })
            .collect();
        out.sort();
        out
    };
    assert_eq!(by_cell(&warm_cells), by_cell(&cold_cells));
    for cell in &warm_cells {
        assert_eq!(cell.get("cached").and_then(Json::as_bool), Some(true));
    }
    assert_eq!(u64_field(&warm_done, "hits"), 2);
    assert_eq!(u64_field(&warm_done, "misses"), 0);
    assert_eq!(u64_field(&warm_done, "total_hits"), 2);
    assert_eq!(u64_field(&warm_done, "total_misses"), 2);
    // Warm answers are store lookups, not simulations: visibly faster.
    assert!(
        u64_field(&warm_done, "wall_us") < u64_field(&cold_done, "wall_us"),
        "warm {} µs vs cold {} µs",
        u64_field(&warm_done, "wall_us"),
        u64_field(&cold_done, "wall_us"),
    );

    // The dashboard aggregates both stored records.
    client.send(r#"{"op":"dashboard"}"#);
    let dashboard = client.read_line();
    assert_eq!(u64_field(&dashboard, "records"), 2);
    let mixes = dashboard
        .get("mixes")
        .and_then(Json::as_array)
        .expect("mixes");
    assert_eq!(mixes.len(), 1);
    assert_eq!(mixes[0].get("mix").and_then(Json::as_str), Some("mix3"));
    assert_eq!(u64_field(&mixes[0], "cells"), 2);

    client.send(r#"{"op":"shutdown"}"#);
    let ack = client.read_line();
    assert_eq!(ack.get("op").and_then(Json::as_str), Some("shutdown"));
    server
        .join()
        .expect("server thread")
        .expect("clean shutdown");

    // The store survived the shutdown flush: a fresh process reads both
    // records back.
    let reopened = ResultStore::open(&path).expect("reopen store");
    assert_eq!(reopened.len(), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_clients_get_identical_results() {
    let path = temp_store("concurrent");
    let (addr, server) = start_server(&path, 1_000_000);
    let job = r#"{"op":"job","cells":[{"mix":"mix3","instructions":20000,"seed":1}]}"#;

    let results: Vec<(String, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr);
                    let (cells, done) = client.job(job);
                    assert_eq!(cells.len(), 1, "done line: {done:?}");
                    (cells[0].get("result").expect("result").to_line(), done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    // Every client saw the same result regardless of who computed it.
    for (result, _) in &results[1..] {
        assert_eq!(result, &results[0].0);
    }
    // Lifetime counters add up across clients: three cells served, at
    // least one miss (somebody computed it), store holds exactly one record.
    let mut client = Client::connect(addr);
    client.send(r#"{"op":"stats"}"#);
    let stats = client.read_line();
    assert_eq!(u64_field(&stats, "cells"), 3);
    assert_eq!(u64_field(&stats, "jobs"), 3);
    assert!(u64_field(&stats, "misses") >= 1);
    assert_eq!(u64_field(&stats, "hits") + u64_field(&stats, "misses"), 3);
    assert_eq!(
        u64_field(stats.get("store").expect("store section"), "records"),
        1
    );

    client.send(r#"{"op":"shutdown"}"#);
    let _ = client.read_line();
    server
        .join()
        .expect("server thread")
        .expect("clean shutdown");
    std::fs::remove_file(&path).ok();
}

#[test]
fn protocol_errors_are_structured_and_nonfatal() {
    let path = temp_store("errors");
    let (addr, server) = start_server(&path, 50_000);
    let mut client = Client::connect(addr);

    // Unknown op, bad JSON, bad cell specs: each answers a structured
    // error and the connection stays usable.
    client.send(r#"{"op":"frobnicate"}"#);
    let err = client.read_line();
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
    assert!(err
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("frobnicate"));

    client.send("this is not json");
    let err = client.read_line();
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
    assert!(err
        .get("error")
        .and_then(Json::as_str)
        .expect("message")
        .contains("byte"));

    client.send(r#"{"op":"job","cells":[{"mix":"mix99"}]}"#);
    let err = client.read_line();
    let message = err.get("error").and_then(Json::as_str).expect("message");
    assert!(
        message.contains("cell 0") && message.contains("mix99"),
        "{message}"
    );

    // Admission control: the server caps instructions per cell.
    client.send(r#"{"op":"job","cells":[{"mix":"mix3","instructions":60000}]}"#);
    let err = client.read_line();
    let message = err.get("error").and_then(Json::as_str).expect("message");
    assert!(message.contains("limit of 50000"), "{message}");

    // Still alive after all that.
    client.send(r#"{"op":"ping"}"#);
    assert_eq!(
        client.read_line().get("op").and_then(Json::as_str),
        Some("pong")
    );

    client.send(r#"{"op":"shutdown"}"#);
    let _ = client.read_line();
    server
        .join()
        .expect("server thread")
        .expect("clean shutdown");
    std::fs::remove_file(&path).ok();
}
