//! CLI contract tests for the harness binaries: which ones accept
//! `--shards` (their cells run whole simulated systems) and `--filter`
//! (they build pattern-store-backed monitors with a selectable backend),
//! and which reject them with exit status 2 and an error that names the
//! offending flag.
//!
//! Cargo exposes each binary's path to this integration test through the
//! `CARGO_BIN_EXE_<name>` environment variables, so these tests exercise
//! the real executables — parser, `expect_no_shards`, and exit codes — not
//! a reimplementation.

use std::process::Command;

/// Binaries whose sweep cells simulate whole systems: `--shards N` is
/// threaded into `System::run_sharded`. `throughput` has its own parser
/// (different flag surface) but must honour the same accept/reject/exit-2
/// contract.
const ACCEPTS_SHARDS: &[(&str, &[&str])] = &[
    ("fig8_performance", &["1", "--sequential"]),
    ("sensitivity_secthr", &["1", "--sequential"]),
    ("ablation_replacement", &["1", "--sequential"]),
    (
        "throughput",
        &[
            "4000",
            "--samples",
            "1",
            "--out",
            "/tmp/cli_throughput.json",
        ],
    ),
];

/// Binaries whose cells never run whole systems (filter microbenchmarks,
/// attack trials, analytical tables): `--shards` must be rejected.
const REJECTS_SHARDS: &[&str] = &[
    "ablation_delay",
    "ablation_filter",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig6_attack",
    "fig7_reverse",
    "overhead_table",
];

/// Binaries that build monitors with a selectable pattern-store backend:
/// `--filter BACKEND` selects it. Each entry carries arguments that keep the
/// run tiny.
const ACCEPTS_FILTER: &[(&str, &[&str])] = &[
    ("fig8_performance", &["1", "--sequential"]),
    ("sensitivity_secthr", &["1", "--sequential"]),
    ("ablation_replacement", &["1", "--sequential"]),
    ("ablation_delay", &["1", "--sequential"]),
    ("fig6_attack", &["1", "--sequential"]),
];

/// Binaries with no backend choice: filter microbenchmarks drive the cuckoo
/// structures directly, `baseline_stateful`/`throughput` pin the paper's
/// monitor for comparability, and `ablation_filter` sweeps every backend by
/// construction. All must reject `--filter` by name with exit 2
/// (`throughput` through its own parser's unknown-flag path).
const REJECTS_FILTER: &[&str] = &[
    "ablation_filter",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig7_reverse",
    "overhead_table",
    "throughput",
];

fn bin_path(name: &str) -> String {
    // CARGO_BIN_EXE_* is only resolvable via env! for statically known
    // names; build the lookup dynamically from the test environment Cargo
    // provides to integration tests.
    let key = format!("CARGO_BIN_EXE_{name}");
    std::env::var(&key).unwrap_or_else(|_| panic!("{key} not set — binary missing?"))
}

#[test]
fn shard_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(["--shards", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --shards"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shards"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

#[test]
fn shard_accepting_binaries_run_with_shards() {
    for (name, scale_args) in ACCEPTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(*scale_args)
            .args(["--shards", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} must accept --shards (stderr: {stderr})"
        );
    }
}

#[test]
fn shard_accepting_binaries_still_validate_the_count() {
    // The flag being *supported* must not loosen its validation.
    for (name, _) in ACCEPTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(["--shards", "0"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must reject --shards 0"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shards"),
            "{name}'s validation error must name the flag, got:\n{stderr}"
        );
    }
}

#[test]
fn every_binary_helps_and_exits_zero() {
    for name in REJECTS_SHARDS
        .iter()
        .copied()
        .chain(ACCEPTS_SHARDS.iter().map(|(n, _)| *n))
    {
        let output = Command::new(bin_path(name))
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(output.status.code(), Some(0), "{name} --help must exit 0");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("--shards"),
            "{name} --help must document --shards"
        );
        // `throughput` documents its own flag surface; every shared-parser
        // binary's help must enumerate --filter and its backends.
        if name != "throughput" {
            assert!(
                stdout.contains("--filter"),
                "{name} --help must document --filter"
            );
            for backend in ["auto", "classic", "bloom", "xor"] {
                assert!(
                    stdout.contains(backend),
                    "{name} --help must enumerate the {backend} backend"
                );
            }
        }
    }
}

#[test]
fn filter_accepting_binaries_run_with_a_backend() {
    for (name, scale_args) in ACCEPTS_FILTER {
        let output = Command::new(bin_path(name))
            .args(*scale_args)
            .args(["--filter", "bloom"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} must accept --filter bloom (stderr: {stderr})"
        );
    }
}

#[test]
fn filter_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_FILTER {
        let output = Command::new(bin_path(name))
            .args(["--filter", "bloom"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --filter"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--filter"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

#[test]
fn bad_filter_backend_exits_2_and_names_the_value() {
    for (name, _) in ACCEPTS_FILTER {
        let output = Command::new(bin_path(name))
            .args(["--filter", "ribbon"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on a bad backend"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("ribbon"),
            "{name}'s error must name the bad value, got:\n{stderr}"
        );
        assert!(
            stderr.contains("auto") && stderr.contains("xor"),
            "{name}'s error must enumerate valid backends, got:\n{stderr}"
        );
    }
}
