//! CLI contract tests for the harness binaries: which ones accept
//! `--shards` (their cells run whole simulated systems) and which reject it
//! with exit status 2 and an error that names the offending flag.
//!
//! Cargo exposes each binary's path to this integration test through the
//! `CARGO_BIN_EXE_<name>` environment variables, so these tests exercise
//! the real executables — parser, `expect_no_shards`, and exit codes — not
//! a reimplementation.

use std::process::Command;

/// Binaries whose sweep cells simulate whole systems: `--shards N` is
/// threaded into `System::run_sharded`. `throughput` has its own parser
/// (different flag surface) but must honour the same accept/reject/exit-2
/// contract.
const ACCEPTS_SHARDS: &[(&str, &[&str])] = &[
    ("fig8_performance", &["1", "--sequential"]),
    ("sensitivity_secthr", &["1", "--sequential"]),
    ("ablation_replacement", &["1", "--sequential"]),
    (
        "throughput",
        &[
            "4000",
            "--samples",
            "1",
            "--out",
            "/tmp/cli_throughput.json",
        ],
    ),
];

/// Binaries whose cells never run whole systems (filter microbenchmarks,
/// attack trials, analytical tables): `--shards` must be rejected.
const REJECTS_SHARDS: &[&str] = &[
    "ablation_delay",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig6_attack",
    "fig7_reverse",
    "overhead_table",
];

fn bin_path(name: &str) -> String {
    // CARGO_BIN_EXE_* is only resolvable via env! for statically known
    // names; build the lookup dynamically from the test environment Cargo
    // provides to integration tests.
    let key = format!("CARGO_BIN_EXE_{name}");
    std::env::var(&key).unwrap_or_else(|_| panic!("{key} not set — binary missing?"))
}

#[test]
fn shard_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(["--shards", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --shards"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shards"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

#[test]
fn shard_accepting_binaries_run_with_shards() {
    for (name, scale_args) in ACCEPTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(*scale_args)
            .args(["--shards", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} must accept --shards (stderr: {stderr})"
        );
    }
}

#[test]
fn shard_accepting_binaries_still_validate_the_count() {
    // The flag being *supported* must not loosen its validation.
    for (name, _) in ACCEPTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(["--shards", "0"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must reject --shards 0"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shards"),
            "{name}'s validation error must name the flag, got:\n{stderr}"
        );
    }
}

#[test]
fn every_binary_helps_and_exits_zero() {
    for name in REJECTS_SHARDS
        .iter()
        .copied()
        .chain(ACCEPTS_SHARDS.iter().map(|(n, _)| *n))
    {
        let output = Command::new(bin_path(name))
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(output.status.code(), Some(0), "{name} --help must exit 0");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("--shards"),
            "{name} --help must document --shards"
        );
    }
}
