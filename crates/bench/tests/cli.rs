//! CLI contract tests for the harness binaries: which ones accept
//! `--shards` (their cells run whole simulated systems), `--filter`
//! (they build pattern-store-backed monitors with a selectable backend),
//! `--trace` (they replay recorded trace files), and `--store` (their
//! sweeps are content-addressed result-store cells), and which reject
//! them with exit status 2 and an error that names the offending flag.
//! Conflicting execution-mode flags (`--sequential` with `--threads`)
//! must be rejected the same way, in either order.
//!
//! Cargo exposes each binary's path to this integration test through the
//! `CARGO_BIN_EXE_<name>` environment variables, so these tests exercise
//! the real executables — parser, `expect_no_shards`, and exit codes — not
//! a reimplementation.

use std::process::Command;

/// Binaries whose sweep cells simulate whole systems: `--shards N` is
/// threaded into `System::run_sharded`. `throughput` has its own parser
/// (different flag surface) but must honour the same accept/reject/exit-2
/// contract.
const ACCEPTS_SHARDS: &[(&str, &[&str])] = &[
    ("fig8_performance", &["1", "--sequential"]),
    ("sensitivity_secthr", &["1", "--sequential"]),
    ("ablation_replacement", &["1", "--sequential"]),
    ("trace_replay", &["1", "--sequential"]),
    (
        "throughput",
        &[
            "4000",
            "--samples",
            "1",
            "--out",
            "/tmp/cli_throughput.json",
        ],
    ),
];

/// Binaries whose cells never run whole systems (filter microbenchmarks,
/// attack trials, analytical tables): `--shards` must be rejected.
const REJECTS_SHARDS: &[&str] = &[
    "ablation_delay",
    "ablation_filter",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig6_attack",
    "fig7_reverse",
    "overhead_table",
];

/// Binaries that build monitors with a selectable pattern-store backend:
/// `--filter BACKEND` selects it. Each entry carries arguments that keep the
/// run tiny.
const ACCEPTS_FILTER: &[(&str, &[&str])] = &[
    ("fig8_performance", &["1", "--sequential"]),
    ("sensitivity_secthr", &["1", "--sequential"]),
    ("ablation_replacement", &["1", "--sequential"]),
    ("ablation_delay", &["1", "--sequential"]),
    ("fig6_attack", &["1", "--sequential"]),
    ("trace_replay", &["1", "--sequential"]),
];

/// Only `trace_replay` consumes recorded trace files; every other binary —
/// shared parser or not — must reject `--trace` by name with exit 2
/// (`throughput` through its own parser's unknown-flag path).
const REJECTS_TRACE: &[&str] = &[
    "ablation_delay",
    "ablation_filter",
    "ablation_replacement",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig6_attack",
    "fig7_reverse",
    "fig8_performance",
    "overhead_table",
    "sensitivity_secthr",
    "throughput",
];

/// Binaries with no backend choice: filter microbenchmarks drive the cuckoo
/// structures directly, `baseline_stateful`/`throughput` pin the paper's
/// monitor for comparability, and `ablation_filter` sweeps every backend by
/// construction. All must reject `--filter` by name with exit 2
/// (`throughput` through its own parser's unknown-flag path).
const REJECTS_FILTER: &[&str] = &[
    "ablation_filter",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig7_reverse",
    "overhead_table",
    "throughput",
];

/// Binaries whose sweeps are content-addressed (every cell is a
/// `System::run` over inputs captured by the canonical cell key):
/// `--store PATH` answers repeat cells from the persistent result store.
const ACCEPTS_STORE: &[(&str, &[&str])] = &[
    ("fig8_performance", &["1", "--sequential"]),
    ("sensitivity_secthr", &["1", "--sequential"]),
    ("ablation_replacement", &["1", "--sequential"]),
];

/// Everything else must reject `--store` by name with exit 2:
/// non-sweep binaries through `expect_no_store`, `trace_replay` because
/// replayed traces are keyed by file path (not content) so caching them
/// would be unsound, and `throughput` through its own parser's
/// unknown-flag path.
const REJECTS_STORE: &[&str] = &[
    "ablation_delay",
    "ablation_filter",
    "baseline_stateful",
    "fig3_occupancy",
    "fig4_collisions",
    "fig6_attack",
    "fig7_reverse",
    "overhead_table",
    "trace_replay",
    "throughput",
];

fn bin_path(name: &str) -> String {
    // CARGO_BIN_EXE_* is only resolvable via env! for statically known
    // names; build the lookup dynamically from the test environment Cargo
    // provides to integration tests.
    let key = format!("CARGO_BIN_EXE_{name}");
    std::env::var(&key).unwrap_or_else(|_| panic!("{key} not set — binary missing?"))
}

#[test]
fn shard_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(["--shards", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --shards"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shards"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

#[test]
fn shard_accepting_binaries_run_with_shards() {
    for (name, scale_args) in ACCEPTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(*scale_args)
            .args(["--shards", "2"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} must accept --shards (stderr: {stderr})"
        );
    }
}

#[test]
fn shard_accepting_binaries_still_validate_the_count() {
    // The flag being *supported* must not loosen its validation.
    for (name, _) in ACCEPTS_SHARDS {
        let output = Command::new(bin_path(name))
            .args(["--shards", "0"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must reject --shards 0"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shards"),
            "{name}'s validation error must name the flag, got:\n{stderr}"
        );
    }
}

#[test]
fn every_binary_helps_and_exits_zero() {
    for name in REJECTS_SHARDS
        .iter()
        .copied()
        .chain(ACCEPTS_SHARDS.iter().map(|(n, _)| *n))
    {
        let output = Command::new(bin_path(name))
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(output.status.code(), Some(0), "{name} --help must exit 0");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("--shards"),
            "{name} --help must document --shards"
        );
        // `throughput` documents its own flag surface; every shared-parser
        // binary's help must enumerate --filter and its backends.
        if name != "throughput" {
            assert!(
                stdout.contains("--filter"),
                "{name} --help must document --filter"
            );
            assert!(
                stdout.contains("--trace"),
                "{name} --help must document --trace"
            );
            assert!(
                stdout.contains("--store"),
                "{name} --help must document --store"
            );
            for backend in ["auto", "classic", "bloom", "xor"] {
                assert!(
                    stdout.contains(backend),
                    "{name} --help must enumerate the {backend} backend"
                );
            }
        }
    }
}

#[test]
fn filter_accepting_binaries_run_with_a_backend() {
    for (name, scale_args) in ACCEPTS_FILTER {
        let output = Command::new(bin_path(name))
            .args(*scale_args)
            .args(["--filter", "bloom"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} must accept --filter bloom (stderr: {stderr})"
        );
    }
}

#[test]
fn filter_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_FILTER {
        let output = Command::new(bin_path(name))
            .args(["--filter", "bloom"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --filter"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--filter"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

#[test]
fn bad_filter_backend_exits_2_and_names_the_value() {
    for (name, _) in ACCEPTS_FILTER {
        let output = Command::new(bin_path(name))
            .args(["--filter", "ribbon"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on a bad backend"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("ribbon"),
            "{name}'s error must name the bad value, got:\n{stderr}"
        );
        assert!(
            stderr.contains("auto") && stderr.contains("xor"),
            "{name}'s error must enumerate valid backends, got:\n{stderr}"
        );
    }
}

#[test]
fn trace_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_TRACE {
        let output = Command::new(bin_path(name))
            .args(["--trace", "some.trace"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --trace"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--trace"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

/// The bundled corpus file of the given name (the corpus lives in the
/// workloads crate, next door to this one).
fn corpus_trace(name: &str) -> String {
    let path = format!("{}/../workloads/traces/{name}", env!("CARGO_MANIFEST_DIR"));
    assert!(
        std::path::Path::new(&path).exists(),
        "bundled corpus file missing: {path}"
    );
    path
}

#[test]
fn trace_replay_accepts_both_corpus_formats() {
    // One v1 text trace (the back-compat file) and one v2 binary trace.
    for trace in [
        corpus_trace("stride_l1.trace"),
        corpus_trace("mix_gcc_prefix.trace2"),
    ] {
        let output = Command::new(bin_path("trace_replay"))
            .args(["1", "--sequential", "--trace", &trace])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn trace_replay: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "trace_replay must accept --trace {trace} (stderr: {stderr})"
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(&trace),
            "the replayed trace must appear as a figure row, got:\n{stdout}"
        );
    }
}

#[test]
fn trace_replay_rejects_a_missing_or_corrupt_trace() {
    let output = Command::new(bin_path("trace_replay"))
        .args(["1", "--trace", "/nonexistent/nope.trace"])
        .output()
        .expect("spawn trace_replay");
    assert_eq!(
        output.status.code(),
        Some(2),
        "missing trace file must exit 2"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("/nonexistent/nope.trace"),
        "error must name the path, got:\n{stderr}"
    );

    // A file that is neither v2 binary nor parsable v1 text.
    let corrupt = format!(
        "{}/cli_corrupt_{}.trace",
        std::env::temp_dir().display(),
        std::process::id()
    );
    std::fs::write(&corrupt, "X 0xZZ not-a-trace\n").expect("write temp file");
    let output = Command::new(bin_path("trace_replay"))
        .args(["1", "--trace", &corrupt])
        .output()
        .expect("spawn trace_replay");
    std::fs::remove_file(&corrupt).ok();
    assert_eq!(output.status.code(), Some(2), "corrupt trace must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("error:") && stderr.contains(".trace"),
        "corrupt-trace error must be reported, got:\n{stderr}"
    );
}

#[test]
fn store_rejecting_binaries_exit_2_and_name_the_flag() {
    for name in REJECTS_STORE {
        let output = Command::new(bin_path(name))
            .args(["--store", "some.store"])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert_eq!(
            output.status.code(),
            Some(2),
            "{name} must exit 2 on --store"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--store"),
            "{name}'s rejection must name the offending flag, got:\n{stderr}"
        );
        assert!(
            stderr.contains("error:"),
            "{name}'s rejection must be an error line, got:\n{stderr}"
        );
    }
}

#[test]
fn store_accepting_binaries_warm_rerun_is_byte_identical() {
    for (name, scale_args) in ACCEPTS_STORE {
        let stem = format!(
            "{}/cli_store_{}_{name}",
            std::env::temp_dir().display(),
            std::process::id()
        );
        let store = format!("{stem}.store");
        std::fs::remove_file(&store).ok();
        let run = |json: &str| {
            let output = Command::new(bin_path(name))
                .args(*scale_args)
                .args(["--store", &store, "--json", json])
                .output()
                .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
            let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
            assert_eq!(
                output.status.code(),
                Some(0),
                "{name} must accept --store (stderr: {stderr})"
            );
            stderr
        };

        let cold_json = format!("{stem}_cold.json");
        let cold_stderr = run(&cold_json);
        assert!(
            cold_stderr.contains("0 warm"),
            "{name}'s first run must be all cold, got:\n{cold_stderr}"
        );

        let warm_json = format!("{stem}_warm.json");
        let warm_stderr = run(&warm_json);
        assert!(
            warm_stderr.contains("0 cold"),
            "{name}'s rerun must be answered from the store, got:\n{warm_stderr}"
        );
        // The cache's core contract: warm results are byte-identical to the
        // cold run's, down to the emitted JSON document.
        let cold = std::fs::read(&cold_json).expect("cold --json output");
        let warm = std::fs::read(&warm_json).expect("warm --json output");
        assert_eq!(
            cold, warm,
            "{name}'s warm --json document must be byte-identical to the cold one"
        );

        std::fs::remove_file(&store).ok();
        std::fs::remove_file(&cold_json).ok();
        std::fs::remove_file(&warm_json).ok();
    }
}

#[test]
fn conflicting_execution_mode_flags_exit_2_and_name_both() {
    // Every shared-parser binary rejects `--sequential --threads N`, in
    // either order, before doing any work.
    for name in ["fig8_performance", "ablation_delay", "trace_replay"] {
        for order in [
            ["--sequential", "--threads", "2"],
            ["--threads", "2", "--sequential"],
        ] {
            let output = Command::new(bin_path(name))
                .args(order)
                .output()
                .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
            assert_eq!(
                output.status.code(),
                Some(2),
                "{name} must exit 2 on {order:?}"
            );
            let stderr = String::from_utf8_lossy(&output.stderr);
            assert!(
                stderr.contains("--sequential") && stderr.contains("--threads"),
                "{name}'s conflict error must name both flags, got:\n{stderr}"
            );
            assert!(
                stderr.contains("error:"),
                "{name}'s rejection must be an error line, got:\n{stderr}"
            );
        }
    }
}
