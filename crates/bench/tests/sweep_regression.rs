//! Bit-identity regression for the sweep engine (same spirit as
//! `tests/scheduler_regression.rs` at the workspace root).
//!
//! The engine promises that parallelism exists only *across* cells: per-cell
//! `MixRun` results must be bit-identical whether the grid runs sequentially,
//! fans across worker threads, or bypasses the engine entirely (the old
//! per-binary loop calling [`pipo_bench::run_mix_monitored_on`] directly,
//! with no baseline memoization). A divergence means a cell shared mutable
//! state or dropped its deterministic seeding — simulated behaviour, not
//! speed — which would silently corrupt every figure of the paper.

use pipo_bench::{run_mix_monitored_on, ExecMode, MixCell, MixRun, Sweep};
use pipo_workloads::all_mixes;
use pipomonitor::MonitorConfig;

const INSTRUCTIONS: u64 = 30_000;
const SEED: u64 = 42;

/// A small but heterogeneous grid: two monitor configurations over three
/// mixes (sharing baselines), plus one cell on a different seed (its own
/// baseline).
fn small_sweep() -> Sweep {
    let mixes = all_mixes();
    let mut sweep = Sweep::new();
    for delay in [50u64, 500] {
        let monitor = MonitorConfig::paper_default().with_prefetch_delay(delay);
        for mix in &mixes[..3] {
            sweep.push(MixCell::new(
                format!("delay{delay}/{}", mix.name),
                *mix,
                monitor,
                INSTRUCTIONS,
                SEED,
            ));
        }
    }
    sweep.push(MixCell::new(
        "reseeded/mix1",
        mixes[0],
        MonitorConfig::paper_default(),
        INSTRUCTIONS,
        SEED + 1,
    ));
    sweep
}

#[test]
fn parallel_results_are_bit_identical_to_sequential() {
    let sweep = small_sweep();
    let sequential = sweep.run(ExecMode::Sequential);
    let parallel = sweep.run(ExecMode::with_threads(4));
    assert_eq!(sequential.len(), sweep.cells().len());
    assert_eq!(sequential, parallel);
}

#[test]
fn engine_results_match_direct_unmemoized_runs() {
    let sweep = small_sweep();
    let engine = sweep.run(ExecMode::with_threads(3));
    let direct: Vec<MixRun> = sweep
        .cells()
        .iter()
        .map(|cell| {
            run_mix_monitored_on(
                &cell.mix,
                cell.system.clone(),
                cell.monitor,
                cell.instructions,
                cell.seed,
            )
        })
        .collect();
    assert_eq!(engine, direct);
}

#[test]
fn shared_baselines_do_not_leak_across_seeds() {
    let runs = small_sweep().run(ExecMode::Sequential);
    // Cells 0..3 and 3..6 share per-mix baselines across the two monitor
    // configurations; the reseeded cell must not reuse mix1's.
    assert_eq!(runs[0].baseline_cycles, runs[3].baseline_cycles);
    assert_eq!(runs[1].baseline_cycles, runs[4].baseline_cycles);
    assert_ne!(
        runs[0].baseline_cycles, runs[6].baseline_cycles,
        "a different seed must get its own baseline"
    );
}
