//! Criterion microbenchmarks of the cache-hierarchy simulator: per-access
//! cost at each hit level and the replacement-policy ablation.

use cache_sim::{AccessKind, Addr, CoreId, Hierarchy, NullObserver, Replacement, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn l1_hit(c: &mut Criterion) {
    let mut h = Hierarchy::new(SystemConfig::paper_default());
    let mut obs = NullObserver;
    h.access(CoreId(0), Addr(0x1000), AccessKind::Read, 0, &mut obs);
    let mut now = 1;
    c.bench_function("hierarchy_l1_hit", |b| {
        b.iter(|| {
            now += 1;
            black_box(h.access(
                CoreId(0),
                black_box(Addr(0x1000)),
                AccessKind::Read,
                now,
                &mut obs,
            ))
        });
    });
}

fn memory_miss_stream(c: &mut Criterion) {
    c.bench_function("hierarchy_miss_stream_4k", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(SystemConfig::paper_default());
            let mut obs = NullObserver;
            for i in 0..4096u64 {
                h.access(
                    CoreId(0),
                    black_box(Addr(i * 64 * 4096)),
                    AccessKind::Read,
                    i,
                    &mut obs,
                );
            }
            black_box(h.stats().llc_evictions)
        });
    });
}

fn replacement_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement_thrash_one_set");
    for (name, repl) in [
        ("lru", Replacement::Lru),
        ("tree_plru", Replacement::TreePlru),
        ("random", Replacement::Random { seed: 9 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &repl, |b, &repl| {
            b.iter(|| {
                let mut cfg = SystemConfig::paper_default();
                cfg.replacement = repl;
                let mut h = Hierarchy::new(cfg);
                let mut obs = NullObserver;
                // 20 lines round-robin in one 16-way LLC set.
                for i in 0..20_000u64 {
                    let line = (i % 20) * 4096;
                    h.access(CoreId(0), Addr(line * 64), AccessKind::Read, i, &mut obs);
                }
                black_box(h.stats().core(CoreId(0)).l3.misses)
            });
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = l1_hit, memory_miss_stream, replacement_ablation);
criterion_main!(benches);
