//! Criterion microbenchmarks of the Auto-Cuckoo filter's hardware-path
//! operations, including the MNK ablation (relocation work per insertion
//! grows with MNK — the hardware-cost side of the Fig. 3/Fig. 7 trade-off).

use auto_cuckoo::{AutoCuckooFilter, ClassicCuckooFilter, FilterParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn query_empty_to_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("auto_cuckoo_query");
    for mnk in [0u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("fill_16k_mnk", mnk), &mnk, |b, &mnk| {
            let params = FilterParams::builder()
                .max_kicks(mnk)
                .build()
                .expect("valid");
            b.iter(|| {
                let mut filter = AutoCuckooFilter::new(params).expect("valid");
                for i in 0..16_384u64 {
                    filter.query(black_box(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1));
                }
                black_box(filter.len())
            });
        });
    }
    group.finish();
}

fn query_saturated(c: &mut Criterion) {
    // Steady-state query cost on a 100%-occupied filter (every insert
    // triggers the kick walk + autonomic deletion).
    let params = FilterParams::paper_default();
    let mut filter = AutoCuckooFilter::new(params).expect("valid");
    for i in 0..100_000u64 {
        filter.query(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    }
    let mut x = 0u64;
    c.bench_function("auto_cuckoo_query_saturated", |b| {
        b.iter(|| {
            x = x.wrapping_add(0xa076_1d64_78bd_642f);
            black_box(filter.query(black_box(x | 1)))
        });
    });
}

fn lookup_hit_vs_miss(c: &mut Criterion) {
    let params = FilterParams::paper_default();
    let mut filter = AutoCuckooFilter::new(params).expect("valid");
    for i in 0..8_192u64 {
        filter.query(i * 64);
    }
    c.bench_function("auto_cuckoo_contains_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (8_192 * 64);
            black_box(filter.contains(black_box(i)))
        });
    });
    c.bench_function("auto_cuckoo_contains_miss", |b| {
        let mut i = 1u64 << 40;
        b.iter(|| {
            i += 64;
            black_box(filter.contains(black_box(i)))
        });
    });
}

fn classic_vs_auto_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_8k_random");
    group.bench_function("classic_mnk500", |b| {
        let params = FilterParams::builder()
            .max_kicks(500)
            .build()
            .expect("valid");
        b.iter(|| {
            let mut filter = ClassicCuckooFilter::new(params).expect("valid");
            for i in 0..8_192u64 {
                let _ = filter.insert(black_box(i.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1));
            }
            black_box(filter.len())
        });
    });
    group.bench_function("auto_mnk4", |b| {
        let params = FilterParams::paper_default();
        b.iter(|| {
            let mut filter = AutoCuckooFilter::new(params).expect("valid");
            for i in 0..8_192u64 {
                filter.query(black_box(i.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1));
            }
            black_box(filter.len())
        });
    });
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    query_empty_to_full,
    query_saturated,
    lookup_hit_vs_miss,
    classic_vs_auto_insert
);
criterion_main!(benches);
