//! Criterion benchmark of the monitor's runtime overhead on the simulator:
//! the same workload with a null observer vs PiPoMonitor. (In hardware the
//! monitor is off the critical path; here this measures simulation cost and
//! confirms the observer hook is cheap.)

use cache_sim::{CoreId, NullObserver, System, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use pipo_workloads::{benchmark, ProfileSource};
use pipomonitor::{MonitorConfig, PiPoMonitor};
use std::hint::black_box;

const INSTRUCTIONS: u64 = 100_000;

fn baseline_sim(c: &mut Criterion) {
    c.bench_function("sim_mix_core_baseline_100k", |b| {
        b.iter(|| {
            let mut system = System::new(SystemConfig::paper_default(), NullObserver);
            let profile = benchmark("gcc").expect("known");
            system.set_source(CoreId(0), Box::new(ProfileSource::new(profile, 0, 1)));
            black_box(system.run(INSTRUCTIONS).makespan())
        });
    });
}

fn monitored_sim(c: &mut Criterion) {
    c.bench_function("sim_mix_core_monitored_100k", |b| {
        b.iter(|| {
            let monitor = PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid config");
            let mut system = System::new(SystemConfig::paper_default(), monitor);
            let profile = benchmark("gcc").expect("known");
            system.set_source(CoreId(0), Box::new(ProfileSource::new(profile, 0, 1)));
            black_box(system.run(INSTRUCTIONS).makespan())
        });
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = baseline_sim, monitored_sim);
criterion_main!(benches);
