//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the PiPoMonitor paper. See `EXPERIMENTS.md` at the
//! repository root for the experiment index and how to regenerate each
//! figure (including sequential vs. parallel execution and JSON output).
//!
//! The harness layer is built around the [`sweep`] engine: each binary
//! declares its figure as a grid of independent cells and the engine
//! evaluates them sequentially or fanned across host threads, with
//! bit-identical per-cell results either way. [`args`] gives every binary the
//! same CLI surface and [`json`] the machine-readable output format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod json;
pub mod serve;
pub mod store;
pub mod sweep;

use auto_cuckoo::FilterParams;
use cache_sim::{CoreId, NullObserver, ShardSpec, SimReport, System, SystemConfig};
use pipo_workloads::{Mix, ProfileSource};
use pipomonitor::{MonitorConfig, MonitorStats, PiPoMonitor};

pub use args::HarnessArgs;
pub use json::{emit_json, sweep_document, write_atomic, Json};
pub use store::{finish_store, mix_cell_key, ResultStore, StoreTelemetry, STORE_SCHEMA_VERSION};
pub use sweep::{run_cells, ExecMode, MixCell, Sweep, SweepStoreOutcome};

/// Default instructions simulated per core for performance experiments.
/// The paper simulates 1 B instructions per benchmark on Gem5; this
/// trace-driven simulator reproduces the same relative behaviour at a
/// laptop-friendly scale (override with a CLI argument in the binaries).
pub const DEFAULT_INSTRUCTIONS: u64 = 2_000_000;

/// Result of one monitored mix simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixRun {
    /// Mix name.
    pub mix: &'static str,
    /// Baseline (unprotected) makespan in cycles.
    pub baseline_cycles: u64,
    /// Monitored makespan in cycles.
    pub monitored_cycles: u64,
    /// Total instructions retired in the monitored run.
    pub instructions: u64,
    /// Monitor captures (false positives on benign workloads).
    pub captures: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// LLC hits on prefetched-but-untouched lines (prefetch benefit).
    pub prefetch_hits: u64,
}

impl MixRun {
    /// Normalised performance: baseline time / monitored time (higher is
    /// better; > 1.0 means the monitor *improved* performance).
    #[must_use]
    pub fn normalized_performance(&self) -> f64 {
        self.baseline_cycles as f64 / self.monitored_cycles as f64
    }

    /// False positives per million instructions (Fig. 8(b)'s metric).
    #[must_use]
    pub fn false_positives_per_mi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.captures as f64 * 1.0e6 / self.instructions as f64
        }
    }

    /// All raw counters and derived metrics as a JSON object. This is also
    /// the payload schema of the persistent [`store`]: what `to_json`
    /// writes, [`from_stored`](Self::from_stored) reads back bit-identically.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("mix", self.mix)
            .field("baseline_cycles", self.baseline_cycles)
            .field("monitored_cycles", self.monitored_cycles)
            .field("instructions", self.instructions)
            .field("captures", self.captures)
            .field("prefetches", self.prefetches)
            .field("prefetch_hits", self.prefetch_hits)
            .field("normalized_performance", self.normalized_performance())
            .field("false_positives_per_mi", self.false_positives_per_mi())
    }

    /// Rebuilds a run from a stored [`to_json`](Self::to_json) payload.
    /// `mix` is the expecting cell's (static) mix name; a payload whose
    /// recorded mix disagrees — or that does not parse — returns `None`,
    /// which the sweep engine treats as a cache miss (validate-everything:
    /// a corrupt record degrades to recomputation, never to a wrong figure).
    #[must_use]
    pub fn from_stored(mix: &'static str, payload: &str) -> Option<Self> {
        let doc = Json::parse(payload).ok()?;
        if doc.get("mix")?.as_str()? != mix {
            return None;
        }
        let field = |name: &str| doc.get(name).and_then(Json::as_u64);
        Some(Self {
            mix,
            baseline_cycles: field("baseline_cycles")?,
            monitored_cycles: field("monitored_cycles")?,
            instructions: field("instructions")?,
            captures: field("captures")?,
            prefetches: field("prefetches")?,
            prefetch_hits: field("prefetch_hits")?,
        })
    }
}

/// Assembles a [`MixRun`] from its baseline and monitored halves (the sweep
/// engine simulates them as separate cells so baselines can be memoized).
pub(crate) fn mix_run_from_parts(
    mix: &'static str,
    baseline: &SimReport,
    monitored: &SimReport,
    stats: &MonitorStats,
) -> MixRun {
    MixRun {
        mix,
        baseline_cycles: baseline.makespan(),
        monitored_cycles: monitored.makespan(),
        instructions: monitored.total_instructions(),
        captures: stats.captures,
        prefetches: stats.prefetches_scheduled,
        prefetch_hits: monitored.stats.prefetch_hits,
    }
}

fn assign_mix_sources(system: &mut System<impl cache_sim::TrafficObserver>, mix: &Mix, seed: u64) {
    for (core, bench) in mix.benchmarks.iter().enumerate() {
        system.set_source(
            CoreId(core),
            Box::new(ProfileSource::new(bench, core, seed)),
        );
    }
}

/// Runs a built system either sequentially (`shards <= 1`) or epoch-parallel
/// with `shards` shards — bit-identical results either way.
fn drive_system<O: cache_sim::TrafficObserver + Clone>(
    system: &mut System<O>,
    instructions: u64,
    shards: usize,
) -> SimReport {
    if shards <= 1 {
        system.run(instructions)
    } else {
        system.run_sharded(instructions, ShardSpec::new(shards))
    }
}

/// Runs one mix on the unprotected baseline of the paper's default system.
#[must_use]
pub fn run_mix_baseline(mix: &Mix, instructions: u64, seed: u64) -> SimReport {
    run_mix_baseline_on(mix, SystemConfig::paper_default(), instructions, seed)
}

/// Runs one mix on the unprotected baseline of a custom system.
#[must_use]
pub fn run_mix_baseline_on(
    mix: &Mix,
    system_config: SystemConfig,
    instructions: u64,
    seed: u64,
) -> SimReport {
    run_mix_baseline_sharded(mix, system_config, instructions, seed, 1)
}

/// [`run_mix_baseline_on`] with an epoch-parallel shard count (the
/// `--shards` CLI knob; `1` = sequential, results bit-identical).
#[must_use]
pub fn run_mix_baseline_sharded(
    mix: &Mix,
    system_config: SystemConfig,
    instructions: u64,
    seed: u64,
    shards: usize,
) -> SimReport {
    let mut system = System::new(system_config, NullObserver);
    assign_mix_sources(&mut system, mix, seed);
    drive_system(&mut system, instructions, shards)
}

/// Runs one mix under PiPoMonitor only (no baseline), returning the raw
/// report and the monitor's statistics.
///
/// # Panics
///
/// Panics if `monitor_config` holds invalid filter parameters.
#[must_use]
pub fn run_mix_monitored_only(
    mix: &Mix,
    system_config: SystemConfig,
    monitor_config: MonitorConfig,
    instructions: u64,
    seed: u64,
) -> (SimReport, MonitorStats) {
    run_mix_monitored_only_sharded(mix, system_config, monitor_config, instructions, seed, 1)
}

/// [`run_mix_monitored_only`] with an epoch-parallel shard count (the
/// `--shards` CLI knob; `1` = sequential, results bit-identical).
///
/// # Panics
///
/// Panics if `monitor_config` holds invalid filter parameters.
#[must_use]
pub fn run_mix_monitored_only_sharded(
    mix: &Mix,
    system_config: SystemConfig,
    monitor_config: MonitorConfig,
    instructions: u64,
    seed: u64,
    shards: usize,
) -> (SimReport, MonitorStats) {
    let monitor = PiPoMonitor::new(monitor_config).expect("valid monitor configuration");
    let mut system = System::new(system_config, monitor);
    assign_mix_sources(&mut system, mix, seed);
    let report = drive_system(&mut system, instructions, shards);
    let stats = *system.observer().stats();
    (report, stats)
}

/// Runs one mix baseline + monitored and collects the paper's metrics.
///
/// # Panics
///
/// Panics if `monitor_config` holds invalid filter parameters.
#[must_use]
pub fn run_mix_monitored(
    mix: &Mix,
    monitor_config: MonitorConfig,
    instructions: u64,
    seed: u64,
) -> MixRun {
    run_mix_monitored_on(
        mix,
        SystemConfig::paper_default(),
        monitor_config,
        instructions,
        seed,
    )
}

/// Like [`run_mix_monitored`] but on a custom system configuration (used by
/// the replacement-policy ablation).
///
/// # Panics
///
/// Panics if `monitor_config` holds invalid filter parameters or
/// `system_config` is invalid.
#[must_use]
pub fn run_mix_monitored_on(
    mix: &Mix,
    system_config: SystemConfig,
    monitor_config: MonitorConfig,
    instructions: u64,
    seed: u64,
) -> MixRun {
    let baseline = run_mix_baseline_on(mix, system_config.clone(), instructions, seed);
    let (monitored, stats) =
        run_mix_monitored_only(mix, system_config, monitor_config, instructions, seed);
    mix_run_from_parts(mix.name, &baseline, &monitored, &stats)
}

/// The five Auto-Cuckoo filter sizes evaluated in Fig. 8: `(l, b)` pairs.
#[must_use]
pub fn fig8_filter_sizes() -> Vec<(usize, usize)> {
    vec![(512, 8), (1024, 8), (1024, 16), (2048, 4), (2048, 8)]
}

/// Builds the paper's filter parameters with a custom geometry.
///
/// # Panics
///
/// Panics if the geometry is invalid (all Fig. 8 geometries are valid).
#[must_use]
pub fn filter_with_size(l: usize, b: usize) -> FilterParams {
    FilterParams::builder()
        .buckets(l)
        .entries_per_bucket(b)
        .build()
        .expect("figure-8 geometry is valid")
}

/// Parses the optional instruction-count CLI argument (plus the shared
/// harness flags), exiting with status 2 on an unparsable argument instead
/// of silently falling back to the default.
#[must_use]
pub fn instructions_from_args() -> u64 {
    HarnessArgs::parse().instructions()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipo_workloads::all_mixes;

    #[test]
    fn mix_run_metrics() {
        let run = MixRun {
            mix: "mix1",
            baseline_cycles: 1010,
            monitored_cycles: 1000,
            instructions: 2_000_000,
            captures: 100,
            prefetches: 120,
            prefetch_hits: 60,
        };
        assert!((run.normalized_performance() - 1.01).abs() < 1e-12);
        assert!((run.false_positives_per_mi() - 50.0).abs() < 1e-12);
        let json = run.to_json().to_pretty();
        assert!(json.contains("\"mix\": \"mix1\""));
        assert!(json.contains("\"captures\": 100"));
        assert!(json.contains("\"false_positives_per_mi\": 50"));
    }

    #[test]
    fn fig8_sizes_match_paper() {
        let sizes = fig8_filter_sizes();
        assert_eq!(sizes.len(), 5);
        assert!(sizes.contains(&(1024, 8)));
        assert!(sizes.contains(&(2048, 4)));
    }

    #[test]
    fn short_mix_run_is_consistent() {
        let mix = &all_mixes()[2]; // mix3: light, fast
        let run = run_mix_monitored(mix, MonitorConfig::paper_default(), 50_000, 1);
        assert_eq!(run.mix, "mix3");
        assert!(run.baseline_cycles > 0);
        assert!(run.monitored_cycles > 0);
        assert!(run.instructions >= 4 * 50_000);
        // Performance deltas stay well under 5% even at tiny scale.
        let np = run.normalized_performance();
        assert!((0.95..1.05).contains(&np), "normalized perf {np}");
    }

    #[test]
    fn monitored_systems_are_send() {
        // The sweep engine moves whole simulations onto worker threads; a
        // regression reintroducing a non-Send source or observer would break
        // parallel sweeps at a distance, so pin it here.
        fn assert_send<T: Send>() {}
        assert_send::<System<PiPoMonitor>>();
        assert_send::<System<NullObserver>>();
    }
}
