//! §VII-D hardware overhead: storage and area of PiPoMonitor relative to the
//! 4 MB LLC it protects.
//!
//! Paper result (l=1024, b=8, f=12, CACTI 7 @ 22 nm): 8192 entries × 15 bits
//! = 15 KB storage = 0.37 % of the LLC; 0.013 mm² = 0.32 % of the LLC area.
//! Area here is scaled linearly from the paper's published CACTI data point
//! (see DESIGN.md, substitutions).
//!
//! Run: `cargo run --release -p pipo-bench --bin overhead_table`

use pipo_bench::{fig8_filter_sizes, filter_with_size};
use pipomonitor::OverheadReport;

fn main() {
    let llc_bytes: u64 = 4 << 20;
    println!("§VII-D — PiPoMonitor hardware overhead against a 4 MB LLC");
    println!(
        "{:>9} {:>8} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "size", "entries", "bits/entry", "KiB", "% of LLC", "mm^2", "% LLC area"
    );
    for (l, b) in fig8_filter_sizes() {
        let params = filter_with_size(l, b);
        let report = OverheadReport::for_filter(&params, llc_bytes);
        println!(
            "{:>6}x{:<2} {:>8} {:>12} {:>10.2} {:>12.3} {:>10.4} {:>12.3}",
            l,
            b,
            report.storage.entries,
            report.storage.bits_per_entry,
            report.storage.total_kib,
            report.storage.relative_to_llc * 100.0,
            report.area_mm2,
            report.area_relative_to_llc * 100.0
        );
    }
    println!("\npaper (1024x8): 15 KB storage (0.37%), 0.013 mm^2 (0.32%)");
}
