//! §VII-D hardware overhead: storage and area of PiPoMonitor relative to the
//! 4 MB LLC it protects.
//!
//! Paper result (l=1024, b=8, f=12, CACTI 7 @ 22 nm): 8192 entries × 15 bits
//! = 15 KB storage = 0.37 % of the LLC; 0.013 mm² = 0.32 % of the LLC area.
//! Area here is scaled linearly from the paper's published CACTI data point
//! (see EXPERIMENTS.md, substitutions).
//!
//! The five filter geometries are five sweep-engine cells (pure arithmetic,
//! but routed through the engine so every harness shares one code path and
//! the `--json` emitter).
//!
//! Run: `cargo run --release -p pipo-bench --bin overhead_table -- \
//!       [--json PATH] [--sequential | --threads N]`

use pipo_bench::{
    emit_json, fig8_filter_sizes, filter_with_size, run_cells, sweep_document, HarnessArgs, Json,
};
use pipomonitor::OverheadReport;

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_filter();
    args.expect_no_scale();
    args.expect_no_trace();
    args.expect_no_store();
    let llc_bytes: u64 = 4 << 20;
    println!("§VII-D — PiPoMonitor hardware overhead against a 4 MB LLC");
    println!(
        "{:>9} {:>8} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "size", "entries", "bits/entry", "KiB", "% of LLC", "mm^2", "% LLC area"
    );

    let sizes = fig8_filter_sizes();
    let reports = run_cells(args.mode, &sizes, |_, &(l, b)| {
        OverheadReport::for_filter(&filter_with_size(l, b), llc_bytes)
    });

    for (&(l, b), report) in sizes.iter().zip(&reports) {
        println!(
            "{:>6}x{:<2} {:>8} {:>12} {:>10.2} {:>12.3} {:>10.4} {:>12.3}",
            l,
            b,
            report.storage.entries,
            report.storage.bits_per_entry,
            report.storage.total_kib,
            report.storage.relative_to_llc * 100.0,
            report.area_mm2,
            report.area_relative_to_llc * 100.0
        );
    }
    println!("\npaper (1024x8): 15 KB storage (0.37%), 0.013 mm^2 (0.32%)");

    let cells = sizes
        .iter()
        .zip(&reports)
        .map(|(&(l, b), report)| {
            Json::object()
                .field("l", l)
                .field("b", b)
                .field("entries", report.storage.entries)
                .field("bits_per_entry", report.storage.bits_per_entry)
                .field("storage_kib", report.storage.total_kib)
                .field("storage_relative_to_llc", report.storage.relative_to_llc)
                .field("area_mm2", report.area_mm2)
                .field("area_relative_to_llc", report.area_relative_to_llc)
        })
        .collect();
    let meta = Json::object().field("llc_bytes", llc_bytes);
    emit_json(
        args.json.as_deref(),
        &sweep_document("overhead_table", args.mode, meta, cells),
    );
}
