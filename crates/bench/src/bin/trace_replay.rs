//! Trace-replay harness: adversarial scenarios and recorded traces driven
//! through whole monitored systems, with oracle-checked detection results.
//!
//! Each cell replays one workload on core 0 of the paper's quad-core system
//! (cores 1–3 run benign SPEC-profile streams, so detection must work under
//! load) twice: once on the unprotected baseline and once under PiPoMonitor
//! wrapped in a [`CaptureProbe`] — an exact oracle that counts every line's
//! true memory-fetch tally and attributes each capture as *exact* (the line
//! really was re-fetched `secThr+1`-or-more times) or false-positive-driven.
//! Per scenario the figure reports:
//!
//! * **detection latency** — scenario-region memory fetches until the first
//!   capture lands inside the scenario's address region (capped at the
//!   region fetch count when nothing was captured, with `detected: false`);
//! * **overhead** — monitored vs. baseline makespan, in percent.
//!
//! Built-in scenario cells (the scenario library):
//!
//! * `occupancy_channel` — [`OccupancyChannelSource`], an over-associativity
//!   occupancy probe. Its repeating sweep *is* a Ping-Pong pattern, so the
//!   monitor must capture it (exact captures, short latency).
//! * `noisy_neighbor` — [`NoisyNeighborSource`], three tenants time-sliced
//!   onto one core: benign consolidation churn (captures here are the
//!   false-positive cost of the defense, not detections).
//! * `bursty` — [`BurstySource`], open-loop bursts over an LLC-scale random
//!   region separated by idle gaps.
//!
//! `--trace PATH` adds a cell replaying a recorded `pipo-trace` file — v1
//! text or v2 binary, sniffed by magic; v2 replays through the streaming
//! [`V2Replay`] decoder. Its region is the trace's own line-address span.
//!
//! Run: `cargo run --release -p pipo-bench --bin trace_replay -- \
//!       [instructions_per_core] [--json PATH] [--sequential | --threads N] \
//!       [--shards N] [--filter BACKEND] [--trace PATH]`

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use cache_sim::{
    AccessSource, CoreId, Cycle, LineAddr, NullObserver, ShardSpec, SimReport, System,
    SystemConfig, TrafficObserver,
};
use pipo_attacks::OccupancyChannelSource;
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};
use pipo_workloads::{
    benchmark, is_v2, BurstySource, NoisyNeighborSource, ProfileSource, Trace, V2Replay,
};
use pipomonitor::{MonitorConfig, PiPoMonitor};

const SEED: u64 = 2126;
/// Occupancy probe: LLC sets probed (each with `ways + 1` colliding lines).
const OCC_PROBE_SETS: u64 = 64;
/// Occupancy probe base line — far above every benign/tenant region, and a
/// multiple of the LLC set count so probed sets start at set 0.
const OCC_BASE_LINE: u64 = 48 << 36;
/// Noisy-neighbor tenants occupy synthetic cores 16.. (benign cores 0–3 own
/// regions 1–4, so tenants can never alias them).
const TENANT_BASE: usize = 16;
const TENANT_MAX_BURST: u64 = 32;
/// Bursty region: 2^16 lines (4 MiB — exactly LLC-scale) at a private base.
const BURSTY_BASE_LINE: u64 = 40 << 36;
const BURSTY_LINES: u64 = 1 << 16;
const BURSTY_MAX_BURST: u64 = 32;
const BURSTY_GAP_CYCLES: u64 = 4_000;

/// One replay workload: a built-in scenario or a loaded trace file.
enum Workload {
    Occupancy,
    NoisyNeighbor,
    Bursty,
    TraceFile {
        path: String,
        /// Raw file bytes (shared into each `V2Replay`).
        bytes: Arc<[u8]>,
        /// Parsed trace (for the v1 replay path and the region span).
        trace: Trace,
        format: &'static str,
    },
}

impl Workload {
    fn name(&self) -> &str {
        match self {
            Workload::Occupancy => "occupancy_channel",
            Workload::NoisyNeighbor => "noisy_neighbor",
            Workload::Bursty => "bursty",
            Workload::TraceFile { path, .. } => path,
        }
    }

    /// The workload's line-address region, for attributing captures and
    /// counting scenario fetches.
    fn region(&self, config: &SystemConfig) -> Range<u64> {
        match self {
            Workload::Occupancy => {
                let span = (config.l3.ways as u64 + 1) * config.l3.sets as u64;
                OCC_BASE_LINE..OCC_BASE_LINE + span
            }
            // Three tenants at synthetic cores 16..19: ProfileSource regions
            // start at (core + 1) << 36 lines.
            Workload::NoisyNeighbor => {
                ((TENANT_BASE as u64 + 1) << 36)..((TENANT_BASE as u64 + 4) << 36)
            }
            Workload::Bursty => BURSTY_BASE_LINE..BURSTY_BASE_LINE + BURSTY_LINES,
            Workload::TraceFile { trace, .. } => {
                let lines = trace.accesses().iter().map(|a| a.addr.0 / 64);
                let lo = lines.clone().min().unwrap_or(0);
                let hi = lines.max().unwrap_or(0);
                lo..hi + 1
            }
        }
    }

    /// A fresh, deterministic access source for core 0.
    fn source(&self, config: &SystemConfig) -> Box<dyn AccessSource + Send> {
        match self {
            Workload::Occupancy => Box::new(OccupancyChannelSource::new(
                OCC_BASE_LINE,
                config.l3.sets as u64,
                config.l3.ways as u64,
                OCC_PROBE_SETS,
                2,
            )),
            Workload::NoisyNeighbor => {
                let tenants = [
                    benchmark("mcf").expect("known"),
                    benchmark("gcc").expect("known"),
                    benchmark("libquantum").expect("known"),
                ];
                Box::new(NoisyNeighborSource::new(
                    &tenants,
                    TENANT_BASE,
                    TENANT_MAX_BURST,
                    SEED,
                ))
            }
            Workload::Bursty => Box::new(BurstySource::new(
                BURSTY_BASE_LINE,
                BURSTY_LINES,
                BURSTY_MAX_BURST,
                BURSTY_GAP_CYCLES,
                1,
                SEED,
            )),
            Workload::TraceFile { bytes, trace, .. } => {
                if is_v2(bytes) {
                    Box::new(V2Replay::new(Arc::clone(bytes)).expect("validated at load"))
                } else {
                    Box::new(trace.replay())
                }
            }
        }
    }
}

/// Exact-oracle wrapper around [`PiPoMonitor`]: counts every line's true
/// memory-fetch tally, splits captures into exact vs. false-positive-driven
/// (the `ablation_filter` oracle, applied to whole-system replay), and
/// records when the first capture lands in the scenario region.
#[derive(Clone)]
struct CaptureProbe {
    monitor: PiPoMonitor,
    thr: u32,
    region: Range<u64>,
    counts: HashMap<u64, u32>,
    fetches: u64,
    region_fetches: u64,
    exact_captures: u64,
    fp_captures: u64,
    /// `region_fetches` value at the first in-region capture.
    first_region_capture: Option<u64>,
}

impl CaptureProbe {
    fn new(config: MonitorConfig, region: Range<u64>) -> Self {
        Self {
            thr: u32::from(config.filter.security_threshold()),
            monitor: PiPoMonitor::new(config).expect("valid monitor configuration"),
            region,
            counts: HashMap::new(),
            fetches: 0,
            region_fetches: 0,
            exact_captures: 0,
            fp_captures: 0,
            first_region_capture: None,
        }
    }
}

impl TrafficObserver for CaptureProbe {
    fn on_memory_fetch(&mut self, line: LineAddr, now: Cycle) -> bool {
        self.fetches += 1;
        let in_region = self.region.contains(&line.0);
        self.region_fetches += u64::from(in_region);
        let count = self.counts.entry(line.0).or_insert(0);
        *count += 1;
        let captured = self.monitor.on_memory_fetch(line, now);
        if captured {
            // A genuine capture needs secThr re-fetches after the insert,
            // i.e. an exact times-fetched of at least secThr + 1.
            if *count > self.thr {
                self.exact_captures += 1;
            } else {
                self.fp_captures += 1;
            }
            if in_region && self.first_region_capture.is_none() {
                self.first_region_capture = Some(self.region_fetches);
            }
        }
        captured
    }

    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        self.monitor.on_llc_eviction(line, protected, accessed, now);
    }

    fn next_prefetch_due(&self) -> Option<Cycle> {
        self.monitor.next_prefetch_due()
    }

    fn drain_due_prefetches(&mut self, now: Cycle, out: &mut Vec<LineAddr>) {
        self.monitor.drain_due_prefetches(now, out);
    }
}

struct CellResult {
    baseline_cycles: u64,
    monitored_cycles: u64,
    instructions: u64,
    captures: u64,
    exact_captures: u64,
    fp_captures: u64,
    fetches: u64,
    region_fetches: u64,
    detection_latency: u64,
    detected: bool,
    prefetches: u64,
}

impl CellResult {
    fn overhead_percent(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            (self.monitored_cycles as f64 / self.baseline_cycles as f64 - 1.0) * 100.0
        }
    }
}

fn drive<O: TrafficObserver + Clone>(
    system: &mut System<O>,
    instructions: u64,
    shards: usize,
) -> SimReport {
    if shards <= 1 {
        system.run(instructions)
    } else {
        system.run_sharded(instructions, ShardSpec::new(shards))
    }
}

/// Core 0 replays the workload; cores 1–3 run benign SPEC profiles so both
/// halves of the comparison see realistic LLC contention.
fn assign_sources(system: &mut System<impl TrafficObserver>, workload: &Workload) {
    let config = SystemConfig::paper_default();
    system.set_source(CoreId(0), workload.source(&config));
    for (core, name) in ["gcc", "mcf", "libquantum"].iter().enumerate() {
        let profile = benchmark(name).expect("known benchmark");
        system.set_source(
            CoreId(core + 1),
            Box::new(ProfileSource::new(profile, core + 1, SEED)),
        );
    }
}

fn run_cell(
    workload: &Workload,
    monitor_config: MonitorConfig,
    instructions: u64,
    shards: usize,
) -> CellResult {
    let system_config = SystemConfig::paper_default();

    let mut baseline_system = System::new(system_config.clone(), NullObserver);
    assign_sources(&mut baseline_system, workload);
    let baseline = drive(&mut baseline_system, instructions, shards);

    let probe = CaptureProbe::new(monitor_config, workload.region(&system_config));
    let mut monitored_system = System::new(system_config, probe);
    assign_sources(&mut monitored_system, workload);
    let monitored = drive(&mut monitored_system, instructions, shards);

    let probe = monitored_system.observer();
    let stats = *probe.monitor.stats();
    CellResult {
        baseline_cycles: baseline.makespan(),
        monitored_cycles: monitored.makespan(),
        instructions: monitored.total_instructions(),
        captures: stats.captures,
        exact_captures: probe.exact_captures,
        fp_captures: probe.fp_captures,
        fetches: probe.fetches,
        region_fetches: probe.region_fetches,
        detection_latency: probe.first_region_capture.unwrap_or(probe.region_fetches),
        detected: probe.first_region_capture.is_some(),
        prefetches: stats.prefetches_scheduled,
    }
}

fn load_workloads(trace_path: Option<&str>) -> Vec<Workload> {
    let mut workloads = vec![
        Workload::Occupancy,
        Workload::NoisyNeighbor,
        Workload::Bursty,
    ];
    if let Some(path) = trace_path {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("error: cannot read trace {path}: {e}");
                std::process::exit(2);
            }
        };
        let trace = match Trace::from_bytes(&bytes) {
            Ok(trace) => trace,
            Err(e) => {
                eprintln!("error: cannot parse trace {path}: {e}");
                std::process::exit(2);
            }
        };
        let format = if is_v2(&bytes) { "v2" } else { "v1" };
        workloads.push(Workload::TraceFile {
            path: path.to_string(),
            bytes: bytes.into(),
            trace,
            format,
        });
    }
    workloads
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_store();
    let instructions = args.instructions();
    let backend = args.filter_backend();
    let shards = args.shards_or_sequential();
    let monitor_config = MonitorConfig::paper_default().with_backend(backend);
    let workloads = load_workloads(args.trace.as_deref());
    println!(
        "trace replay — {instructions} instructions per core, {} workloads, \
         {backend} backend, {shards} shard(s)",
        workloads.len()
    );

    let results = run_cells(args.mode, &workloads, |_, workload| {
        run_cell(workload, monitor_config, instructions, shards)
    });

    println!(
        "\n{:>34} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "scenario", "overhead%", "captures", "exact", "fp", "detected", "latency", "fetches"
    );
    for (workload, r) in workloads.iter().zip(&results) {
        println!(
            "{:>34} {:>10.3} {:>10} {:>9} {:>9} {:>9} {:>10} {:>9}",
            workload.name(),
            r.overhead_percent(),
            r.captures,
            r.exact_captures,
            r.fp_captures,
            r.detected,
            r.detection_latency,
            r.region_fetches,
        );
    }
    println!("\ndetection latency: scenario-region memory fetches until the first capture");
    println!("lands in the region (= region fetch count when nothing was captured).");
    println!(
        "exact/fp: oracle attribution — was the captured line truly re-fetched secThr+1 times?"
    );

    let cells = workloads
        .iter()
        .zip(&results)
        .map(|(workload, r)| {
            let cell = Json::object()
                .field("scenario", workload.name())
                .field("baseline_cycles", r.baseline_cycles)
                .field("monitored_cycles", r.monitored_cycles)
                .field("overhead_percent", r.overhead_percent())
                .field("instructions", r.instructions)
                .field("captures", r.captures)
                .field("exact_captures", r.exact_captures)
                .field("fp_captures", r.fp_captures)
                .field("fetches", r.fetches)
                .field("scenario_fetches", r.region_fetches)
                .field("detected", r.detected)
                .field("detection_latency_fetches", r.detection_latency)
                .field("prefetches_scheduled", r.prefetches);
            match workload {
                Workload::TraceFile { format, trace, .. } => cell
                    .field("kind", "trace")
                    .field("trace_format", *format)
                    .field("trace_accesses", trace.len()),
                _ => cell.field("kind", "builtin"),
            }
        })
        .collect();
    let meta = Json::object()
        .field("instructions_per_core", instructions)
        .field("filter_backend", backend.name())
        .field("shards", shards)
        .field("seed", SEED)
        .field(
            "secthr",
            u64::from(monitor_config.filter.security_threshold()),
        )
        .field("trace", args.trace.as_deref().unwrap_or(""));
    emit_json(
        args.json.as_deref(),
        &sweep_document("trace_replay", args.mode, meta, cells),
    );
}
