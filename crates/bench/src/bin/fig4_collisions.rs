//! Fig. 4: ratio of fingerprint-collision entries in the b=8 Auto-Cuckoo
//! filter as the fingerprint width f grows, classified by the number of
//! addresses collided per entry, after 6 million insertions.
//!
//! Paper result: the ratio tracks ε ≈ 2b/2^f (halving per extra bit); at
//! f = 12 the collision-entry ratio is 0.014 with ε = 0.004, and entries
//! holding more than two collided addresses approach zero.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig4_collisions [insertions]`

use auto_cuckoo::{false_positive_rate, AutoCuckooFilter, FilterParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let insertions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000_000);

    println!(
        "Fig. 4 — fingerprint-collision entry ratios after {insertions} insertions (l=1024, b=8)"
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "f", "ratio>=2", "ratio=2", "ratio>=3", "eps_analytic", "2b/2^f"
    );

    for f in 8..=16u32 {
        let params = FilterParams::builder()
            .fingerprint_bits(f)
            .build()
            .expect("valid parameters");
        let mut filter = AutoCuckooFilter::new(params).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..insertions {
            filter.query(rng.gen::<u64>() | 1);
        }
        let census = filter.census();
        let two = census.entries_with(2) as f64 / census.total_entries().max(1) as f64;
        println!(
            "{f:>4} {:>12.5} {two:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            census.collision_ratio(),
            census.heavy_collision_ratio(),
            false_positive_rate(&params),
            16.0 / f64::from(1u32 << f),
        );
    }
    println!();
    println!("paper at f=12: collision ratio 0.014, eps 0.004, >2-address entries ~ 0");
}
