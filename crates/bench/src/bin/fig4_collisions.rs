//! Fig. 4: ratio of fingerprint-collision entries in the b=8 Auto-Cuckoo
//! filter as the fingerprint width f grows, classified by the number of
//! addresses collided per entry, after 6 million insertions.
//!
//! Paper result: the ratio tracks ε ≈ 2b/2^f (halving per extra bit); at
//! f = 12 the collision-entry ratio is 0.014 with ε = 0.004, and entries
//! holding more than two collided addresses approach zero.
//!
//! Each fingerprint width is one sweep-engine cell (6 M insertions each, so
//! the fan-out dominates this binary's wall clock).
//!
//! Run: `cargo run --release -p pipo-bench --bin fig4_collisions -- \
//!       [insertions] [--json PATH] [--sequential | --threads N]`

use auto_cuckoo::{false_positive_rate, AutoCuckooFilter, FilterParams};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WIDTHS: [u32; 9] = [8, 9, 10, 11, 12, 13, 14, 15, 16];
const SEED: u64 = 41;

struct CollisionResult {
    ratio_collided: f64,
    ratio_exactly_two: f64,
    ratio_heavy: f64,
    eps_analytic: f64,
    approx: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_filter();
    args.expect_no_trace();
    args.expect_no_store();
    let insertions = args.scale_or(6_000_000);

    println!(
        "Fig. 4 — fingerprint-collision entry ratios after {insertions} insertions (l=1024, b=8)"
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "f", "ratio>=2", "ratio=2", "ratio>=3", "eps_analytic", "2b/2^f"
    );

    let results = run_cells(args.mode, &WIDTHS, |_, &f| {
        let params = FilterParams::builder()
            .fingerprint_bits(f)
            .build()
            .expect("valid parameters");
        let mut filter = AutoCuckooFilter::new(params).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(SEED);
        for _ in 0..insertions {
            filter.query(rng.gen::<u64>() | 1);
        }
        let census = filter.census();
        CollisionResult {
            ratio_collided: census.collision_ratio(),
            ratio_exactly_two: census.entries_with(2) as f64 / census.total_entries().max(1) as f64,
            ratio_heavy: census.heavy_collision_ratio(),
            eps_analytic: false_positive_rate(&params),
            approx: 16.0 / f64::from(1u32 << f),
        }
    });

    for (&f, r) in WIDTHS.iter().zip(&results) {
        println!(
            "{f:>4} {:>12.5} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            r.ratio_collided, r.ratio_exactly_two, r.ratio_heavy, r.eps_analytic, r.approx
        );
    }
    println!();
    println!("paper at f=12: collision ratio 0.014, eps 0.004, >2-address entries ~ 0");

    let cells = WIDTHS
        .iter()
        .zip(&results)
        .map(|(&f, r)| {
            Json::object()
                .field("fingerprint_bits", f)
                .field("ratio_collided", r.ratio_collided)
                .field("ratio_exactly_two", r.ratio_exactly_two)
                .field("ratio_heavy", r.ratio_heavy)
                .field("eps_analytic", r.eps_analytic)
                .field("approx_2b_over_2f", r.approx)
        })
        .collect();
    let meta = Json::object()
        .field("insertions", insertions)
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("fig4_collisions", args.mode, meta, cells),
    );
}
