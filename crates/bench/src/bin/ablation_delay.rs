//! Ablation: the prefetch delay between `pEvict` and the prefetch issue.
//!
//! The paper introduces the delay "to avoid memory bandwidth preemption with
//! the writeback of the same line" but does not publish a value. This sweep
//! shows the defense is insensitive to the delay as long as it stays well
//! below the attacker's probe interval (5000 cycles): the prefetch must land
//! before the next probe to flood it.
//!
//! Run: `cargo run --release -p pipo-bench --bin ablation_delay`

use cache_sim::{Hierarchy, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
use pipomonitor::{MonitorConfig, PiPoMonitor};

fn main() {
    let windows = 150;
    let config = AttackConfig {
        iterations: windows,
        ..AttackConfig::paper_default()
    };
    println!(
        "prefetch-delay ablation — {} probe windows, interval 5000 cycles",
        windows
    );
    println!(
        "{:>8} {:>16} {:>18} {:>14}",
        "delay", "observed frac", "distinguishability", "prefetches"
    );

    for delay in [0u64, 10, 50, 200, 1000, 3000, 4900, 6000, 20_000] {
        let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
        let victim = SquareAndMultiply::with_random_key(
            VictimLayout::default_layout(),
            windows * config.bits_per_window,
            2021,
        );
        let monitor_config = MonitorConfig::paper_default().with_prefetch_delay(delay);
        let mut monitor = PiPoMonitor::new(monitor_config).expect("valid configuration");
        let outcome = PrimeProbeAttack::new(config).run(&mut hierarchy, victim, &mut monitor);
        let observed = outcome
            .trace
            .observations()
            .iter()
            .filter(|o| o.multiply)
            .count();
        let recovery = outcome.trace.recover_key();
        println!(
            "{delay:>8} {:>16.3} {:>18.3} {:>14}",
            observed as f64 / outcome.trace.len() as f64,
            recovery.distinguishability,
            monitor.stats().prefetches_scheduled
        );
    }
    println!("\nexpected: flooding holds for delay << probe interval; a delay beyond the");
    println!("interval lets probes land before the prefetch and re-opens the channel");
}
