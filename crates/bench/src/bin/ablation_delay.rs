//! Ablation: the prefetch delay between `pEvict` and the prefetch issue.
//!
//! The paper introduces the delay "to avoid memory bandwidth preemption with
//! the writeback of the same line" but does not publish a value. This sweep
//! shows the defense is insensitive to the delay as long as it stays well
//! below the attacker's probe interval (5000 cycles): the prefetch must land
//! before the next probe to flood it.
//!
//! The nine delay cells run through the sweep engine (each cell is one
//! self-contained attack simulation).
//!
//! Run: `cargo run --release -p pipo-bench --bin ablation_delay -- \
//!       [probe_windows] [--json PATH] [--sequential | --threads N]`

use cache_sim::{Hierarchy, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};
use pipomonitor::{MonitorConfig, PiPoMonitor};

const DELAYS: [u64; 9] = [0, 10, 50, 200, 1000, 3000, 4900, 6000, 20_000];
const SEED: u64 = 2021;

struct DelayResult {
    observed_fraction: f64,
    distinguishability: f64,
    prefetches: u64,
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_trace();
    args.expect_no_store();
    let windows = args.scale_or(150) as usize;
    let backend = args.filter_backend();
    let config = AttackConfig {
        iterations: windows,
        ..AttackConfig::paper_default()
    };
    println!(
        "prefetch-delay ablation — {} probe windows, interval 5000 cycles, {backend} backend",
        windows
    );
    println!(
        "{:>8} {:>16} {:>18} {:>14}",
        "delay", "observed frac", "distinguishability", "prefetches"
    );

    let results = run_cells(args.mode, &DELAYS, |_, &delay| {
        let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
        let victim = SquareAndMultiply::with_random_key(
            VictimLayout::default_layout(),
            windows * config.bits_per_window,
            SEED,
        );
        let monitor_config = MonitorConfig::paper_default()
            .with_prefetch_delay(delay)
            .with_backend(backend);
        let mut monitor = PiPoMonitor::new(monitor_config).expect("valid configuration");
        let outcome = PrimeProbeAttack::new(config).run(&mut hierarchy, victim, &mut monitor);
        let observed = outcome
            .trace
            .observations()
            .iter()
            .filter(|o| o.multiply)
            .count();
        let recovery = outcome.trace.recover_key();
        DelayResult {
            observed_fraction: observed as f64 / outcome.trace.len() as f64,
            distinguishability: recovery.distinguishability,
            prefetches: monitor.stats().prefetches_scheduled,
        }
    });

    for (&delay, r) in DELAYS.iter().zip(&results) {
        println!(
            "{delay:>8} {:>16.3} {:>18.3} {:>14}",
            r.observed_fraction, r.distinguishability, r.prefetches
        );
    }
    println!("\nexpected: flooding holds for delay << probe interval; a delay beyond the");
    println!("interval lets probes land before the prefetch and re-opens the channel");

    let cells = DELAYS
        .iter()
        .zip(&results)
        .map(|(&delay, r)| {
            Json::object()
                .field("prefetch_delay", delay)
                .field("observed_fraction", r.observed_fraction)
                .field("distinguishability", r.distinguishability)
                .field("prefetches", r.prefetches)
        })
        .collect();
    let meta = Json::object()
        .field("probe_windows", windows)
        .field("filter_backend", backend.name())
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("ablation_delay", args.mode, meta, cells),
    );
}
