//! Prior-work comparison (paper §VIII, related work): the Auto-Cuckoo
//! filter vs a directory-style stateful recording table, on storage and on
//! resistance to defense-aware record flushing.
//!
//! Paper claims: stateful directory extensions cost an order of magnitude
//! more storage than PiPoMonitor, and "the directory itself is vulnerable to
//! reverse attacks using eviction sets to evict target records".
//!
//! The two flushing attacks (directory table vs PiPoMonitor) are two
//! sweep-engine cells; the storage rows are pure arithmetic.
//!
//! Run: `cargo run --release -p pipo-bench --bin baseline_stateful -- \
//!       [--json PATH] [--sequential | --threads N]`

use auto_cuckoo::{FilterParams, StorageOverhead};
use cache_sim::{Hierarchy, LineAddr, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, TableFlusher, VictimLayout};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};
use pipomonitor::{DirectoryMonitor, DirectoryMonitorConfig, MonitorConfig, PiPoMonitor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WINDOWS: usize = 150;
const LINE_ADDR_BITS: u32 = 34; // 40-bit physical addresses, 64-byte lines

struct StorageRow {
    structure: &'static str,
    entries: u64,
    kib: f64,
    relative_to_llc: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_filter();
    args.expect_no_scale();
    args.expect_no_trace();
    args.expect_no_store();
    let storage = storage_rows();
    print_storage(&storage);
    println!();
    let flushing = run_cells(args.mode, &["directory", "pipomonitor"], |_, defense| {
        flushing_distinguishability(defense)
    });
    print_flushing(&flushing);

    let cells = ["directory", "pipomonitor"]
        .iter()
        .zip(&flushing)
        .map(|(defense, &disting)| {
            Json::object()
                .field("defense", *defense)
                .field("distinguishability", disting)
                .field("bypassed", disting > 0.9)
        })
        .collect();
    let storage_json: Vec<Json> = storage
        .iter()
        .map(|row| {
            Json::object()
                .field("structure", row.structure)
                .field("entries", row.entries)
                .field("kib", row.kib)
                .field("relative_to_llc", row.relative_to_llc)
        })
        .collect();
    let meta = Json::object()
        .field("probe_windows", WINDOWS)
        .field("flush_lines_per_window", 16u64)
        .field("storage", storage_json);
    emit_json(
        args.json.as_deref(),
        &sweep_document("baseline_stateful", args.mode, meta, cells),
    );
}

fn storage_rows() -> Vec<StorageRow> {
    let llc_bits = (4u64 << 20) * 8;
    let filter = StorageOverhead::for_filter(&FilterParams::paper_default(), 4 << 20);
    let table = DirectoryMonitorConfig::paper_comparable();
    let table_bits = table.storage_bits(LINE_ADDR_BITS);
    let full = DirectoryMonitorConfig {
        sets: 65_536,
        ways: 1,
        threshold: 3,
        prefetch_delay: 50,
    };
    let full_bits = full.storage_bits(LINE_ADDR_BITS);
    vec![
        StorageRow {
            structure: "Auto-Cuckoo filter (1024x8, f=12)",
            entries: filter.entries,
            kib: filter.total_kib,
            relative_to_llc: filter.relative_to_llc,
        },
        StorageRow {
            structure: "tag table, same capacity (1024x8)",
            entries: table.entries() as u64,
            kib: table_bits as f64 / 8.0 / 1024.0,
            relative_to_llc: table_bits as f64 / llc_bits as f64,
        },
        StorageRow {
            structure: "directory extension (per LLC line)",
            entries: full.entries() as u64,
            kib: full_bits as f64 / 8.0 / 1024.0,
            relative_to_llc: full_bits as f64 / llc_bits as f64,
        },
    ]
}

fn print_storage(rows: &[StorageRow]) {
    println!("storage comparison (4 MB LLC, 40-bit physical addresses)");
    println!(
        "{:>34} {:>10} {:>10} {:>10}",
        "structure", "entries", "KiB", "% of LLC"
    );
    for row in rows {
        println!(
            "{:>34} {:>10} {:>10.1} {:>10.3}",
            row.structure,
            row.entries,
            row.kib,
            row.relative_to_llc * 100.0
        );
    }
    println!("paper: filter = 15 KB (0.37%), an order of magnitude below stateful prior work");
}

/// Runs the Prime+Probe attack with a per-window record-flushing budget
/// against one defense and returns the channel distinguishability.
fn flushing_distinguishability(defense: &str) -> f64 {
    let config = AttackConfig {
        iterations: WINDOWS,
        ..AttackConfig::paper_default()
    };
    let key_bits = WINDOWS * config.bits_per_window;

    let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
    let victim = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), key_bits, 77);
    let layout = *victim.layout();
    let square_llc = hierarchy.llc_set_of(layout.square);
    let multiply_llc = hierarchy.llc_set_of(layout.multiply);
    let llc_sets = hierarchy.llc_sets() as u64;

    if defense == "directory" {
        // --- Directory baseline under deterministic record flushing ---
        let dir_config = DirectoryMonitorConfig::paper_comparable();
        let mut dir_monitor = DirectoryMonitor::new(dir_config);
        let avoid = move |l: LineAddr| {
            let set = (l.0 % llc_sets) as usize;
            set == square_llc || set == multiply_llc
        };
        let mut flush_sq = TableFlusher::new(&dir_config, layout.square.line(64), 0x60_0000_0000);
        let mut flush_mu = TableFlusher::new(&dir_config, layout.multiply.line(64), 0x68_0000_0000);
        let outcome = PrimeProbeAttack::new(config).run_with_flusher(
            &mut hierarchy,
            victim,
            &mut dir_monitor,
            &mut |_| {
                let mut v = flush_sq.next_round(avoid);
                v.extend(flush_mu.next_round(avoid));
                v
            },
        );
        outcome.trace.recover_key().distinguishability
    } else {
        // --- PiPoMonitor under the same per-window flushing budget ---
        let mut pipo =
            PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid configuration");
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = PrimeProbeAttack::new(config).run_with_flusher(
            &mut hierarchy,
            victim,
            &mut pipo,
            &mut |_| {
                // Best effort against the filter: a random flood of the same
                // size (16 fresh lines/window; deterministic targeting is
                // impossible and expected eviction needs b*l = 8192 fills).
                let mut v = Vec::with_capacity(16);
                while v.len() < 16 {
                    let line = (rng.gen::<u64>() >> 8) | (1 << 40);
                    let set = (line % llc_sets) as usize;
                    if set != square_llc && set != multiply_llc {
                        v.push(cache_sim::Addr(line * 64));
                    }
                }
                v
            },
        );
        outcome.trace.recover_key().distinguishability
    }
}

fn print_flushing(results: &[f64]) {
    let (dir, pipo) = (results[0], results[1]);
    println!("defense-aware record flushing (16 fresh flush lines per 5000-cycle window)");
    println!(
        "{:>34} {:>20} {:>12}",
        "defense", "distinguishability", "bypassed?"
    );
    println!(
        "{:>34} {:>20.3} {:>12}",
        "directory table (deterministic)",
        dir,
        if dir > 0.9 { "YES" } else { "no" }
    );
    println!(
        "{:>34} {:>20.3} {:>12}",
        "Auto-Cuckoo filter (PiPoMonitor)",
        pipo,
        if pipo > 0.9 { "YES" } else { "no" }
    );
    println!("\npaper: deterministic record eviction defeats directory-based stateful defenses;");
    println!("autonomic deletion raises the expected flush cost to b*l = 8192 accesses/window");
}
