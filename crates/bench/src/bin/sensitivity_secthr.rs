//! §VII-C sensitivity analysis: the security threshold secThr.
//!
//! Paper result: secThr = 3 gives better average performance than 1 or 2,
//! because smaller thresholds capture (and prefetch) more aggressively and
//! generate more false positives.
//!
//! Run: `cargo run --release -p pipo-bench --bin sensitivity_secthr [instructions_per_core]`

use auto_cuckoo::FilterParams;
use pipo_bench::{instructions_from_args, run_mix_monitored};
use pipo_workloads::all_mixes;
use pipomonitor::MonitorConfig;

fn main() {
    let instructions = instructions_from_args();
    let mixes = all_mixes();
    println!("§VII-C — secThr sensitivity, {instructions} instructions per core");
    println!(
        "{:>7} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "mix",
        "perf thr=1",
        "perf thr=2",
        "perf thr=3",
        "fp/Mi thr=1",
        "fp/Mi thr=2",
        "fp/Mi thr=3"
    );

    let mut sums = [0.0f64; 3];
    for mix in &mixes {
        let mut perfs = Vec::new();
        let mut fps = Vec::new();
        for thr in 1..=3u8 {
            let filter = FilterParams::builder()
                .security_threshold(thr)
                .build()
                .expect("valid parameters");
            let config = MonitorConfig::paper_default().with_filter(filter);
            let run = run_mix_monitored(mix, config, instructions, 42);
            perfs.push(run.normalized_performance());
            fps.push(run.false_positives_per_mi());
        }
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>12.4}   {:>12.1} {:>12.1} {:>12.1}",
            mix.name, perfs[0], perfs[1], perfs[2], fps[0], fps[1], fps[2]
        );
        for (i, p) in perfs.iter().enumerate() {
            sums[i] += p;
        }
    }
    let n = mixes.len() as f64;
    println!(
        "{:>7} {:>12.4} {:>12.4} {:>12.4}",
        "mean",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!("\npaper: average performance at secThr=3 is better than at 1 or 2");
}
