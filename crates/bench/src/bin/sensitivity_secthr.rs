//! §VII-C sensitivity analysis: the security threshold secThr.
//!
//! Paper result: secThr = 3 gives better average performance than 1 or 2,
//! because smaller thresholds capture (and prefetch) more aggressively and
//! generate more false positives.
//!
//! The 10 mixes × 3 thresholds grid runs through the sweep engine (cells in
//! parallel, one memoized baseline per mix across the three thresholds).
//!
//! Run: `cargo run --release -p pipo-bench --bin sensitivity_secthr -- \
//!       [instructions_per_core] [--json PATH] [--sequential | --threads N] \
//!       [--store PATH]`

use auto_cuckoo::FilterParams;
use pipo_bench::{emit_json, finish_store, sweep_document, HarnessArgs, Json, MixCell, Sweep};
use pipo_workloads::all_mixes;
use pipomonitor::MonitorConfig;

const SEED: u64 = 42;
const THRESHOLDS: [u8; 3] = [1, 2, 3];

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_trace();
    let instructions = args.instructions();
    let backend = args.filter_backend();
    let mixes = all_mixes();
    println!(
        "§VII-C — secThr sensitivity, {instructions} instructions per core, {backend} backend"
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "mix",
        "perf thr=1",
        "perf thr=2",
        "perf thr=3",
        "fp/Mi thr=1",
        "fp/Mi thr=2",
        "fp/Mi thr=3"
    );

    let mut sweep = Sweep::new();
    for mix in &mixes {
        for thr in THRESHOLDS {
            let filter = FilterParams::builder()
                .security_threshold(thr)
                .build()
                .expect("valid parameters");
            sweep.push(MixCell::new(
                format!("thr{thr}/{}", mix.name),
                *mix,
                MonitorConfig::paper_default()
                    .with_filter(filter)
                    .with_backend(backend),
                instructions,
                SEED,
            ));
        }
    }
    let sweep = sweep.with_shards(args.shards_or_sequential());
    let mut store = args.open_store();
    let started = std::time::Instant::now();
    let (runs, outcome) = sweep.run_with_store(args.mode, store.as_mut());
    finish_store(store.as_mut(), outcome, started.elapsed());

    let mut sums = [0.0f64; 3];
    for (mix, thr_runs) in mixes.iter().zip(runs.chunks(THRESHOLDS.len())) {
        let perfs: Vec<f64> = thr_runs
            .iter()
            .map(pipo_bench::MixRun::normalized_performance)
            .collect();
        let fps: Vec<f64> = thr_runs
            .iter()
            .map(pipo_bench::MixRun::false_positives_per_mi)
            .collect();
        println!(
            "{:>7} {:>12.4} {:>12.4} {:>12.4}   {:>12.1} {:>12.1} {:>12.1}",
            mix.name, perfs[0], perfs[1], perfs[2], fps[0], fps[1], fps[2]
        );
        for (i, p) in perfs.iter().enumerate() {
            sums[i] += p;
        }
    }
    let n = mixes.len() as f64;
    println!(
        "{:>7} {:>12.4} {:>12.4} {:>12.4}",
        "mean",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!("\npaper: average performance at secThr=3 is better than at 1 or 2");

    let cells = sweep
        .cells()
        .iter()
        .zip(&runs)
        .zip((0..mixes.len()).flat_map(|_| THRESHOLDS))
        .map(|((cell, run), thr)| {
            run.to_json()
                .field("label", cell.label.as_str())
                .field("security_threshold", u64::from(thr))
        })
        .collect();
    let meta = Json::object()
        .field("instructions_per_core", instructions)
        .field("filter_backend", backend.name())
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("sensitivity_secthr", args.mode, meta, cells),
    );
}
