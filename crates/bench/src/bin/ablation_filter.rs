//! Filter-zoo ablation: every `PatternStore` backend at production scale.
//!
//! The paper evaluates one pattern filter (the Auto-Cuckoo filter) at one
//! size (8192 entries). This figure goes beyond the paper: it drives all
//! four [`FilterBackend`]s with the same multi-tenant memory-fetch stream at
//! *production* scale — millions of tracked line addresses spread over
//! several tenant address spaces — and reports the axes a deployment would
//! trade off:
//!
//! * **false alarms / Mi** — captures the backend raised on lines whose
//!   *exact* re-fetch count was still below `secThr + 1` (an exact oracle
//!   replays the stream and attributes every capture). These are purely
//!   false-positive-driven: fingerprint collisions (cuckoo), counter sharing
//!   (bloom), or frozen-membership collisions (xor).
//! * **detection latency** — attacker accesses until a fresh Ping-Pong line
//!   is captured, with benign traffic interleaved (averaged over trials).
//! * **memory bytes** — the backend's modelled hardware footprint.
//! * **ns / access** — host-side cost of the query-with-promotion hot path.
//!
//! The sweep drives the stores directly with the fetch stream (no full
//! system simulation — at this scale the cache hierarchy would dwarf the
//! signal), so the per-Mi basis is *million tracked accesses*, and `--shards`
//! is rejected. `--filter` is rejected too: this binary sweeps every backend
//! by construction.
//!
//! Run: `cargo run --release -p pipo-bench --bin ablation_filter -- \
//!       [tracked_lines] [--json PATH] [--sequential | --threads N]`

use std::collections::HashMap;
use std::time::Instant;

use auto_cuckoo::{build_store, DetRng, FilterBackend, FilterParams};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};

/// Distinct benign line addresses (the tracked population) by default.
const DEFAULT_TRACKED: u64 = 2_000_000;
/// Benign accesses generated per tracked line.
const ACCESSES_PER_LINE: u64 = 3;
/// Independent tenant address spaces sharing the monitor.
const TENANTS: u64 = 8;
/// Fraction (1/N) of each tenant's lines forming its hot set.
const HOT_DIVISOR: u64 = 10;
/// Probability (percent) that an access goes to the hot set.
const HOT_PERCENT: usize = 80;
/// Attacker trials for the detection-latency estimate.
const ATTACK_TRIALS: u64 = 16;
/// Benign accesses interleaved between consecutive attacker accesses.
const BENIGN_PER_PROBE: u64 = 32;
/// Give up on a trial after this many attacker accesses (counts as the cap).
const MAX_PROBES: u64 = 64;
const SEED: u64 = 2021;

struct BackendResult {
    captures: u64,
    exact_captures: u64,
    fp_captures: u64,
    false_alarms_per_mi: f64,
    detection_latency: f64,
    memory_bytes: usize,
    ns_per_access: f64,
    occupancy: f64,
    tracked: usize,
}

/// Geometry shared by every backend: paper policy (`b=8`, `f=12`, MNK=4,
/// `secThr=3`) with the bucket count scaled so capacity comfortably exceeds
/// the tracked population (~2× headroom, as a deployment would provision).
fn production_params(tracked_lines: u64) -> FilterParams {
    let buckets = (tracked_lines / 6).next_power_of_two().max(1024) as usize;
    FilterParams::builder()
        .buckets(buckets)
        .build()
        .expect("scaled parameters are valid")
}

/// The deterministic multi-tenant benign stream: each access picks a tenant,
/// then a line from the tenant's hot set (80%) or its full space (20%).
/// Identical for every backend (same seed), so the comparison is paired.
fn benign_stream(tracked_lines: u64) -> Vec<u64> {
    let per_tenant = (tracked_lines / TENANTS).max(1);
    let hot_lines = (per_tenant / HOT_DIVISOR).max(1);
    let total = tracked_lines * ACCESSES_PER_LINE;
    let mut rng = DetRng::new(SEED);
    let mut stream = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let tenant = rng.below(TENANTS as usize) as u64;
        let line = if rng.below(100) < HOT_PERCENT {
            rng.below(hot_lines as usize) as u64
        } else {
            rng.below(per_tenant as usize) as u64
        };
        // Tenant address spaces are disjoint 1 TiB windows of line addresses.
        stream.push((tenant << 34) | line);
    }
    stream
}

fn run_backend(backend: FilterBackend, params: FilterParams, stream: &[u64]) -> BackendResult {
    let mut store = build_store(backend, params).expect("valid parameters");
    let thr = u32::from(params.security_threshold());

    // Timed benign phase: the loop body is exactly the monitor's hot path
    // (one query-with-promotion per memory fetch). Capture indices are
    // recorded for the oracle pass; the Vec is preallocated so a push cannot
    // trigger a mid-loop reallocation spike.
    let mut captured_at: Vec<u32> = Vec::with_capacity(stream.len() / 16 + 16);
    let started = Instant::now();
    for (i, &line) in stream.iter().enumerate() {
        if store.query(line).captured {
            captured_at.push(i as u32);
        }
    }
    let elapsed = started.elapsed();
    let ns_per_access = elapsed.as_nanos() as f64 / stream.len() as f64;

    // Oracle pass: replay the stream with exact per-line counts and split
    // the recorded captures into exact (the line really was re-fetched
    // `secThr+1`-or-more times) and false-positive-driven.
    let mut counts: HashMap<u64, u32> = HashMap::with_capacity(stream.len() / 2);
    let mut exact_captures = 0u64;
    let mut fp_captures = 0u64;
    let mut next_capture = 0usize;
    for (i, &line) in stream.iter().enumerate() {
        let count = counts.entry(line).or_insert(0);
        *count += 1;
        if next_capture < captured_at.len() && captured_at[next_capture] == i as u32 {
            next_capture += 1;
            // A genuine capture needs secThr re-accesses after the insert,
            // i.e. an exact times-seen of at least secThr + 1.
            if *count > thr {
                exact_captures += 1;
            } else {
                fp_captures += 1;
            }
        }
    }
    let captures = captured_at.len() as u64;
    let false_alarms_per_mi = fp_captures as f64 * 1.0e6 / stream.len() as f64;

    // Detection-latency phase: fresh attacker lines outside every tenant
    // window, probed with benign traffic interleaved (the store keeps its
    // warm benign state — detection must work under load, not in a vacuum).
    let mut rng = DetRng::new(SEED ^ 0x5a5a_5a5a);
    let mut benign = stream.iter().cycle();
    let mut total_probes = 0u64;
    for trial in 0..ATTACK_TRIALS {
        let target = (0xff << 34) | (rng.next_u64() >> 32) | (trial << 20);
        let mut probes = 0u64;
        while probes < MAX_PROBES {
            probes += 1;
            if store.query(target).captured {
                break;
            }
            for _ in 0..BENIGN_PER_PROBE {
                let &line = benign.next().expect("cycled stream never ends");
                store.query(line);
            }
        }
        total_probes += probes;
    }
    let detection_latency = total_probes as f64 / ATTACK_TRIALS as f64;

    BackendResult {
        captures,
        exact_captures,
        fp_captures,
        false_alarms_per_mi,
        detection_latency,
        memory_bytes: store.memory_bytes(),
        ns_per_access,
        occupancy: store.occupancy(),
        tracked: store.len(),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_filter();
    args.expect_no_trace();
    args.expect_no_store();
    let tracked_lines = args.scale_or(DEFAULT_TRACKED).max(1024);
    let params = production_params(tracked_lines);
    let accesses = tracked_lines * ACCESSES_PER_LINE;
    println!(
        "filter-zoo ablation — {tracked_lines} tracked lines across {TENANTS} tenants, \
         {accesses} benign accesses, capacity {} ({}x{})",
        params.capacity(),
        params.buckets(),
        params.entries_per_bucket(),
    );

    let stream = benign_stream(tracked_lines);
    let backends = FilterBackend::ALL;
    let results = run_cells(args.mode, &backends, |_, &backend| {
        run_backend(backend, params, &stream)
    });

    println!(
        "\n{:>8} {:>12} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "backend", "captures", "false alarms", "fa/Mi", "latency", "memory", "ns/access"
    );
    for (backend, r) in backends.iter().zip(&results) {
        println!(
            "{:>8} {:>12} {:>14} {:>12.2} {:>12.1} {:>12} {:>10.1}",
            backend.name(),
            r.captures,
            r.fp_captures,
            r.false_alarms_per_mi,
            r.detection_latency,
            r.memory_bytes,
            r.ns_per_access
        );
    }
    println!("\nexact-capture floor (oracle): every backend also raised the genuine captures its");
    println!("hot lines earned; the false-alarm column is the backend-specific excess.");
    println!("detection latency: attacker accesses to capture (exact stores: secThr+1 = 4).");

    let cells = backends
        .iter()
        .zip(&results)
        .map(|(backend, r)| {
            Json::object()
                .field("backend", backend.name())
                .field("captures", r.captures)
                .field("exact_captures", r.exact_captures)
                .field("fp_captures", r.fp_captures)
                .field("false_alarms_per_mi", r.false_alarms_per_mi)
                .field("detection_latency_accesses", r.detection_latency)
                .field("memory_bytes", r.memory_bytes)
                .field("ns_per_access", r.ns_per_access)
                .field("occupancy", r.occupancy)
                .field("tracked_len", r.tracked)
        })
        .collect();
    let meta = Json::object()
        .field("tracked_lines", tracked_lines)
        .field("tenants", TENANTS)
        .field("benign_accesses", accesses)
        .field("capacity", params.capacity())
        .field("buckets", params.buckets())
        .field("attack_trials", ATTACK_TRIALS)
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("ablation_filter", args.mode, meta, cells),
    );
}
