//! Fig. 7 / §VI-B: defense-aware attacks on the Auto-Cuckoo filter.
//!
//! Paper results:
//! * brute force needs `b·l` fills in expectation (8192 for b=8, l=1024 —
//!   "the adversary needed 8192 memory accesses on average");
//! * a reverse-engineering eviction set must grow as `b^(MNK+1)` (32768 for
//!   b=8, MNK=4), making the targeted attack cost exceed brute force.
//!
//! The empirical reverse-attack sweep runs on a scaled-down filter (l=128,
//! b=8) so the effect is measurable in seconds. The measured quantity is the
//! cost of a *random targeted flood* (addresses whose candidate buckets
//! intersect the target's): cheap at MNK=0, then it jumps to near the
//! brute-force scale for any MNK ≥ 1, because autonomic deletion drops the
//! record at the *end* of the random kick walk, whose final bucket is
//! near-uniform. Deterministically steering that walk is what requires the
//! `b^(MNK+1)` eviction set the paper analyses; that bound is printed
//! alongside (and is the quantity Fig. 7 plots).
//!
//! The brute-force measurement and the four MNK sweep points are five
//! sweep-engine cells evaluated together.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig7_reverse -- \
//!       [trials] [--json PATH] [--sequential | --threads N]`

use auto_cuckoo::{brute_force_expected_fills, reverse_eviction_set_size, FilterParams};
use pipo_attacks::{brute_force_eviction, reverse_engineering_attack};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};

enum Cell {
    BruteForce { trials: usize },
    Reverse { mnk: u32, trials: usize },
}

enum CellResult {
    BruteForce {
        mean_fills: f64,
        analytic: u64,
    },
    Reverse {
        mean_fills: f64,
        scaled_set: u64,
        paper_set: u64,
    },
}

fn run_cell(cell: &Cell) -> CellResult {
    match *cell {
        Cell::BruteForce { trials } => {
            let paper = FilterParams::paper_default();
            let bf = brute_force_eviction(paper, trials, 7);
            CellResult::BruteForce {
                mean_fills: bf.mean_fills,
                analytic: brute_force_expected_fills(&paper),
            }
        }
        Cell::Reverse { mnk, trials } => {
            let scaled = FilterParams::builder()
                .buckets(128)
                .entries_per_bucket(8)
                .fingerprint_bits(14)
                .max_kicks(mnk)
                .build()
                .expect("valid parameters");
            let result = reverse_engineering_attack(scaled, trials, 11);
            let paper_cfg = FilterParams::builder()
                .max_kicks(mnk)
                .build()
                .expect("valid parameters");
            CellResult::Reverse {
                mean_fills: result.mean_fills,
                scaled_set: reverse_eviction_set_size(&scaled),
                paper_set: reverse_eviction_set_size(&paper_cfg),
            }
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_filter();
    args.expect_no_trace();
    args.expect_no_store();
    let trials = args.scale_or(30) as usize;
    // Per-trial brute-force cost is geometric with mean b*l, so the sample
    // mean needs a few dozen trials to stabilise.
    let bf_trials = trials.max(50);

    let mut cells = vec![Cell::BruteForce { trials: bf_trials }];
    for mnk in 0..=3u32 {
        cells.push(Cell::Reverse { mnk, trials });
    }
    let results = run_cells(args.mode, &cells, |_, cell| run_cell(cell));

    // --- Brute force on the paper configuration ---
    println!("§VI-B brute force — paper configuration (l=1024, b=8), {bf_trials} trials");
    let CellResult::BruteForce {
        mean_fills,
        analytic,
    } = &results[0]
    else {
        unreachable!("cell 0 is the brute-force cell")
    };
    println!(
        "  measured mean fills to evict target: {mean_fills:.0} (analytic expectation {analytic})"
    );
    println!("  paper: 8192 memory accesses on average\n");

    // --- Reverse engineering sweep over MNK ---
    println!("Fig. 7 reverse-engineering attack — scaled filter (l=128, b=8), {trials} trials");
    println!(
        "{:>5} {:>18} {:>22} {:>26}",
        "MNK", "measured fills", "eviction set b^(MNK+1)", "paper-config set size"
    );
    for (mnk, result) in (0..=3u32).zip(&results[1..]) {
        let CellResult::Reverse {
            mean_fills,
            scaled_set,
            paper_set,
        } = result
        else {
            unreachable!("cells 1.. are reverse cells")
        };
        println!("{mnk:>5} {mean_fills:>18.1} {scaled_set:>22} {paper_set:>26}");
    }
    let paper_mnk4 = reverse_eviction_set_size(&FilterParams::paper_default());
    println!("\npaper config (b=8, MNK=4): eviction set b^(MNK+1) = {paper_mnk4} (paper: 32768)");
    println!("targeted attack cost exceeds brute force -> reverse engineering impractical");

    let json_cells = cells
        .iter()
        .zip(&results)
        .map(|(cell, result)| match (cell, result) {
            (
                Cell::BruteForce { trials },
                CellResult::BruteForce {
                    mean_fills,
                    analytic,
                },
            ) => Json::object()
                .field("kind", "brute_force")
                .field("trials", *trials)
                .field("mean_fills", *mean_fills)
                .field("analytic_expected_fills", *analytic),
            (
                Cell::Reverse { mnk, trials },
                CellResult::Reverse {
                    mean_fills,
                    scaled_set,
                    paper_set,
                },
            ) => Json::object()
                .field("kind", "reverse")
                .field("mnk", *mnk)
                .field("trials", *trials)
                .field("mean_fills", *mean_fills)
                .field("eviction_set_scaled", *scaled_set)
                .field("eviction_set_paper", *paper_set),
            _ => unreachable!("cell kind matches result kind"),
        })
        .collect();
    emit_json(
        args.json.as_deref(),
        &sweep_document("fig7_reverse", args.mode, Json::object(), json_cells),
    );
}
