//! Fig. 7 / §VI-B: defense-aware attacks on the Auto-Cuckoo filter.
//!
//! Paper results:
//! * brute force needs `b·l` fills in expectation (8192 for b=8, l=1024 —
//!   "the adversary needed 8192 memory accesses on average");
//! * a reverse-engineering eviction set must grow as `b^(MNK+1)` (32768 for
//!   b=8, MNK=4), making the targeted attack cost exceed brute force.
//!
//! The empirical reverse-attack sweep runs on a scaled-down filter (l=128,
//! b=8) so the effect is measurable in seconds. The measured quantity is the
//! cost of a *random targeted flood* (addresses whose candidate buckets
//! intersect the target's): cheap at MNK=0, then it jumps to near the
//! brute-force scale for any MNK ≥ 1, because autonomic deletion drops the
//! record at the *end* of the random kick walk, whose final bucket is
//! near-uniform. Deterministically steering that walk is what requires the
//! `b^(MNK+1)` eviction set the paper analyses; that bound is printed
//! alongside (and is the quantity Fig. 7 plots).
//!
//! Run: `cargo run --release -p pipo-bench --bin fig7_reverse [trials]`

use auto_cuckoo::{brute_force_expected_fills, reverse_eviction_set_size, FilterParams};
use pipo_attacks::{brute_force_eviction, reverse_engineering_attack};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    // --- Brute force on the paper configuration ---
    // Per-trial cost is geometric with mean b*l, so the sample mean needs a
    // few dozen trials to stabilise.
    let bf_trials = trials.max(50);
    let paper = FilterParams::paper_default();
    println!("§VI-B brute force — paper configuration (l=1024, b=8), {bf_trials} trials");
    let bf = brute_force_eviction(paper, bf_trials, 7);
    println!(
        "  measured mean fills to evict target: {:.0} (analytic expectation {})",
        bf.mean_fills,
        brute_force_expected_fills(&paper)
    );
    println!("  paper: 8192 memory accesses on average\n");

    // --- Reverse engineering sweep over MNK ---
    println!("Fig. 7 reverse-engineering attack — scaled filter (l=128, b=8), {trials} trials");
    println!(
        "{:>5} {:>18} {:>22} {:>26}",
        "MNK", "measured fills", "eviction set b^(MNK+1)", "paper-config set size"
    );
    for mnk in 0..=3u32 {
        let scaled = FilterParams::builder()
            .buckets(128)
            .entries_per_bucket(8)
            .fingerprint_bits(14)
            .max_kicks(mnk)
            .build()
            .expect("valid parameters");
        let result = reverse_engineering_attack(scaled, trials, 11);
        let paper_cfg = FilterParams::builder()
            .max_kicks(mnk)
            .build()
            .expect("valid parameters");
        println!(
            "{mnk:>5} {:>18.1} {:>22} {:>26}",
            result.mean_fills,
            reverse_eviction_set_size(&scaled),
            reverse_eviction_set_size(&paper_cfg)
        );
    }
    let paper_mnk4 = reverse_eviction_set_size(&paper);
    println!("\npaper config (b=8, MNK=4): eviction set b^(MNK+1) = {paper_mnk4} (paper: 32768)");
    println!("targeted attack cost exceeds brute force -> reverse engineering impractical");
}
