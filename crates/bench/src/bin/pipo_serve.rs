//! `pipo-serve`: long-running sweep service over the persistent result store.
//!
//! Server mode keeps one [`ResultStore`] and one worker pool resident and
//! answers line-JSON requests over TCP (see `pipo_bench::serve` for the
//! protocol): warm sweep cells come back in microseconds, cold cells are
//! simulated across the pool, streamed as they finish and written back to
//! the store. Client mode is a one-shot request sender so scripts (and the
//! CI smoke step) can exercise the socket without extra tooling.
//!
//! ```text
//! pipo_serve --store PATH [--addr HOST:PORT] [--workers N]
//!            [--budget BYTES] [--max-instructions N]
//! pipo_serve --connect HOST:PORT --request JSON
//! ```
//!
//! The server prints `pipo-serve listening on HOST:PORT` once the socket is
//! bound (with `--addr 127.0.0.1:0` this is how the chosen port is learned)
//! and runs until a client sends `{"op":"shutdown"}`. The client prints every
//! response line to stdout and exits 0 if all were `"ok":true`, 3 otherwise.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use pipo_bench::serve::{ServeOptions, Server};
use pipo_bench::{Json, ResultStore};

const USAGE: &str = "\
usage: pipo_serve --store PATH [--addr HOST:PORT] [--workers N]
                  [--budget BYTES] [--max-instructions N]
       pipo_serve --connect HOST:PORT --request JSON

server mode:
  --store PATH          persistent result store to serve (created on first
                        write if missing)
  --addr HOST:PORT      listen address (default 127.0.0.1:0 — a free port,
                        printed as `pipo-serve listening on ...`)
  --workers N           worker-pool threads for cold sweep cells
                        (default: one per host core)
  --budget BYTES        LRU size budget for the store (default: unbounded)
  --max-instructions N  reject job cells asking for more than N instructions
                        per core (admission control)

client mode:
  --connect HOST:PORT   send one request to a running server
  --request JSON        the request object (one line); job responses are
                        read until their `done` summary line

  --help, -h            print this help and exit";

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

struct Args {
    store: Option<String>,
    addr: Option<String>,
    workers: Option<usize>,
    budget: Option<u64>,
    max_instructions: Option<u64>,
    connect: Option<String>,
    request: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        store: None,
        addr: None,
        workers: None,
        budget: None,
        max_instructions: None,
        connect: None,
        request: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--store" => args.store = Some(value("--store")),
            "--addr" => args.addr = Some(value("--addr")),
            "--workers" => {
                let raw = value("--workers");
                match raw.parse() {
                    Ok(n) if n > 0 => args.workers = Some(n),
                    _ => usage_error(&format!(
                        "--workers expects a positive integer, got {raw:?}"
                    )),
                }
            }
            "--budget" => {
                let raw = value("--budget");
                args.budget = Some(raw.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--budget expects a byte count, got {raw:?}"))
                }));
            }
            "--max-instructions" => {
                let raw = value("--max-instructions");
                match raw.parse() {
                    Ok(n) if n > 0 => args.max_instructions = Some(n),
                    _ => usage_error(&format!(
                        "--max-instructions expects a positive integer, got {raw:?}"
                    )),
                }
            }
            "--connect" => args.connect = Some(value("--connect")),
            "--request" => args.request = Some(value("--request")),
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    match (&args.connect, &args.store) {
        (Some(_), _) => client_main(&args),
        (None, Some(_)) => server_main(&args),
        (None, None) => {
            usage_error("pick a mode: --store PATH (server) or --connect ADDR (client)")
        }
    }
}

fn server_main(args: &Args) {
    for (flag, set) in [("--request", args.request.is_some())] {
        if set {
            usage_error(&format!("{flag} is a client-mode flag (needs --connect)"));
        }
    }
    let path = args.store.as_deref().expect("server mode has --store");
    let store = match args.budget {
        Some(budget) => ResultStore::with_budget(path, budget),
        None => ResultStore::open(path),
    };
    let store = store.unwrap_or_else(|e| {
        eprintln!("error: cannot open result store {path}: {e}");
        std::process::exit(1);
    });
    let defaults = ServeOptions::default();
    let options = ServeOptions {
        addr: args.addr.clone().unwrap_or(defaults.addr),
        workers: args.workers.unwrap_or(defaults.workers),
        max_instructions: args.max_instructions.unwrap_or(defaults.max_instructions),
    };
    eprintln!(
        "store {path}: {} records recovered",
        store.telemetry().recovered_records
    );
    let server = Server::bind(store, options).unwrap_or_else(|e| {
        eprintln!("error: cannot bind listen socket: {e}");
        std::process::exit(1);
    });
    // The one line scripts wait for: the resolved listen address.
    println!("pipo-serve listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        std::process::exit(1);
    }
    eprintln!("pipo-serve: shut down, store flushed");
}

fn client_main(args: &Args) {
    for (flag, set) in [
        ("--store", args.store.is_some()),
        ("--addr", args.addr.is_some()),
        ("--workers", args.workers.is_some()),
        ("--budget", args.budget.is_some()),
        ("--max-instructions", args.max_instructions.is_some()),
    ] {
        if set {
            usage_error(&format!(
                "{flag} is a server-mode flag (conflicts with --connect)"
            ));
        }
    }
    let addr = args.connect.as_deref().expect("client mode has --connect");
    let Some(request) = args.request.as_deref() else {
        usage_error("client mode needs --request JSON");
    };
    let parsed = Json::parse(request).unwrap_or_else(|e| {
        usage_error(&format!("--request is not valid JSON: {e}"));
    });
    let is_job = parsed.get("op").and_then(Json::as_str) == Some("job");

    let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| {
        eprintln!("error: cannot clone socket: {e}");
        std::process::exit(1);
    }));
    let mut writer = stream;
    if let Err(e) = writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
    {
        eprintln!("error: cannot send request: {e}");
        std::process::exit(1);
    }

    // A job answers with one line per cell then a `done` summary; every
    // other op answers with exactly one line.
    let mut all_ok = true;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("error: server closed the connection mid-response");
                std::process::exit(1);
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: cannot read response: {e}");
                std::process::exit(1);
            }
        }
        print!("{line}");
        let doc = Json::parse(line.trim_end()).unwrap_or_else(|e| {
            eprintln!("error: unparsable response line: {e}");
            std::process::exit(1);
        });
        let ok = doc.get("ok").and_then(Json::as_bool) == Some(true);
        all_ok &= ok;
        let done = doc.get("done").and_then(Json::as_bool) == Some(true);
        if !is_job || done || !ok {
            break;
        }
    }
    std::process::exit(if all_ok { 0 } else { 3 });
}
