//! Fig. 6: cache usage patterns of the probe addresses extracted by a
//! Prime+Probe attacker, (a) on the baseline and (b) under PiPoMonitor.
//!
//! Paper result: on the baseline the attacker reads the victim's
//! square/multiply operation sequence; with PiPoMonitor deployed the
//! attacker observes accesses regardless of victim behaviour and the genuine
//! sequence cannot be obtained.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig6_attack [windows]`

use cache_sim::{Hierarchy, NullObserver, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
use pipomonitor::{MonitorConfig, PiPoMonitor};

fn main() {
    let windows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let config = AttackConfig {
        iterations: windows,
        ..AttackConfig::paper_default()
    };
    let key_bits = windows * config.bits_per_window;
    let seed = 2021;

    println!("Fig. 6(a) — baseline: attacker-extracted usage pattern");
    let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
    let victim = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), key_bits, seed);
    let mut baseline = NullObserver;
    let outcome = PrimeProbeAttack::new(config).run(&mut hierarchy, victim, &mut baseline);
    println!("{}", outcome.trace.render());
    let r = outcome.trace.recover_key();
    println!(
        "sequence recovery accuracy {:.3}, channel distinguishability {:.3}\n",
        r.accuracy, r.distinguishability
    );

    println!("Fig. 6(b) — PiPoMonitor deployed");
    let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
    let victim = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), key_bits, seed);
    let mut monitor =
        PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid configuration");
    let outcome = PrimeProbeAttack::new(config).run(&mut hierarchy, victim, &mut monitor);
    println!("{}", outcome.trace.render());
    let r = outcome.trace.recover_key();
    println!(
        "sequence recovery accuracy {:.3}, channel distinguishability {:.3}",
        r.accuracy, r.distinguishability
    );
    let stats = monitor.stats();
    println!(
        "monitor: {} captures, {} prefetches scheduled, {} suppressed",
        stats.captures, stats.prefetches_scheduled, stats.prefetches_suppressed
    );
    println!();
    println!("paper: (a) operation sequence readable; (b) attacker always observes accesses");
}
