//! Fig. 6: cache usage patterns of the probe addresses extracted by a
//! Prime+Probe attacker, (a) on the baseline and (b) under PiPoMonitor.
//!
//! Paper result: on the baseline the attacker reads the victim's
//! square/multiply operation sequence; with PiPoMonitor deployed the
//! attacker observes accesses regardless of victim behaviour and the genuine
//! sequence cannot be obtained.
//!
//! The two panels are two sweep-engine cells (baseline and defended attack
//! runs are independent simulations).
//!
//! Run: `cargo run --release -p pipo-bench --bin fig6_attack -- \
//!       [windows] [--json PATH] [--sequential | --threads N]`

use cache_sim::{Hierarchy, NullObserver, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};
use pipomonitor::{MonitorConfig, MonitorStats, PiPoMonitor};

const SEED: u64 = 2021;

struct PanelResult {
    rendered: String,
    accuracy: f64,
    distinguishability: f64,
    monitor: Option<MonitorStats>,
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_trace();
    args.expect_no_store();
    let windows = args.scale_or(100) as usize;
    let backend = args.filter_backend();
    let config = AttackConfig {
        iterations: windows,
        ..AttackConfig::paper_default()
    };
    let key_bits = windows * config.bits_per_window;

    let panels = ["baseline", "pipomonitor"];
    let results = run_cells(args.mode, &panels, |_, panel| {
        let mut hierarchy = Hierarchy::new(SystemConfig::paper_default());
        let victim =
            SquareAndMultiply::with_random_key(VictimLayout::default_layout(), key_bits, SEED);
        let attack = PrimeProbeAttack::new(config);
        let (outcome, monitor_stats) = if *panel == "baseline" {
            let mut baseline = NullObserver;
            (attack.run(&mut hierarchy, victim, &mut baseline), None)
        } else {
            let mut monitor =
                PiPoMonitor::new(MonitorConfig::paper_default().with_backend(backend))
                    .expect("valid configuration");
            let outcome = attack.run(&mut hierarchy, victim, &mut monitor);
            (outcome, Some(*monitor.stats()))
        };
        let recovery = outcome.trace.recover_key();
        PanelResult {
            rendered: outcome.trace.render(),
            accuracy: recovery.accuracy,
            distinguishability: recovery.distinguishability,
            monitor: monitor_stats,
        }
    });

    println!("Fig. 6(a) — baseline: attacker-extracted usage pattern");
    println!("{}", results[0].rendered);
    println!(
        "sequence recovery accuracy {:.3}, channel distinguishability {:.3}\n",
        results[0].accuracy, results[0].distinguishability
    );

    println!("Fig. 6(b) — PiPoMonitor deployed");
    println!("{}", results[1].rendered);
    println!(
        "sequence recovery accuracy {:.3}, channel distinguishability {:.3}",
        results[1].accuracy, results[1].distinguishability
    );
    let stats = results[1].monitor.expect("monitored panel has stats");
    println!(
        "monitor: {} captures, {} prefetches scheduled, {} suppressed",
        stats.captures, stats.prefetches_scheduled, stats.prefetches_suppressed
    );
    println!();
    println!("paper: (a) operation sequence readable; (b) attacker always observes accesses");

    let cells = panels
        .iter()
        .zip(&results)
        .map(|(panel, r)| {
            let mut cell = Json::object()
                .field("panel", *panel)
                .field("recovery_accuracy", r.accuracy)
                .field("distinguishability", r.distinguishability);
            if let Some(stats) = &r.monitor {
                cell = cell
                    .field("captures", stats.captures)
                    .field("prefetches_scheduled", stats.prefetches_scheduled)
                    .field("prefetches_suppressed", stats.prefetches_suppressed);
            }
            cell
        })
        .collect();
    let meta = Json::object()
        .field("probe_windows", windows)
        .field("filter_backend", backend.name())
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("fig6_attack", args.mode, meta, cells),
    );
}
