//! Fig. 8: performance evaluation over the ten SPEC-mix workloads with
//! different Auto-Cuckoo filter sizes.
//!
//! * Fig. 8(a): performance normalised to the unprotected baseline (higher
//!   is better). Paper: +0.1 % on average for l=1024, b=8; mix1 improves the
//!   most (+0.3 %); several mixes unchanged; all sizes within ±0.2 %.
//! * Fig. 8(b): false positives (captured Ping-Pong lines) per million
//!   instructions. Paper: mix1 ≈ 97 and mix7 ≈ 71 are the largest;
//!   mix3/mix6 below 20.
//!
//! The 5 sizes × 10 mixes grid runs through the sweep engine: the fifty
//! monitored cells fan across host threads and the ten per-mix baselines are
//! memoized (they do not depend on filter geometry), instead of being
//! re-simulated for every size as the old sequential loop did.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig8_performance -- \
//!       [instructions_per_core] [--json PATH] [--sequential | --threads N] \
//!       [--store PATH]`
//!
//! With `--store PATH` the grid is answered from (and recorded into) the
//! persistent result store: a repeat run with identical parameters serves
//! every cell warm and produces a byte-identical `--json` document.

use pipo_bench::{
    emit_json, fig8_filter_sizes, filter_with_size, finish_store, sweep_document, HarnessArgs,
    Json, MixCell, MixRun, Sweep,
};
use pipo_workloads::all_mixes;
use pipomonitor::MonitorConfig;

const SEED: u64 = 42;

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_trace();
    let instructions = args.instructions();
    let backend = args.filter_backend();
    let sizes = fig8_filter_sizes();
    let mixes = all_mixes();
    println!(
        "Fig. 8 — {} instructions per core, filter sizes {:?}, {backend} backend",
        instructions, sizes
    );

    let mut sweep = Sweep::new();
    for &(l, b) in &sizes {
        let config = MonitorConfig::paper_default()
            .with_filter(filter_with_size(l, b))
            .with_backend(backend);
        for mix in &mixes {
            sweep.push(MixCell::new(
                format!("{l}x{b}/{}", mix.name),
                *mix,
                config,
                instructions,
                SEED,
            ));
        }
    }
    let sweep = sweep.with_shards(args.shards_or_sequential());
    let mut store = args.open_store();
    let started = std::time::Instant::now();
    let (runs, outcome) = sweep.run_with_store(args.mode, store.as_mut());
    finish_store(store.as_mut(), outcome, started.elapsed());
    // results[size][mix], matching the cell grid above.
    let results: Vec<&[MixRun]> = runs.chunks(mixes.len()).collect();

    println!("\nFig. 8(a) — normalized performance (baseline = 1.0000, higher is better)");
    print!("{:>7}", "mix");
    for &(l, b) in &sizes {
        print!("  {l:>5}x{b:<2}");
    }
    println!();
    for (m, mix) in mixes.iter().enumerate() {
        print!("{:>7}", mix.name);
        for runs in &results {
            print!("  {:>8.4}", runs[m].normalized_performance());
        }
        println!();
    }
    print!("{:>7}", "mean");
    for runs in &results {
        let mean: f64 =
            runs.iter().map(MixRun::normalized_performance).sum::<f64>() / runs.len() as f64;
        print!("  {mean:>8.4}");
    }
    println!();

    println!("\nFig. 8(b) — false positives per million instructions");
    print!("{:>7}", "mix");
    for &(l, b) in &sizes {
        print!("  {l:>5}x{b:<2}");
    }
    println!();
    for (m, mix) in mixes.iter().enumerate() {
        print!("{:>7}", mix.name);
        for runs in &results {
            print!("  {:>8.1}", runs[m].false_positives_per_mi());
        }
        println!();
    }

    println!("\npaper: avg +0.1% for 1024x8; mix1 up to +0.3%; size impact < 0.2%");
    println!("paper FP/Mi at 1024x8: mix1 ~97, mix7 ~71, mix3/mix6 < 20");

    let cells = sweep
        .cells()
        .iter()
        .zip(&runs)
        .zip(
            sizes
                .iter()
                .flat_map(|&size| mixes.iter().map(move |_| size)),
        )
        .map(|((cell, run), (l, b))| {
            run.to_json()
                .field("label", cell.label.as_str())
                .field("l", l)
                .field("b", b)
        })
        .collect();
    let meta = Json::object()
        .field("instructions_per_core", instructions)
        .field("filter_backend", backend.name())
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("fig8_performance", args.mode, meta, cells),
    );
}
