//! Fig. 8: performance evaluation over the ten SPEC-mix workloads with
//! different Auto-Cuckoo filter sizes.
//!
//! * Fig. 8(a): performance normalised to the unprotected baseline (higher
//!   is better). Paper: +0.1 % on average for l=1024, b=8; mix1 improves the
//!   most (+0.3 %); several mixes unchanged; all sizes within ±0.2 %.
//! * Fig. 8(b): false positives (captured Ping-Pong lines) per million
//!   instructions. Paper: mix1 ≈ 97 and mix7 ≈ 71 are the largest;
//!   mix3/mix6 below 20.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig8_performance [instructions_per_core]`

use auto_cuckoo::FilterParams;
use pipo_bench::{fig8_filter_sizes, filter_with_size, instructions_from_args, run_mix_monitored};
use pipo_workloads::all_mixes;
use pipomonitor::MonitorConfig;

fn main() {
    let instructions = instructions_from_args();
    let sizes = fig8_filter_sizes();
    let mixes = all_mixes();
    println!(
        "Fig. 8 — {} instructions per core, filter sizes {:?}",
        instructions, sizes
    );

    // results[size][mix]
    let mut results = Vec::new();
    for &(l, b) in &sizes {
        let filter: FilterParams = filter_with_size(l, b);
        let config = MonitorConfig::paper_default().with_filter(filter);
        let runs: Vec<_> = mixes
            .iter()
            .map(|mix| run_mix_monitored(mix, config, instructions, 42))
            .collect();
        results.push(runs);
    }

    println!("\nFig. 8(a) — normalized performance (baseline = 1.0000, higher is better)");
    print!("{:>7}", "mix");
    for &(l, b) in &sizes {
        print!("  {l:>5}x{b:<2}");
    }
    println!();
    for (m, mix) in mixes.iter().enumerate() {
        print!("{:>7}", mix.name);
        for runs in &results {
            print!("  {:>8.4}", runs[m].normalized_performance());
        }
        println!();
    }
    print!("{:>7}", "mean");
    for runs in &results {
        let mean: f64 = runs.iter().map(MixRunExt::np).sum::<f64>() / runs.len() as f64;
        print!("  {mean:>8.4}");
    }
    println!();

    println!("\nFig. 8(b) — false positives per million instructions");
    print!("{:>7}", "mix");
    for &(l, b) in &sizes {
        print!("  {l:>5}x{b:<2}");
    }
    println!();
    for (m, mix) in mixes.iter().enumerate() {
        print!("{:>7}", mix.name);
        for runs in &results {
            print!("  {:>8.1}", runs[m].false_positives_per_mi());
        }
        println!();
    }

    println!("\npaper: avg +0.1% for 1024x8; mix1 up to +0.3%; size impact < 0.2%");
    println!("paper FP/Mi at 1024x8: mix1 ~97, mix7 ~71, mix3/mix6 < 20");
}

trait MixRunExt {
    fn np(&self) -> f64;
}

impl MixRunExt for pipo_bench::MixRun {
    fn np(&self) -> f64 {
        self.normalized_performance()
    }
}
