//! Fig. 3: occupancy of the Auto-Cuckoo filter as insertions accumulate,
//! for different MNK values.
//!
//! Paper result: occupancy is insensitive to MNK; curves for all MNK values
//! overlap, are identical below ~9 K insertions, and reach 100 % by ~12.5 K
//! insertions for the l=1024, b=8 configuration — even with MNK = 2.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig3_occupancy`

use auto_cuckoo::{AutoCuckooFilter, FilterParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mnks = [0u32, 1, 2, 4, 8];
    let checkpoints: Vec<u64> = (1..=16).map(|k| k * 1000).collect();

    println!("Fig. 3 — Auto-Cuckoo filter occupancy vs insertions (l=1024, b=8, f=12)");
    print!("{:>12}", "insertions");
    for mnk in mnks {
        print!("  MNK={mnk:<4}");
    }
    println!();

    let mut curves: Vec<Vec<f64>> = Vec::new();
    for mnk in mnks {
        let params = FilterParams::builder()
            .max_kicks(mnk)
            .build()
            .expect("valid parameters");
        let mut filter = AutoCuckooFilter::new(params).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(3);
        let mut curve = Vec::new();
        let mut inserted = 0u64;
        for &cp in &checkpoints {
            while inserted < cp {
                // Random addresses from the whole memory address space.
                filter.query(rng.gen::<u64>() | 1);
                inserted += 1;
            }
            curve.push(filter.occupancy());
        }
        curves.push(curve);
    }

    for (row, cp) in checkpoints.iter().enumerate() {
        print!("{cp:>12}");
        for curve in &curves {
            print!("  {:>7.4}", curve[row]);
        }
        println!();
    }

    // Shape summary, mirroring the paper's observations.
    let at_12_5k = {
        let params = FilterParams::builder()
            .max_kicks(2)
            .build()
            .expect("valid parameters");
        let mut filter = AutoCuckooFilter::new(params).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..12_500 {
            filter.query(rng.gen::<u64>() | 1);
        }
        filter.occupancy()
    };
    println!();
    println!("occupancy at 12.5K insertions with MNK=2: {at_12_5k:.4} (paper: 1.00)");
}
