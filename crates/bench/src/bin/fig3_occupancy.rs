//! Fig. 3: occupancy of the Auto-Cuckoo filter as insertions accumulate,
//! for different MNK values.
//!
//! Paper result: occupancy is insensitive to MNK; curves for all MNK values
//! overlap, are identical below ~9 K insertions, and reach 100 % by ~12.5 K
//! insertions for the l=1024, b=8 configuration — even with MNK = 2.
//!
//! Each MNK curve is one sweep-engine cell (plus one cell for the paper's
//! 12.5 K spot check), so the curves fill in parallel.
//!
//! Run: `cargo run --release -p pipo-bench --bin fig3_occupancy -- \
//!       [--json PATH] [--sequential | --threads N]`

use auto_cuckoo::{AutoCuckooFilter, FilterParams};
use pipo_bench::{emit_json, run_cells, sweep_document, HarnessArgs, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MNKS: [u32; 5] = [0, 1, 2, 4, 8];
const SEED: u64 = 3;

/// Filter occupancy after each checkpoint's worth of random insertions.
fn occupancy_curve(mnk: u32, checkpoints: &[u64]) -> Vec<f64> {
    let params = FilterParams::builder()
        .max_kicks(mnk)
        .build()
        .expect("valid parameters");
    let mut filter = AutoCuckooFilter::new(params).expect("valid parameters");
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut curve = Vec::with_capacity(checkpoints.len());
    let mut inserted = 0u64;
    for &cp in checkpoints {
        while inserted < cp {
            // Random addresses from the whole memory address space.
            filter.query(rng.gen::<u64>() | 1);
            inserted += 1;
        }
        curve.push(filter.occupancy());
    }
    curve
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_shards();
    args.expect_no_filter();
    args.expect_no_scale();
    args.expect_no_trace();
    args.expect_no_store();
    let checkpoints: Vec<u64> = (1..=16).map(|k| k * 1000).collect();

    println!("Fig. 3 — Auto-Cuckoo filter occupancy vs insertions (l=1024, b=8, f=12)");
    print!("{:>12}", "insertions");
    for mnk in MNKS {
        print!("  MNK={mnk:<4}");
    }
    println!();

    // One cell per MNK curve, plus the paper's 12.5 K spot check at MNK=2.
    let mut cells: Vec<(u32, Vec<u64>)> =
        MNKS.iter().map(|&mnk| (mnk, checkpoints.clone())).collect();
    cells.push((2, vec![12_500]));
    let curves = run_cells(args.mode, &cells, |_, (mnk, cps)| {
        occupancy_curve(*mnk, cps)
    });

    for (row, cp) in checkpoints.iter().enumerate() {
        print!("{cp:>12}");
        for curve in &curves[..MNKS.len()] {
            print!("  {:>7.4}", curve[row]);
        }
        println!();
    }

    let at_12_5k = curves[MNKS.len()][0];
    println!();
    println!("occupancy at 12.5K insertions with MNK=2: {at_12_5k:.4} (paper: 1.00)");

    let json_cells = cells
        .iter()
        .zip(&curves)
        .map(|((mnk, cps), curve)| {
            Json::object()
                .field("mnk", *mnk)
                .field(
                    "insertions",
                    cps.iter().map(|&cp| Json::UInt(cp)).collect::<Vec<_>>(),
                )
                .field(
                    "occupancy",
                    curve.iter().map(|&o| Json::Float(o)).collect::<Vec<_>>(),
                )
        })
        .collect();
    let meta = Json::object().field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("fig3_occupancy", args.mode, meta, json_cells),
    );
}
