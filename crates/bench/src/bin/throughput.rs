//! Simulator throughput harness: how many simulated memory accesses per
//! wall-clock second `System::run` sustains.
//!
//! Measured configurations:
//!
//! * `baseline` / `directory_monitor` / `pipomonitor` — the paper's 4-core
//!   Table II machine running mix7, with no observer, the directory-table
//!   baseline, and PiPoMonitor respectively.
//! * `pipomonitor_8c` / `pipomonitor_16c` / `pipomonitor_32c` — the same
//!   monitored machine scaled to more cores (mix7 benchmarks assigned
//!   round-robin, each core with its own disjoint address region). These are
//!   the scaling configurations the event-driven scheduler targets: the old
//!   linear min-scan charged O(cores) per simulated access, the binary-heap
//!   scheduler O(log cores) amortized.
//!
//! This is the perf trajectory anchor for the repo: every hot-path change is
//! judged against the numbers this binary emits. Results are written as JSON
//! (default `BENCH_cache_sim.json`) so CI and future PRs can diff them.
//!
//! Usage:
//!
//! ```text
//! throughput [total_instructions] [--label NAME] [--out PATH] [--compare PATH]
//!            [--samples N] [--shards N] [--help]
//! ```
//!
//! `--json PATH` is accepted as an alias of `--out PATH`, matching the flag
//! every figure harness shares.
//!
//! `--shards N` additionally measures *single-system* scaling: the 16- and
//! 32-core unmonitored machines are each run sequentially and epoch-parallel
//! with `N` shards (`System::run_sharded`, bit-identical results), and a
//! `single_system_sharding` section records the speedups plus the epoch
//! telemetry (committed vs rolled-back epochs) and the host core count —
//! sharding cannot beat sequential on a single-core host, so record the
//! context with the number.
//!
//! Each configuration is simulated `N` times (default 3, fresh system each
//! time) and the median elapsed time is reported, which tames scheduler and
//! frequency-scaling noise on shared machines. `--compare` reads a
//! previously emitted JSON file and appends a speedup section (this run vs.
//! the old file), which is how a PR records its before/after delta.

use std::time::Instant;

use cache_sim::{
    Access, AccessSource, Addr, CoreId, NullObserver, ShardSpec, SimReport, System, SystemConfig,
    TrafficObserver,
};
use pipo_bench::Json;
use pipo_workloads::{mixes::mix_by_name, BenchProfile, ProfileSource};
use pipomonitor::{DirectoryMonitor, DirectoryMonitorConfig, MonitorConfig, PiPoMonitor};

const DEFAULT_INSTRUCTIONS: u64 = 2_000_000;
const MIX: &str = "mix7";
const SEED: u64 = 42;

/// Monitored 4-core mix7 throughput *before* the branchless fingerprint
/// probe kernel and batched access generation landed: this harness's
/// `pipomonitor` configuration built from the pre-kernel HEAD, 20M
/// instructions, 5 samples per run, median of three runs interleaved
/// back-to-back with the post-kernel binary on the same host (the host
/// shows ±15% drift between non-adjacent runs, so only interleaved
/// before/after pairs are comparable). The `probe_kernel` section of the
/// emitted JSON reports this pair as the recorded speedup and the current
/// run's rate alongside it.
const PRE_KERNEL_PIPOMONITOR_ACCESSES_PER_SEC: f64 = 15_093_837.6;

/// The *after* half of the same interleaved measurement: the post-kernel
/// build's `pipomonitor` rate, identical protocol, same session as the
/// before runs. `after / before` = 1.51 is the recorded kernel speedup;
/// comparing a fresh run against the recorded before is only indicative
/// (cross-session host drift exceeds the effect of a small regression).
const POST_KERNEL_PIPOMONITOR_ACCESSES_PER_SEC: f64 = 22_748_314.8;

const USAGE: &str = "\
usage: throughput [total_instructions] [--label NAME] [--out PATH] [--compare PATH]
                  [--samples N] [--shards N] [--help]

  total_instructions  total simulated instructions, split across cores
                      (default 2000000)
  --label NAME        label stored in the emitted JSON (default \"current\")
  --out PATH          output JSON path (default BENCH_cache_sim.json);
                      --json PATH is an alias
  --compare PATH      read a previous JSON file and append a speedup section
  --samples N         samples per configuration, median reported (default 3)
  --shards N          also measure 16/32-core single-system scaling with
                      N-shard epoch-parallel System::run_sharded
  --help, -h          print this help and exit";

struct Measurement {
    name: String,
    cores: usize,
    accesses: u64,
    instructions: u64,
    makespan: u64,
    elapsed_s: f64,
    shards: usize,
    telemetry: Option<cache_sim::EpochTelemetry>,
}

impl Measurement {
    fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.elapsed_s
    }
}

fn total_accesses(report: &SimReport) -> u64 {
    report.stats.per_core.iter().map(|c| c.l1.accesses()).sum()
}

/// Which workload the sharding measurements replay.
#[derive(Clone, Copy, PartialEq)]
enum Workload {
    /// mix7 round-robin — includes the conflict-thrash tier, where all
    /// cores deliberately collide in shared LLC sets. Cross-shard
    /// back-invalidations are real communication, so epochs serialize.
    Mix7,
    /// A cache-friendly scaling workload (hot-set + churn, no conflict
    /// thrash, no streaming): the regime where compute cores rarely couple
    /// through the LLC and epoch-parallelism can commit.
    HotSet,
}

/// The cache-friendly profile of [`Workload::HotSet`]: 48 KB hot set,
/// 384 KB churn set (1.5× L2, periodic LLC refetches whose victims are
/// demoted before eviction), no conflict thrash, and — critically — no
/// stream tier: the probabilities are exact dyadic rationals summing to
/// 1.0, so the footprint is bounded and the ways-scaled LLC never evicts
/// after warmup. LLC evictions are the one event the epoch protocol cannot
/// speculate across shards (a victim's back-invalidation may land in
/// another shard), so an eviction-free steady state is what lets epochs
/// commit instead of rolling back.
const HOTSET_PROFILE: BenchProfile = BenchProfile {
    name: "hotset_scaling",
    hot_lines: 768,
    churn_lines: 6144,
    thrash_lines: 17,      // tier unused: p_thrash = 0
    stream_lines: 1 << 22, // tier unused: probabilities sum to 1
    p_hot: 0.9375,
    p_churn: 0.0625,
    p_thrash: 0.0,
    write_fraction: 0.3,
    think_mean: 6,
};

/// Runs one configuration `samples` times (fresh system each time) and
/// reports the median elapsed time. `total_instructions` is split evenly
/// across cores so every configuration simulates comparable total work.
/// `shards > 1` drives the system through the epoch-parallel
/// `System::run_sharded` (bit-identical results). `llc_scale` multiplies
/// the LLC way count (scaling machines keep LLC proportional to cores).
#[allow(clippy::too_many_arguments)]
fn run_config<O: TrafficObserver + Clone>(
    name: impl Into<String>,
    cores: usize,
    observer: impl Fn() -> O,
    total_instructions: u64,
    samples: usize,
    shards: usize,
    workload: Workload,
    llc_scale: usize,
) -> Measurement {
    let mix = mix_by_name(MIX).expect("mix exists");
    let mut elapsed = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let mut config = SystemConfig::paper_default();
        config.cores = cores;
        // Scale LLC capacity by adding ways, not sets: per-core workload
        // regions are all congruent mod the set count (region bases are
        // large powers of two), so every core's tiers alias into the same
        // low sets — extra sets would sit empty while those sets still
        // thrash. Extra ways absorb the aliased lines directly.
        config.l3.ways *= llc_scale;
        let spec = ShardSpec::for_config(&config, shards);
        let mut system = System::new(config, observer());
        for core in 0..cores {
            let bench = match workload {
                Workload::Mix7 => mix.benchmarks[core % mix.benchmarks.len()],
                Workload::HotSet => &HOTSET_PROFILE,
            };
            system.set_source(
                CoreId(core),
                Box::new(ProfileSource::new(bench, core, SEED)),
            );
        }
        let start = Instant::now();
        let report = if shards > 1 {
            system.run_sharded(total_instructions / cores as u64, spec)
        } else {
            system.run(total_instructions / cores as u64)
        };
        elapsed.push(start.elapsed().as_secs_f64());
        last = Some((report, system.epoch_telemetry().copied()));
    }
    elapsed.sort_by(f64::total_cmp);
    let (report, telemetry) = last.expect("at least one sample");
    Measurement {
        name: name.into(),
        cores,
        accesses: total_accesses(&report),
        instructions: report.total_instructions(),
        makespan: report.makespan(),
        elapsed_s: elapsed[elapsed.len() / 2],
        shards,
        telemetry,
    }
}

fn pipo() -> PiPoMonitor {
    PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid config")
}

/// Prices access *generation* standalone: drains the four mix7
/// `ProfileSource`s (same benchmarks, cores, and seed as the simulated
/// configurations) through the batched `AccessSource::refill` path with no
/// simulator attached, until `accesses` accesses have been drawn. Returns
/// the median ns per generated access.
fn generation_ns_per_access(accesses: u64, samples: usize) -> f64 {
    let mix = mix_by_name(MIX).expect("mix exists");
    let mut per_access_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut sources: Vec<ProfileSource> = (0..4)
            .map(|core| ProfileSource::new(mix.benchmarks[core % mix.benchmarks.len()], core, SEED))
            .collect();
        let mut buf: Vec<Access> = Vec::with_capacity(64);
        let mut drawn = 0u64;
        let mut sink = 0u64;
        let start = Instant::now();
        'outer: loop {
            for source in &mut sources {
                buf.clear();
                source.refill(&mut buf, 64);
                for access in &buf {
                    sink ^= access.addr.0;
                }
                drawn += buf.len() as u64;
                if drawn >= accesses {
                    break 'outer;
                }
            }
        }
        std::hint::black_box(sink);
        per_access_ns.push(start.elapsed().as_secs_f64() / drawn as f64 * 1e9);
    }
    per_access_ns.sort_by(f64::total_cmp);
    per_access_ns[per_access_ns.len() / 2]
}

/// Prices the event-heap *scheduler* (plus the L1-hit fast path): the
/// 4-core machine run with constant per-core addresses, so every access
/// hits L1 and the LLC probe kernel never runs, while generation is a
/// closure returning a constant. Returns the median ns per access.
fn scheduler_ns_per_access(total_instructions: u64, samples: usize) -> f64 {
    let mut per_access_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut system = System::new(SystemConfig::paper_default(), NullObserver);
        for core in 0..4usize {
            system.set_source(
                CoreId(core),
                Box::new(move || Some(Access::read(Addr(core as u64 * 64)).after(3))),
            );
        }
        let start = Instant::now();
        let report = system.run(total_instructions / 4);
        let elapsed = start.elapsed().as_secs_f64();
        per_access_ns.push(elapsed / total_accesses(&report) as f64 * 1e9);
    }
    per_access_ns.sort_by(f64::total_cmp);
    per_access_ns[per_access_ns.len() / 2]
}

/// Extracts `"name": ..., "accesses_per_sec": N` pairs from a previously
/// emitted JSON file without a JSON parser (the schema is our own).
fn parse_old_rates(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + 9..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(rpos) = rest.find("\"accesses_per_sec\": ") else {
            break;
        };
        rest = &rest[rpos + 20..];
        let num_end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(rate) = rest[..num_end].parse::<f64>() {
            out.push((name, rate));
        }
    }
    out
}

/// Reports a CLI error the same way the shared `HarnessArgs` parser does —
/// an `error:` line naming the problem, the usage text, exit status 2 —
/// so scripts can treat every harness binary uniformly
/// (`crates/bench/tests/cli.rs` pins the contract).
fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let mut instructions = DEFAULT_INSTRUCTIONS;
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_cache_sim.json");
    let mut compare_path: Option<String> = None;
    let mut samples = 3usize;
    let mut shards: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => {
                label = it
                    .next()
                    .unwrap_or_else(|| usage_error("--label needs a value"))
                    .clone();
            }
            "--out" | "--json" => {
                out_path = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a file path"))
                    .clone();
            }
            "--compare" => {
                compare_path = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--compare needs a file path"))
                        .clone(),
                );
            }
            "--samples" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| usage_error("--samples needs a sample count"));
                samples = raw.parse().unwrap_or(0);
                if samples == 0 {
                    usage_error(&format!(
                        "--samples expects a positive integer, got {raw:?}"
                    ));
                }
            }
            "--shards" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| usage_error("--shards needs a shard count"));
                let n: usize = raw.parse().unwrap_or(0);
                if n == 0 {
                    usage_error(&format!("--shards expects a positive integer, got {raw:?}"));
                }
                shards = Some(n);
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag {flag:?}")),
            other => {
                instructions = other.parse().unwrap_or_else(|_| {
                    usage_error(&format!(
                        "unparsable instruction count {other:?} (expected an unsigned integer)"
                    ))
                });
            }
        }
    }

    let mix7 = Workload::Mix7;
    let mut runs = vec![
        run_config(
            "baseline",
            4,
            || NullObserver,
            instructions,
            samples,
            1,
            mix7,
            1,
        ),
        run_config(
            "directory_monitor",
            4,
            || DirectoryMonitor::new(DirectoryMonitorConfig::paper_comparable()),
            instructions,
            samples,
            1,
            mix7,
            1,
        ),
        run_config("pipomonitor", 4, pipo, instructions, samples, 1, mix7, 1),
        run_config("pipomonitor_8c", 8, pipo, instructions, samples, 1, mix7, 1),
        run_config(
            "pipomonitor_16c",
            16,
            pipo,
            instructions,
            samples,
            1,
            mix7,
            1,
        ),
        run_config(
            "pipomonitor_32c",
            32,
            pipo,
            instructions,
            samples,
            1,
            mix7,
            1,
        ),
    ];

    // Single-system scaling: the same machine driven sequentially and
    // epoch-parallel, on the unmonitored baseline (the monitor's prefetch
    // traffic gates windows onto the sequential engine anyway). The LLC is
    // scaled with the core count (cores/4 × 4 MB) as on real scaled parts;
    // both the thrash-coupled mix7 and the cache-friendly hot-set workload
    // are measured — the first serializes by design, the second commits.
    let mut sharding_pairs: Vec<(usize, usize)> = Vec::new(); // (seq idx, sharded idx)
    if let Some(shards) = shards {
        for cores in [16usize, 32] {
            for workload in [Workload::Mix7, Workload::HotSet] {
                let wname = match workload {
                    Workload::Mix7 => "mix7",
                    Workload::HotSet => "hotset",
                };
                let llc_scale = cores / 4;
                let seq = run_config(
                    format!("{wname}_{cores}c_sequential"),
                    cores,
                    || NullObserver,
                    instructions,
                    samples,
                    1,
                    workload,
                    llc_scale,
                );
                let sharded = run_config(
                    format!("{wname}_{cores}c_shard{shards}"),
                    cores,
                    || NullObserver,
                    instructions,
                    samples,
                    shards,
                    workload,
                    llc_scale,
                );
                runs.push(seq);
                runs.push(sharded);
                sharding_pairs.push((runs.len() - 2, runs.len() - 1));
            }
        }
    }

    // Decimal places match the old hand-rolled emitter: 6 for seconds, 1 for
    // rates, 2 for speedup ratios.
    let round = |x: f64, places: i32| (x * 10f64.powi(places)).round() / 10f64.powi(places);
    let configs: Vec<Json> = runs
        .iter()
        .map(|m| {
            let mut obj = Json::object()
                .field("name", m.name.as_str())
                .field("cores", m.cores)
                .field("accesses", m.accesses)
                .field("instructions", m.instructions)
                .field("makespan_cycles", m.makespan)
                .field("elapsed_s", round(m.elapsed_s, 6))
                .field("accesses_per_sec", round(m.accesses_per_sec(), 1))
                .field("ns_per_access", round(1e9 / m.accesses_per_sec(), 1));
            if m.shards > 1 {
                obj = obj.field("shards", m.shards);
            }
            if let Some(t) = m.telemetry {
                obj = obj.field(
                    "epochs",
                    Json::object()
                        .field("parallel", t.parallel_epochs)
                        .field("committed", t.committed_epochs)
                        .field("rollbacks", t.rollbacks)
                        .field("sequential_windows", t.sequential_windows)
                        .field("llc_ops_replayed", t.llc_ops_replayed)
                        // Where the sharded wall-clock went: the parallel
                        // speculate/verify phases, the serial mutation-only
                        // commit, and sequential window re-execution. The
                        // verify/commit split exists to shrink the serial
                        // share, so record it explicitly.
                        .field(
                            "phase_ns",
                            Json::object()
                                .field("speculate", t.speculate_ns)
                                .field("verify", t.verify_ns)
                                .field("commit", t.commit_ns)
                                .field("sequential", t.sequential_ns),
                        )
                        .field("serial_commit_share", round(t.serial_commit_share(), 4)),
                );
            }
            obj
        })
        .collect();
    let mut doc = Json::object()
        .field("bench", "cache_sim_throughput")
        .field("label", label.as_str())
        .field("workload", MIX)
        .field("seed", SEED)
        .field("total_instructions", instructions)
        .field("configs", configs);

    // ns/access budget: where the monitored wall-clock goes, split into
    // generation / scheduler / probe / observer. Two phases are priced
    // directly (generation standalone, scheduler via an L1-hit-only run);
    // the other two fall out by subtraction from the measured baseline and
    // monitored rates. The split is approximate — each subtraction inherits
    // the noise of both operands — but it localizes regressions: a probe
    // regression moves `probe` without moving `generation` or `scheduler`.
    let rate = |name: &str| {
        runs.iter()
            .find(|m| m.name == name)
            .expect("config measured")
            .accesses_per_sec()
    };
    let gen_ns = generation_ns_per_access(runs[0].accesses, samples);
    let sched_ns = scheduler_ns_per_access(instructions, samples);
    let baseline_ns = 1e9 / rate("baseline");
    let monitored_ns = 1e9 / rate("pipomonitor");
    let probe_ns = (baseline_ns - gen_ns - sched_ns).max(0.0);
    let observer_ns = (monitored_ns - baseline_ns).max(0.0);
    doc = doc.field(
        "ns_per_access_budget",
        Json::object()
            .field("monitored_ns_per_access", round(monitored_ns, 1))
            .field("baseline_ns_per_access", round(baseline_ns, 1))
            .field(
                "phases",
                Json::object()
                    .field("generation", round(gen_ns, 1))
                    .field("scheduler", round(sched_ns, 1))
                    .field("probe", round(probe_ns, 1))
                    .field("observer", round(observer_ns, 1)),
            )
            .field(
                "method",
                "generation: mix7 ProfileSources drained standalone through the \
                 batched refill path; scheduler: L1-hit-only 4-core run (includes \
                 the L1 fast path); probe = baseline - generation - scheduler; \
                 observer = pipomonitor - baseline",
            ),
    );

    // Perf anchor for the branchless probe kernel + batched generation PR:
    // monitored 4-core throughput against the recorded pre-kernel rate.
    doc = doc.field(
        "probe_kernel",
        Json::object()
            .field(
                "before_accesses_per_sec",
                PRE_KERNEL_PIPOMONITOR_ACCESSES_PER_SEC,
            )
            .field(
                "after_accesses_per_sec",
                POST_KERNEL_PIPOMONITOR_ACCESSES_PER_SEC,
            )
            .field(
                "speedup",
                round(
                    POST_KERNEL_PIPOMONITOR_ACCESSES_PER_SEC
                        / PRE_KERNEL_PIPOMONITOR_ACCESSES_PER_SEC,
                    2,
                ),
            )
            .field("target_speedup", 1.5)
            .field("run_accesses_per_sec", round(rate("pipomonitor"), 1))
            .field(
                "note",
                "pipomonitor throughput before vs after the SWAR fingerprint probe \
                 kernel + batched access generation. Both sides of the recorded \
                 pair come from one interleaved session (pre-kernel and post-kernel \
                 binaries alternated on the same host; 20M instructions, 5 samples \
                 per run, median of three runs each) because the host drifts ±15% \
                 between non-adjacent runs. run_accesses_per_sec is this run's \
                 live rate, comparable to the pair only within that noise band.",
            ),
    );

    if !sharding_pairs.is_empty() {
        let host_threads =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut scaling = Vec::new();
        for &(seq, sharded) in &sharding_pairs {
            let mut entry = Json::object()
                .field(
                    "workload",
                    runs[seq].name.split('_').next().unwrap_or("unknown"),
                )
                .field("cores", runs[seq].cores)
                .field("shards", runs[sharded].shards)
                .field(
                    "sequential_accesses_per_sec",
                    round(runs[seq].accesses_per_sec(), 1),
                )
                .field(
                    "sharded_accesses_per_sec",
                    round(runs[sharded].accesses_per_sec(), 1),
                )
                .field(
                    "speedup",
                    round(
                        runs[sharded].accesses_per_sec() / runs[seq].accesses_per_sec(),
                        2,
                    ),
                );
            if let Some(t) = runs[sharded].telemetry {
                entry = entry
                    .field(
                        "commit_rate",
                        round(
                            t.committed_epochs as f64 / (t.parallel_epochs.max(1)) as f64,
                            2,
                        ),
                    )
                    .field("serial_commit_share", round(t.serial_commit_share(), 4));
            }
            scaling.push(entry);
        }
        doc = doc.field(
            "single_system_sharding",
            Json::object()
                .field("host_threads", host_threads)
                .field("note", "sharded vs sequential System::run on one simulated machine; speedup requires host_threads > 1 (results bit-identical regardless)")
                .field("scaling", scaling),
        );
    }

    if let Some(path) = compare_path {
        let old = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read --compare file {path}: {e}"));
        let old_rates = parse_old_rates(&old);
        let mut old_obj = Json::object();
        let mut speedup_obj = Json::object();
        for m in &runs {
            if let Some((_, old_rate)) = old_rates.iter().find(|(n, _)| n == &m.name) {
                old_obj = old_obj.field(m.name.as_str(), round(*old_rate, 1));
                speedup_obj =
                    speedup_obj.field(m.name.as_str(), round(m.accesses_per_sec() / old_rate, 2));
            }
        }
        doc = doc.field(
            "comparison",
            Json::object()
                .field("against", path.as_str())
                .field("old_accesses_per_sec", old_obj)
                .field("speedup", speedup_obj),
        );
    }
    let json = doc.to_pretty();

    pipo_bench::write_atomic(&out_path, json.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for m in &runs {
        eprintln!(
            "{:<20} {:>12.0} accesses/sec  ({} accesses in {:.3}s)",
            m.name,
            m.accesses_per_sec(),
            m.accesses,
            m.elapsed_s,
        );
    }
}
