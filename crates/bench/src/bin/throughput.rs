//! Simulator throughput harness: how many simulated memory accesses per
//! wall-clock second `System::run` sustains.
//!
//! Measured configurations:
//!
//! * `baseline` / `directory_monitor` / `pipomonitor` — the paper's 4-core
//!   Table II machine running mix7, with no observer, the directory-table
//!   baseline, and PiPoMonitor respectively.
//! * `pipomonitor_8c` / `pipomonitor_16c` / `pipomonitor_32c` — the same
//!   monitored machine scaled to more cores (mix7 benchmarks assigned
//!   round-robin, each core with its own disjoint address region). These are
//!   the scaling configurations the event-driven scheduler targets: the old
//!   linear min-scan charged O(cores) per simulated access, the binary-heap
//!   scheduler O(log cores) amortized.
//!
//! This is the perf trajectory anchor for the repo: every hot-path change is
//! judged against the numbers this binary emits. Results are written as JSON
//! (default `BENCH_cache_sim.json`) so CI and future PRs can diff them.
//!
//! Usage:
//!
//! ```text
//! throughput [total_instructions] [--label NAME] [--out PATH] [--compare PATH] [--samples N]
//! ```
//!
//! `--json PATH` is accepted as an alias of `--out PATH`, matching the flag
//! every figure harness shares.
//!
//! Each configuration is simulated `N` times (default 3, fresh system each
//! time) and the median elapsed time is reported, which tames scheduler and
//! frequency-scaling noise on shared machines. `--compare` reads a
//! previously emitted JSON file and appends a speedup section (this run vs.
//! the old file), which is how a PR records its before/after delta.

use std::time::Instant;

use cache_sim::{CoreId, NullObserver, SimReport, System, SystemConfig, TrafficObserver};
use pipo_bench::Json;
use pipo_workloads::{mixes::mix_by_name, ProfileSource};
use pipomonitor::{DirectoryMonitor, DirectoryMonitorConfig, MonitorConfig, PiPoMonitor};

const DEFAULT_INSTRUCTIONS: u64 = 2_000_000;
const MIX: &str = "mix7";
const SEED: u64 = 42;

struct Measurement {
    name: &'static str,
    cores: usize,
    accesses: u64,
    instructions: u64,
    makespan: u64,
    elapsed_s: f64,
}

impl Measurement {
    fn accesses_per_sec(&self) -> f64 {
        self.accesses as f64 / self.elapsed_s
    }
}

fn total_accesses(report: &SimReport) -> u64 {
    report.stats.per_core.iter().map(|c| c.l1.accesses()).sum()
}

/// Runs one configuration `samples` times (fresh system each time) and
/// reports the median elapsed time. `total_instructions` is split evenly
/// across cores so every configuration simulates comparable total work.
fn run_config<O: TrafficObserver>(
    name: &'static str,
    cores: usize,
    observer: impl Fn() -> O,
    total_instructions: u64,
    samples: usize,
) -> Measurement {
    let mix = mix_by_name(MIX).expect("mix exists");
    let mut elapsed = Vec::with_capacity(samples);
    let mut last_report = None;
    for _ in 0..samples {
        let mut config = SystemConfig::paper_default();
        config.cores = cores;
        let mut system = System::new(config, observer());
        for core in 0..cores {
            let bench = mix.benchmarks[core % mix.benchmarks.len()];
            system.set_source(
                CoreId(core),
                Box::new(ProfileSource::new(bench, core, SEED)),
            );
        }
        let start = Instant::now();
        let report = system.run(total_instructions / cores as u64);
        elapsed.push(start.elapsed().as_secs_f64());
        last_report = Some(report);
    }
    elapsed.sort_by(f64::total_cmp);
    let report = last_report.expect("at least one sample");
    Measurement {
        name,
        cores,
        accesses: total_accesses(&report),
        instructions: report.total_instructions(),
        makespan: report.makespan(),
        elapsed_s: elapsed[elapsed.len() / 2],
    }
}

fn pipo() -> PiPoMonitor {
    PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid config")
}

/// Extracts `"name": ..., "accesses_per_sec": N` pairs from a previously
/// emitted JSON file without a JSON parser (the schema is our own).
fn parse_old_rates(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + 9..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        let Some(rpos) = rest.find("\"accesses_per_sec\": ") else {
            break;
        };
        rest = &rest[rpos + 20..];
        let num_end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if let Ok(rate) = rest[..num_end].parse::<f64>() {
            out.push((name, rate));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut instructions = DEFAULT_INSTRUCTIONS;
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_cache_sim.json");
    let mut compare_path: Option<String> = None;
    let mut samples = 3usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => label = it.next().expect("--label needs a value").clone(),
            "--out" | "--json" => out_path = it.next().expect("--out needs a value").clone(),
            "--compare" => compare_path = Some(it.next().expect("--compare needs a value").clone()),
            "--samples" => {
                samples = it
                    .next()
                    .expect("--samples needs a value")
                    .parse()
                    .expect("--samples must be a positive integer");
                assert!(samples > 0, "--samples must be a positive integer");
            }
            other => {
                instructions = other
                    .parse()
                    .unwrap_or_else(|_| panic!("unrecognized argument {other:?}"));
            }
        }
    }

    let runs = [
        run_config("baseline", 4, || NullObserver, instructions, samples),
        run_config(
            "directory_monitor",
            4,
            || DirectoryMonitor::new(DirectoryMonitorConfig::paper_comparable()),
            instructions,
            samples,
        ),
        run_config("pipomonitor", 4, pipo, instructions, samples),
        run_config("pipomonitor_8c", 8, pipo, instructions, samples),
        run_config("pipomonitor_16c", 16, pipo, instructions, samples),
        run_config("pipomonitor_32c", 32, pipo, instructions, samples),
    ];

    // Decimal places match the old hand-rolled emitter: 6 for seconds, 1 for
    // rates, 2 for speedup ratios.
    let round = |x: f64, places: i32| (x * 10f64.powi(places)).round() / 10f64.powi(places);
    let configs: Vec<Json> = runs
        .iter()
        .map(|m| {
            Json::object()
                .field("name", m.name)
                .field("cores", m.cores)
                .field("accesses", m.accesses)
                .field("instructions", m.instructions)
                .field("makespan_cycles", m.makespan)
                .field("elapsed_s", round(m.elapsed_s, 6))
                .field("accesses_per_sec", round(m.accesses_per_sec(), 1))
        })
        .collect();
    let mut doc = Json::object()
        .field("bench", "cache_sim_throughput")
        .field("label", label.as_str())
        .field("workload", MIX)
        .field("seed", SEED)
        .field("total_instructions", instructions)
        .field("configs", configs);

    if let Some(path) = compare_path {
        let old = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read --compare file {path}: {e}"));
        let old_rates = parse_old_rates(&old);
        let mut old_obj = Json::object();
        let mut speedup_obj = Json::object();
        for m in &runs {
            if let Some((_, old_rate)) = old_rates.iter().find(|(n, _)| n == m.name) {
                old_obj = old_obj.field(m.name, round(*old_rate, 1));
                speedup_obj = speedup_obj.field(m.name, round(m.accesses_per_sec() / old_rate, 2));
            }
        }
        doc = doc.field(
            "comparison",
            Json::object()
                .field("against", path.as_str())
                .field("old_accesses_per_sec", old_obj)
                .field("speedup", speedup_obj),
        );
    }
    let json = doc.to_pretty();

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");
    for m in &runs {
        eprintln!(
            "{:<20} {:>12.0} accesses/sec  ({} accesses in {:.3}s)",
            m.name,
            m.accesses_per_sec(),
            m.accesses,
            m.elapsed_s,
        );
    }
}
