//! Ablation: LLC replacement policy vs the Prime+Probe attack and the
//! monitor's false positives.
//!
//! The paper evaluates LRU only. Random replacement weakens the attacker's
//! prime precision (a primed way may survive), while Tree-PLRU behaves close
//! to LRU. The monitor's detection is replacement-agnostic because it
//! watches memory traffic, not set state.
//!
//! Run: `cargo run --release -p pipo-bench --bin ablation_replacement [instructions]`

use cache_sim::{Hierarchy, NullObserver, Replacement, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
use pipo_bench::{instructions_from_args, run_mix_monitored_on};
use pipo_workloads::all_mixes;
use pipomonitor::{MonitorConfig, PiPoMonitor};

fn attack_under(replacement: Replacement) -> (f64, f64) {
    let config = AttackConfig {
        iterations: 100,
        ..AttackConfig::paper_default()
    };
    let mut cfg = SystemConfig::paper_default();
    cfg.replacement = replacement;
    let mut hierarchy = Hierarchy::new(cfg.clone());
    let victim = SquareAndMultiply::with_random_key(
        VictimLayout::default_layout(),
        100 * config.bits_per_window,
        99,
    );
    let mut baseline = NullObserver;
    let base = PrimeProbeAttack::new(config)
        .run(&mut hierarchy, victim.clone(), &mut baseline)
        .trace
        .recover_key();

    let mut hierarchy = Hierarchy::new(cfg);
    let mut monitor = PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid");
    let defended = PrimeProbeAttack::new(config)
        .run(&mut hierarchy, victim, &mut monitor)
        .trace
        .recover_key();
    (base.distinguishability, defended.distinguishability)
}

fn main() {
    let policies = [
        ("lru", Replacement::Lru),
        ("tree-plru", Replacement::TreePlru),
        ("random", Replacement::Random { seed: 5 }),
    ];

    println!("replacement ablation — attack channel distinguishability");
    println!("{:>10} {:>14} {:>14}", "policy", "baseline", "with monitor");
    for (name, policy) in policies {
        let (base, defended) = attack_under(policy);
        println!("{name:>10} {base:>14.3} {defended:>14.3}");
    }

    // Monitor false positives under each policy (mix1, scaled run).
    let instructions = instructions_from_args().min(500_000);
    println!("\nmonitor false positives on mix1 ({instructions} instructions/core)");
    println!("{:>10} {:>10} {:>12}", "policy", "fp/Mi", "norm perf");
    for (name, policy) in policies {
        let mut cfg = SystemConfig::paper_default();
        cfg.replacement = policy;
        let run = run_mix_monitored_on(
            &all_mixes()[0],
            cfg,
            MonitorConfig::paper_default(),
            instructions,
            42,
        );
        println!(
            "{name:>10} {:>10.1} {:>12.4}",
            run.false_positives_per_mi(),
            run.normalized_performance()
        );
    }
}
