//! Ablation: LLC replacement policy vs the Prime+Probe attack and the
//! monitor's false positives.
//!
//! The paper evaluates LRU only. Random replacement weakens the attacker's
//! prime precision (a primed way may survive), while Tree-PLRU behaves close
//! to LRU. The monitor's detection is replacement-agnostic because it
//! watches memory traffic, not set state.
//!
//! Both grids (three attack cells, three monitored-mix cells) run through
//! the sweep engine.
//!
//! Run: `cargo run --release -p pipo-bench --bin ablation_replacement -- \
//!       [instructions] [--json PATH] [--sequential | --threads N] \
//!       [--store PATH]`

use auto_cuckoo::FilterBackend;
use cache_sim::{Hierarchy, NullObserver, Replacement, SystemConfig};
use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
use pipo_bench::{
    emit_json, finish_store, run_cells, sweep_document, HarnessArgs, Json, MixCell, Sweep,
};
use pipo_workloads::all_mixes;
use pipomonitor::{MonitorConfig, PiPoMonitor};

const SEED: u64 = 42;

fn attack_under(replacement: Replacement, backend: FilterBackend) -> (f64, f64) {
    let config = AttackConfig {
        iterations: 100,
        ..AttackConfig::paper_default()
    };
    let mut cfg = SystemConfig::paper_default();
    cfg.replacement = replacement;
    let mut hierarchy = Hierarchy::new(cfg.clone());
    let victim = SquareAndMultiply::with_random_key(
        VictimLayout::default_layout(),
        100 * config.bits_per_window,
        99,
    );
    let mut baseline = NullObserver;
    let base = PrimeProbeAttack::new(config)
        .run(&mut hierarchy, victim.clone(), &mut baseline)
        .trace
        .recover_key();

    let mut hierarchy = Hierarchy::new(cfg);
    let mut monitor =
        PiPoMonitor::new(MonitorConfig::paper_default().with_backend(backend)).expect("valid");
    let defended = PrimeProbeAttack::new(config)
        .run(&mut hierarchy, victim, &mut monitor)
        .trace
        .recover_key();
    (base.distinguishability, defended.distinguishability)
}

fn main() {
    let args = HarnessArgs::parse();
    args.expect_no_trace();
    let backend = args.filter_backend();
    let policies = [
        ("lru", Replacement::Lru),
        ("tree-plru", Replacement::TreePlru),
        ("random", Replacement::Random { seed: 5 }),
    ];

    let attack_results = run_cells(args.mode, &policies, |_, &(_, policy)| {
        attack_under(policy, backend)
    });

    println!("replacement ablation — attack channel distinguishability");
    println!("{:>10} {:>14} {:>14}", "policy", "baseline", "with monitor");
    for ((name, _), (base, defended)) in policies.iter().zip(&attack_results) {
        println!("{name:>10} {base:>14.3} {defended:>14.3}");
    }

    // Monitor false positives under each policy (mix1, scaled run).
    let instructions = args.instructions().min(500_000);
    println!("\nmonitor false positives on mix1 ({instructions} instructions/core)");
    println!("{:>10} {:>10} {:>12}", "policy", "fp/Mi", "norm perf");
    let mut sweep = Sweep::new();
    for (name, policy) in policies {
        let mut cfg = SystemConfig::paper_default();
        cfg.replacement = policy;
        sweep.push(
            MixCell::new(
                format!("{name}/mix1"),
                all_mixes()[0],
                MonitorConfig::paper_default().with_backend(backend),
                instructions,
                SEED,
            )
            .on_system(cfg),
        );
    }
    // Only the mix sweep is store-keyed; the attack cells above always run
    // (they are not `System::run` cells and have no canonical key).
    let sweep = sweep.with_shards(args.shards_or_sequential());
    let mut store = args.open_store();
    let started = std::time::Instant::now();
    let (mix_runs, outcome) = sweep.run_with_store(args.mode, store.as_mut());
    finish_store(store.as_mut(), outcome, started.elapsed());
    for ((name, _), run) in policies.iter().zip(&mix_runs) {
        println!(
            "{name:>10} {:>10.1} {:>12.4}",
            run.false_positives_per_mi(),
            run.normalized_performance()
        );
    }

    let cells = policies
        .iter()
        .zip(&attack_results)
        .zip(&mix_runs)
        .map(|(((name, _), (base, defended)), run)| {
            run.to_json()
                .field("policy", *name)
                .field("attack_distinguishability_baseline", *base)
                .field("attack_distinguishability_monitored", *defended)
        })
        .collect();
    let meta = Json::object()
        .field("instructions_per_core", instructions)
        .field("filter_backend", backend.name())
        .field("seed", SEED);
    emit_json(
        args.json.as_deref(),
        &sweep_document("ablation_replacement", args.mode, meta, cells),
    );
}
