//! `pipo-serve`: a long-running sweep service over the persistent store.
//!
//! The figure binaries are batch processes: they open a [`ResultStore`],
//! answer what they can, simulate the rest and exit. `pipo-serve` keeps the
//! same store (and one [`WorkerPool`]) resident, so interactive clients —
//! plotting notebooks, CI smoke checks, other harness invocations — get
//! warm sweep cells back in microseconds instead of re-simulating them.
//!
//! # Protocol
//!
//! Line-delimited JSON over plain TCP (the build environment has no registry
//! access, so there is no HTTP stack — one request object per line, one or
//! more response objects per line back). Requests carry an `"op"` field:
//!
//! | request                          | response                            |
//! |----------------------------------|-------------------------------------|
//! | `{"op":"ping"}`                  | one `{"ok":true,"op":"pong",…}` line |
//! | `{"op":"stats"}`                 | one line of server + store counters |
//! | `{"op":"dashboard"}`             | one line aggregating every stored record |
//! | `{"op":"job","cells":[…]}`       | one line per cell as it completes, then a `"done"` summary line |
//! | `{"op":"shutdown"}`              | one ack line; the server then exits |
//!
//! A job's cells are looked up in the store first; warm cells stream back
//! immediately (`"cached":true`). Cold cells are fanned across the shared
//! [`WorkerPool`] and stream back as each finishes, in completion order,
//! then the whole batch is written back to the store and flushed. The
//! `"result"` object of a cell is byte-identical whether it was served warm
//! or computed cold — [`MixRun::from_stored`] round-trips
//! [`MixRun::to_json`] exactly — so clients may cache on either.
//!
//! Every failure is a structured `{"ok":false,"error":…}` line; the server
//! validates everything it reads off the socket (parse errors carry byte
//! offsets, cell specs reject unknown fields, instruction counts are capped
//! by [`ServeOptions::max_instructions`]) and never panics on client input.
//!
//! # Concurrency model
//!
//! One thread per connection. The store sits behind one mutex (it is
//! single-writer by design; see the [`store`](crate::store) docs) and is
//! locked only for lookups and write-backs, never across a simulation. The
//! worker pool sits behind its own mutex, so concurrent jobs' cold batches
//! run one batch at a time while warm traffic flows freely past them.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use auto_cuckoo::{FilterBackend, FilterParams};
use cache_sim::{Replacement, SystemConfig, WorkerPool};
use pipo_workloads::all_mixes;
use pipomonitor::MonitorConfig;

use crate::json::Json;
use crate::store::{mix_cell_key, ResultStore, STORE_SCHEMA_VERSION};
use crate::sweep::MixCell;
use crate::{run_mix_monitored_on, MixRun, DEFAULT_INSTRUCTIONS};

/// Upper bound on one request line. Requests are a few hundred bytes in
/// practice; anything larger is a confused (or hostile) client.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Upper bound on cells per job, so one request cannot queue unbounded work.
const MAX_JOB_CELLS: usize = 1024;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; `127.0.0.1:0` picks a free port (the chosen address
    /// is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool participants available to a job's cold cells.
    pub workers: usize,
    /// Largest per-core instruction count a job cell may request. Simulation
    /// time is linear in this, so it is the server's admission control.
    pub max_instructions: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            max_instructions: 10 * DEFAULT_INSTRUCTIONS,
        }
    }
}

/// State shared by every connection handler.
struct Shared {
    store: Mutex<ResultStore>,
    pool: Mutex<WorkerPool>,
    workers: usize,
    max_instructions: u64,
    addr: SocketAddr,
    jobs: AtomicU64,
    cells: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    shutdown: AtomicBool,
}

/// A bound (but not yet serving) `pipo-serve` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("workers", &self.shared.workers)
            .finish()
    }
}

impl Server {
    /// Binds the listen socket and takes ownership of the store.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(store: ResultStore, options: ServeOptions) -> io::Result<Self> {
        let listener = TcpListener::bind(&options.addr)?;
        let addr = listener.local_addr()?;
        let workers = options.workers.max(1);
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                store: Mutex::new(store),
                pool: Mutex::new(WorkerPool::new(workers)),
                workers,
                max_instructions: options.max_instructions.max(1),
                addr,
                jobs: AtomicU64::new(0),
                cells: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound listen address (resolves port 0 to the chosen port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves connections until a client sends `{"op":"shutdown"}`, then
    /// flushes the store and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept errors and the final store flush error.
    pub fn run(self) -> io::Result<()> {
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                // A connection error just drops that client.
                let _ = handle_connection(stream, &shared);
            }));
        }
        for handler in handlers {
            let _ = handler.join();
        }
        self.shared
            .store
            .lock()
            .expect("store mutex not poisoned")
            .flush()
    }
}

/// Sends one compact response line.
fn send(out: &mut impl Write, doc: &Json) -> io::Result<()> {
    out.write_all(doc.to_line().as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

fn error_doc(message: impl Into<String>) -> Json {
    Json::object()
        .field("ok", false)
        .field("error", message.into())
}

/// Reads one newline-terminated request, bounded by [`MAX_REQUEST_BYTES`].
/// `Ok(None)` is a clean EOF; an oversized or non-UTF-8 line is an error.
fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    reader
        .by_ref()
        .take(MAX_REQUEST_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() > MAX_REQUEST_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
        ));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request is not UTF-8"))
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    loop {
        let line = match read_request(&mut reader) {
            Ok(None) => return Ok(()),
            Ok(Some(line)) => line,
            Err(e) => {
                // Tell the client why before hanging up.
                let _ = send(&mut out, &error_doc(format!("bad request: {e}")));
                return Err(e);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Json::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                send(&mut out, &error_doc(format!("request parse error: {e}")))?;
                continue;
            }
        };
        match request.get("op").and_then(Json::as_str) {
            Some("ping") => send(
                &mut out,
                &Json::object()
                    .field("ok", true)
                    .field("op", "pong")
                    .field("schema_version", STORE_SCHEMA_VERSION),
            )?,
            Some("stats") => {
                let doc = stats_doc(shared);
                send(&mut out, &doc)?;
            }
            Some("dashboard") => {
                let doc = dashboard_doc(shared);
                send(&mut out, &doc)?;
            }
            Some("job") => handle_job(shared, &request, &mut out)?,
            Some("shutdown") => {
                send(
                    &mut out,
                    &Json::object().field("ok", true).field("op", "shutdown"),
                )?;
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so `Server::run` observes the flag.
                let _ = TcpStream::connect(shared.addr);
                return Ok(());
            }
            Some(op) => send(
                &mut out,
                &error_doc(format!(
                    "unknown op {op:?} (ping, stats, dashboard, job, shutdown)"
                )),
            )?,
            None => send(&mut out, &error_doc("request needs a string \"op\" field"))?,
        }
    }
}

fn stats_doc(shared: &Shared) -> Json {
    let store = shared.store.lock().expect("store mutex not poisoned");
    let telemetry = store.telemetry();
    Json::object()
        .field("ok", true)
        .field("op", "stats")
        .field("schema_version", STORE_SCHEMA_VERSION)
        .field("workers", shared.workers)
        .field("jobs", shared.jobs.load(Ordering::Relaxed))
        .field("cells", shared.cells.load(Ordering::Relaxed))
        .field("hits", shared.hits.load(Ordering::Relaxed))
        .field("misses", shared.misses.load(Ordering::Relaxed))
        .field(
            "store",
            Json::object()
                .field("path", store.path().display().to_string())
                .field("records", store.len())
                .field("bytes", store.bytes())
                .field("recovered_records", telemetry.recovered_records)
                .field("dropped_tail_bytes", telemetry.dropped_tail_bytes),
        )
}

/// Aggregates every stored record into the all-figures dashboard: per-mix
/// means over the decoded payloads plus the full sorted record list.
fn dashboard_doc(shared: &Shared) -> Json {
    let store = shared.store.lock().expect("store mutex not poisoned");
    let mut records: Vec<(&str, &str)> = store.records().collect();
    records.sort_unstable();
    // (mix name, cell count, Σ normalized_performance, Σ fp/MI)
    let mut mixes: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut cells = Vec::new();
    for &(key, payload) in &records {
        let Ok(result) = Json::parse(payload) else {
            // A corrupt payload is a store bug, but the dashboard must not
            // die on it: skip the record (lookups already treat it as a miss).
            continue;
        };
        if let (Some(mix), Some(np), Some(fp)) = (
            result.get("mix").and_then(Json::as_str),
            result.get("normalized_performance").and_then(Json::as_f64),
            result.get("false_positives_per_mi").and_then(Json::as_f64),
        ) {
            match mixes.iter_mut().find(|(name, ..)| name == mix) {
                Some((_, count, np_sum, fp_sum)) => {
                    *count += 1;
                    *np_sum += np;
                    *fp_sum += fp;
                }
                None => mixes.push((mix.to_string(), 1, np, fp)),
            }
        }
        cells.push(Json::object().field("key", key).field("result", result));
    }
    mixes.sort_by(|a, b| a.0.cmp(&b.0));
    let mixes: Vec<Json> = mixes
        .into_iter()
        .map(|(mix, count, np_sum, fp_sum)| {
            Json::object()
                .field("mix", mix)
                .field("cells", count)
                .field("mean_normalized_performance", np_sum / count as f64)
                .field("mean_false_positives_per_mi", fp_sum / count as f64)
        })
        .collect();
    Json::object()
        .field("ok", true)
        .field("op", "dashboard")
        .field("records", store.len())
        .field("bytes", store.bytes())
        .field("mixes", mixes)
        .field("cells", cells)
}

fn cell_doc(index: usize, label: &str, cached: bool, run: &MixRun) -> Json {
    Json::object()
        .field("ok", true)
        .field("cell", index)
        .field("label", label)
        .field("cached", cached)
        .field("result", run.to_json())
}

fn handle_job(shared: &Shared, request: &Json, out: &mut impl Write) -> io::Result<()> {
    let Some(specs) = request.get("cells").and_then(Json::as_array) else {
        return send(out, &error_doc("job needs a \"cells\" array"));
    };
    if specs.is_empty() {
        return send(out, &error_doc("job needs at least one cell"));
    }
    if specs.len() > MAX_JOB_CELLS {
        return send(
            out,
            &error_doc(format!(
                "job has {} cells; this server accepts at most {MAX_JOB_CELLS}",
                specs.len()
            )),
        );
    }
    let mut cells = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        match cell_from_spec(spec, shared.max_instructions) {
            Ok(cell) => cells.push(cell),
            Err(e) => return send(out, &error_doc(format!("cell {i}: {e}"))),
        }
    }

    let started = Instant::now();
    let keys: Vec<String> = cells.iter().map(mix_cell_key).collect();
    // Warm pass: one store lock for the whole batch, stream hits right away.
    let warm: Vec<Option<MixRun>> = {
        let mut store = shared.store.lock().expect("store mutex not poisoned");
        cells
            .iter()
            .zip(&keys)
            .map(|(cell, key)| {
                let payload = store.get(key)?;
                MixRun::from_stored(cell.mix.name, payload)
            })
            .collect()
    };
    let mut hits = 0u64;
    for (i, run) in warm.iter().enumerate() {
        if let Some(run) = run {
            send(out, &cell_doc(i, &cells[i].label, true, run))?;
            hits += 1;
        }
    }
    let pending: Vec<usize> = (0..cells.len()).filter(|&i| warm[i].is_none()).collect();
    let misses = pending.len() as u64;

    // Cold pass: fan the batch across the shared worker pool, streaming each
    // cell as it completes (completion order; the `"cell"` index identifies
    // them). The pool's calling thread participates, so the dispatch runs on
    // a scoped thread while this thread stays free to write responses.
    let mut incomplete = false;
    if !pending.is_empty() {
        let pool = shared.pool.lock().expect("pool mutex not poisoned");
        let participants = pool.capacity().min(pending.len()).max(1);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Option<(usize, MixRun)>>();
        let tx = Mutex::new(tx);
        let mut computed: Vec<Option<MixRun>> = vec![None; pending.len()];
        std::thread::scope(|scope| -> io::Result<()> {
            let pool = &*pool;
            let cells = &cells;
            let pending = &pending;
            let next = &next;
            let tx = &tx;
            scope.spawn(move || {
                // A panicking cell poisons the dispatch; swallow it here and
                // let the short message count surface it as a job error.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    pool.run(participants, &|_| loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&cell_index) = pending.get(slot) else {
                            break;
                        };
                        let cell = &cells[cell_index];
                        let run = run_mix_monitored_on(
                            &cell.mix,
                            cell.system.clone(),
                            cell.monitor,
                            cell.instructions,
                            cell.seed,
                        );
                        let _ = tx
                            .lock()
                            .expect("sender mutex not poisoned")
                            .send(Some((slot, run)));
                    });
                }));
                let _ = tx.lock().expect("sender mutex not poisoned").send(None);
            });
            let mut received = 0;
            while let Ok(Some((slot, run))) = rx.recv() {
                let cell_index = pending[slot];
                send(
                    out,
                    &cell_doc(cell_index, &cells[cell_index].label, false, &run),
                )?;
                computed[slot] = Some(run);
                received += 1;
            }
            incomplete = received < pending.len();
            Ok(())
        })?;
        // Write the batch back and persist before answering `done`, so a
        // client that saw the summary can rely on the next job being warm.
        let mut store = shared.store.lock().expect("store mutex not poisoned");
        for (slot, run) in computed.iter().enumerate() {
            if let Some(run) = run {
                store.put(&keys[pending[slot]], &run.to_json().to_pretty());
            }
        }
        store.flush()?;
    }

    shared.jobs.fetch_add(1, Ordering::Relaxed);
    shared
        .cells
        .fetch_add(cells.len() as u64, Ordering::Relaxed);
    shared.hits.fetch_add(hits, Ordering::Relaxed);
    shared.misses.fetch_add(misses, Ordering::Relaxed);
    if incomplete {
        return send(
            out,
            &error_doc("a worker panicked; job incomplete (completed cells were stored)"),
        );
    }
    let store_records = shared.store.lock().expect("store mutex not poisoned").len();
    send(
        out,
        &Json::object()
            .field("ok", true)
            .field("done", true)
            .field("cells", cells.len())
            .field("hits", hits)
            .field("misses", misses)
            .field("wall_us", started.elapsed().as_micros() as u64)
            .field("total_hits", shared.hits.load(Ordering::Relaxed))
            .field("total_misses", shared.misses.load(Ordering::Relaxed))
            .field("store_records", store_records),
    )
}

/// Every field a job cell spec may carry. `mix` is required; everything else
/// defaults to the paper's configuration.
const CELL_SPEC_KEYS: [&str; 14] = [
    "mix",
    "label",
    "instructions",
    "seed",
    "delay",
    "backend",
    "l",
    "b",
    "f",
    "mnk",
    "thr",
    "filter_seed",
    "replacement",
    "replacement_seed",
];

fn opt_str<'a>(spec: &'a Json, name: &str) -> Result<Option<&'a str>, String> {
    spec.get(name)
        .map(|v| v.as_str().ok_or_else(|| format!("{name} must be a string")))
        .transpose()
}

fn opt_u64(spec: &Json, name: &str) -> Result<Option<u64>, String> {
    spec.get(name)
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("{name} must be a non-negative integer"))
        })
        .transpose()
}

fn narrow<T: TryFrom<u64>>(value: u64, name: &str) -> Result<T, String> {
    T::try_from(value).map_err(|_| format!("{name} is out of range"))
}

/// Parses one job cell spec into a [`MixCell`], strictly: unknown fields,
/// wrong types, unknown names and over-limit instruction counts are all
/// rejected with a message naming the field.
fn cell_from_spec(spec: &Json, max_instructions: u64) -> Result<MixCell, String> {
    let Json::Object(fields) = spec else {
        return Err("cell spec must be an object".to_string());
    };
    for (key, _) in fields {
        if !CELL_SPEC_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "unknown cell field {key:?} (allowed: {})",
                CELL_SPEC_KEYS.join(", ")
            ));
        }
    }
    let mix_name = opt_str(spec, "mix")?.ok_or("cell spec needs a \"mix\" field")?;
    let mix = all_mixes()
        .into_iter()
        .find(|m| m.name == mix_name)
        .ok_or_else(|| format!("unknown mix {mix_name:?}"))?;
    let instructions = opt_u64(spec, "instructions")?.unwrap_or(DEFAULT_INSTRUCTIONS);
    if instructions == 0 {
        return Err("instructions must be positive".to_string());
    }
    if instructions > max_instructions {
        return Err(format!(
            "instructions {instructions} exceeds this server's limit of {max_instructions}"
        ));
    }
    let seed = opt_u64(spec, "seed")?.unwrap_or(42);

    let defaults = MonitorConfig::paper_default();
    let filter = FilterParams::builder()
        .buckets(match opt_u64(spec, "l")? {
            Some(v) => narrow(v, "l")?,
            None => defaults.filter.buckets(),
        })
        .entries_per_bucket(match opt_u64(spec, "b")? {
            Some(v) => narrow(v, "b")?,
            None => defaults.filter.entries_per_bucket(),
        })
        .fingerprint_bits(match opt_u64(spec, "f")? {
            Some(v) => narrow(v, "f")?,
            None => defaults.filter.fingerprint_bits(),
        })
        .max_kicks(match opt_u64(spec, "mnk")? {
            Some(v) => narrow(v, "mnk")?,
            None => defaults.filter.max_kicks(),
        })
        .security_threshold(match opt_u64(spec, "thr")? {
            Some(v) => narrow(v, "thr")?,
            None => defaults.filter.security_threshold(),
        })
        .seed(opt_u64(spec, "filter_seed")?.unwrap_or_else(|| defaults.filter.seed()))
        .build()
        .map_err(|e| format!("invalid filter parameters: {e}"))?;
    let backend = match opt_str(spec, "backend")? {
        None => defaults.backend,
        Some(name) => FilterBackend::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| format!("unknown backend {name:?} (auto, classic, bloom, xor)"))?,
    };
    let monitor = defaults
        .with_filter(filter)
        .with_backend(backend)
        .with_prefetch_delay(opt_u64(spec, "delay")?.unwrap_or(50));

    let mut system = SystemConfig::paper_default();
    match opt_str(spec, "replacement")? {
        Some("lru") => system.replacement = Replacement::Lru,
        Some("tree-plru") => system.replacement = Replacement::TreePlru,
        Some("random") => {
            system.replacement = Replacement::Random {
                seed: opt_u64(spec, "replacement_seed")?.unwrap_or(0),
            };
        }
        Some(other) => {
            return Err(format!(
                "unknown replacement {other:?} (lru, tree-plru, random)"
            ))
        }
        None => {
            if spec.get("replacement_seed").is_some() {
                return Err("replacement_seed needs replacement: \"random\"".to_string());
            }
        }
    }
    let label = opt_str(spec, "label")?.unwrap_or(mix_name).to_string();
    Ok(MixCell::new(label, mix, monitor, instructions, seed).on_system(system))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> Json {
        Json::parse(text).expect("test spec parses")
    }

    #[test]
    fn minimal_cell_spec_uses_paper_defaults() {
        let cell = cell_from_spec(&spec(r#"{"mix":"mix3"}"#), u64::MAX).expect("valid spec");
        assert_eq!(cell.mix.name, "mix3");
        assert_eq!(cell.label, "mix3");
        assert_eq!(cell.instructions, DEFAULT_INSTRUCTIONS);
        assert_eq!(cell.seed, 42);
        assert_eq!(cell.monitor, MonitorConfig::paper_default());
        assert_eq!(cell.system, SystemConfig::paper_default());
    }

    #[test]
    fn full_cell_spec_overrides_every_knob() {
        let cell = cell_from_spec(
            &spec(
                r#"{"mix":"mix1","label":"big","instructions":5000,"seed":7,
                    "delay":100,"backend":"bloom","l":2048,"b":4,
                    "replacement":"random","replacement_seed":9}"#,
            ),
            u64::MAX,
        )
        .expect("valid spec");
        assert_eq!(cell.label, "big");
        assert_eq!((cell.instructions, cell.seed), (5000, 7));
        assert_eq!(cell.monitor.prefetch_delay, 100);
        assert_eq!(cell.monitor.backend, FilterBackend::Bloom);
        assert_eq!(cell.monitor.filter.buckets(), 2048);
        assert_eq!(cell.monitor.filter.entries_per_bucket(), 4);
        assert_eq!(cell.system.replacement, Replacement::Random { seed: 9 });
    }

    #[test]
    fn cell_spec_rejections_name_the_field() {
        for (text, needle) in [
            (r#"{"instructions":5}"#, "needs a \"mix\""),
            (r#"{"mix":"nope"}"#, "unknown mix"),
            (
                r#"{"mix":"mix1","bogus":1}"#,
                "unknown cell field \"bogus\"",
            ),
            (
                r#"{"mix":"mix1","seed":"x"}"#,
                "seed must be a non-negative",
            ),
            (r#"{"mix":"mix1","instructions":0}"#, "must be positive"),
            (r#"{"mix":"mix1","backend":"gpu"}"#, "unknown backend"),
            (r#"{"mix":"mix1","l":1000}"#, "invalid filter parameters"),
            (
                r#"{"mix":"mix1","replacement":"fifo"}"#,
                "unknown replacement",
            ),
            (
                r#"{"mix":"mix1","replacement_seed":3}"#,
                "needs replacement",
            ),
            (r#"[1]"#, "must be an object"),
        ] {
            let err = cell_from_spec(&spec(text), u64::MAX).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn cell_spec_enforces_the_instruction_cap() {
        let err = cell_from_spec(&spec(r#"{"mix":"mix1","instructions":1001}"#), 1000).unwrap_err();
        assert!(err.contains("limit of 1000"), "{err}");
        cell_from_spec(&spec(r#"{"mix":"mix1","instructions":1000}"#), 1000)
            .expect("at the limit is accepted");
    }
}
