//! Minimal machine-readable input/output for the figure harnesses.
//!
//! Every harness binary accepts `--json <path>` and writes its results as a
//! JSON document alongside the human-readable tables, in the same spirit as
//! the `throughput` binary's `BENCH_cache_sim.json` (top-level metadata plus
//! a `cells` array, one element per sweep cell). The build environment has no
//! registry access, so this is a small hand-rolled emitter and parser rather
//! than serde; the schema is our own and stays flat.
//!
//! Since the persistent result store and the `pipo-serve` protocol both read
//! JSON back, the module also carries [`Json::parse`] (a strict
//! recursive-descent parser over the same value type) and [`write_atomic`]
//! (write-temp-then-rename, so a crash mid-write can never leave a truncated
//! document behind — readers see either the old document or the new one).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::sweep::ExecMode;

/// A JSON value with insertion-ordered object fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialise to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for simulator counters).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values serialise as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; fields keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be populated with [`field`](Self::field).
    #[must_use]
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object and returns it (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object JSON value {other:?}"),
        }
        self
    }

    /// Serialises with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_value(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialises onto a single line with no inter-token whitespace — the
    /// framing `pipo-serve` needs for its line-delimited protocol.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            // Scalars never contain newlines (strings escape them).
            other => other.write_value(out, 0),
        }
    }

    /// Writes the pretty-printed document to `path` atomically
    /// (write-temp-then-rename; see [`write_atomic`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path, self.to_pretty().as_bytes())
    }

    /// Looks up a field of an object (`None` for a missing key or a
    /// non-object value).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (signed integers and
    /// floats do not coerce).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float; unsigned and signed integers coerce losslessly
    /// enough for report fields.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (strict: one value, nothing but whitespace
    /// after it). Numbers parse back to the same variants the emitter
    /// writes: non-negative integers as [`Json::UInt`], negative integers as
    /// [`Json::Int`], everything with a fraction or exponent as
    /// [`Json::Float`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_whitespace();
        let value = p.value(0)?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write_value(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            // `f64::Display` never uses scientific notation, so the output
            // is always a valid JSON number.
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_block(out, indent, ('[', ']'), items.len(), |out, i| {
                items[i].write_value(out, indent + 1);
            }),
            Json::Object(fields) => write_block(out, indent, ('{', '}'), fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push_str(": ");
                fields[i].1.write_value(out, indent + 1);
            }),
        }
    }
}

/// Writes a `[...]`/`{...}` block with one element per line.
fn write_block(
    out: &mut String,
    indent: usize,
    (open, close): (char, char),
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        for _ in 0..=indent {
            out.push_str("  ");
        }
        write_item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push(close);
}

/// Maximum container nesting [`Json::parse`] accepts. The server feeds the
/// parser untrusted socket input, so recursion depth must be bounded well
/// below the stack limit; our own documents nest 4–5 levels.
const MAX_PARSE_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.value(depth + 1)?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte {:?} at byte {}",
                b as char, self.pos
            )),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' => {
                    fractional = true;
                    self.pos += 1;
                }
                b'-' if fractional => self.pos += 1,
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(format!("unterminated string at byte {}", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(format!("unterminated escape at byte {}", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code).ok_or_else(|| {
                                    format!("bad surrogate pair at byte {}", self.pos)
                                })?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                _ if b < 0x20 => {
                    return Err(format!("raw control byte in string at byte {}", self.pos))
                }
                _ => {
                    // Consume the rest of a multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(format!("invalid UTF-8 at byte {start}")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(format!("invalid UTF-8 at byte {start}"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| format!("bad \\u escape at byte {start}"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape at byte {start}"))?;
        self.pos = end;
        Ok(code)
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// temporary file first and are renamed over `path` only once fully written.
/// A crash (or kill) at any point leaves either the previous document or the
/// complete new one — never a truncated hybrid. Every result emitter in the
/// harness (the `--json` files, `BENCH_cache_sim.json`, the result store's
/// log) writes through here.
///
/// # Errors
///
/// Propagates the underlying I/O error; a failed rename removes the
/// temporary file before returning.
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

/// The shared top-level document shape: bench name, execution mode, and one
/// entry per sweep cell. Binaries append bench-specific metadata fields
/// before the cells with [`Json::field`].
#[must_use]
pub fn sweep_document(bench: &str, mode: ExecMode, meta: Json, cells: Vec<Json>) -> Json {
    let mut doc = Json::object()
        .field("bench", bench)
        .field("mode", mode.name())
        .field("threads", mode.threads());
    if let Json::Object(fields) = meta {
        for (key, value) in fields {
            doc = doc.field(&key, value);
        }
    }
    doc.field("cells", cells)
}

/// Writes `doc` to `path` (when given), exiting nonzero on I/O failure.
pub fn emit_json(path: Option<&str>, doc: &Json) {
    let Some(path) = path else { return };
    if let Err(e) = doc.write_file(path) {
        eprintln!("error: cannot write JSON output {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote JSON results to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_document() {
        let doc = Json::object()
            .field("bench", "demo")
            .field("count", 3u64)
            .field("ratio", 0.25)
            .field("ok", true)
            .field(
                "cells",
                vec![Json::object().field("label", "a"), Json::object()],
            );
        let text = doc.to_pretty();
        assert!(text.starts_with("{\n  \"bench\": \"demo\",\n"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.25"));
        assert!(text.contains("    {\n      \"label\": \"a\"\n    },"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn empty_containers_and_non_finite_floats() {
        let doc = Json::object()
            .field("empty_arr", Vec::new())
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY);
        let text = doc.to_pretty();
        assert!(text.contains("\"empty_arr\": []"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn sweep_document_shape() {
        let doc = sweep_document(
            "fig_test",
            ExecMode::Sequential,
            Json::object().field("seed", 42u64),
            vec![Json::object().field("label", "c0")],
        );
        let text = doc.to_pretty();
        let order = [
            "\"bench\"",
            "\"mode\"",
            "\"threads\"",
            "\"seed\"",
            "\"cells\"",
        ];
        let mut last = 0;
        for key in order {
            let pos = text.find(key).expect("key present");
            assert!(pos > last || last == 0, "field order: {key}");
            last = pos;
        }
        assert!(text.contains("\"mode\": \"sequential\""));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Array(Vec::new()).field("x", 1u64);
    }

    #[test]
    fn to_line_is_single_line_and_round_trips() {
        let doc = Json::object()
            .field("ok", true)
            .field("n", 3u64)
            .field("s", "a\nb")
            .field(
                "cells",
                vec![Json::object().field("label", "a"), Json::Null],
            );
        let line = doc.to_line();
        assert!(
            !line.contains('\n'),
            "compact output must be one line: {line}"
        );
        assert_eq!(
            line,
            "{\"ok\":true,\"n\":3,\"s\":\"a\\nb\",\"cells\":[{\"label\":\"a\"},null]}"
        );
        assert_eq!(Json::parse(&line), Ok(doc));
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let doc = Json::object()
            .field("bench", "demo")
            .field("count", 3u64)
            .field("delta", -7i64)
            .field("ratio", 0.25)
            .field("ok", true)
            .field("none", Json::Null)
            .field("text", "a\"b\\c\nd\u{1}é")
            .field(
                "cells",
                vec![Json::object().field("label", "a"), Json::Array(Vec::new())],
            );
        let parsed = Json::parse(&doc.to_pretty()).expect("emitted documents parse");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_number_variants_match_emitter() {
        assert_eq!(Json::parse("42"), Ok(Json::UInt(42)));
        assert_eq!(Json::parse("-42"), Ok(Json::Int(-42)));
        assert_eq!(Json::parse("0.5"), Ok(Json::Float(0.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Float(1000.0)));
        assert_eq!(
            Json::parse("18446744073709551615"),
            Ok(Json::UInt(u64::MAX))
        );
    }

    #[test]
    fn parse_rejects_malformed_input_with_offsets() {
        for (input, needle) in [
            ("", "end of input"),
            ("{", "expected"),
            ("[1,]", "unexpected byte"),
            ("{\"a\" 1}", "expected ':'"),
            ("\"abc", "unterminated"),
            ("truu", "invalid literal"),
            ("1 2", "trailing data"),
            ("\"\\q\"", "unknown escape"),
            ("\"\\ud800x\"", "lone surrogate"),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.contains(needle), "{input:?}: {err}");
            assert!(
                err.contains("byte"),
                "{input:?} error names an offset: {err}"
            );
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let ok = "[".repeat(MAX_PARSE_DEPTH) + "1" + &"]".repeat(MAX_PARSE_DEPTH);
        Json::parse(&ok).expect("depth at the limit parses");
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\""),
            Ok(Json::Str("Aé😀".to_string()))
        );
    }

    #[test]
    fn accessors_read_fields() {
        let doc = Json::object()
            .field("n", 7u64)
            .field("x", 1.5)
            .field("s", "hi")
            .field("b", false)
            .field("a", vec![Json::UInt(1)]);
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::UInt(1).get("n"), None);
        assert_eq!(Json::Null, Json::parse("null").unwrap());
    }

    #[test]
    fn write_file_is_atomic_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("pipo_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("out.json");
        let doc = Json::object().field("v", 1u64);
        doc.write_file(&path).expect("write");
        let next = Json::object().field("v", 2u64);
        next.write_file(&path).expect("overwrite");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read back"),
            next.to_pretty()
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
