//! Minimal machine-readable output for the figure harnesses.
//!
//! Every harness binary accepts `--json <path>` and writes its results as a
//! JSON document alongside the human-readable tables, in the same spirit as
//! the `throughput` binary's `BENCH_cache_sim.json` (top-level metadata plus
//! a `cells` array, one element per sweep cell). The build environment has no
//! registry access, so this is a small hand-rolled emitter rather than serde;
//! the schema is our own and stays flat.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::sweep::ExecMode;

/// A JSON value with insertion-ordered object fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for simulator counters).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float; non-finite values serialise as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; fields keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be populated with [`field`](Self::field).
    #[must_use]
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object and returns it (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object JSON value {other:?}"),
        }
        self
    }

    /// Serialises with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_value(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the pretty-printed document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_pretty())
    }

    fn write_value(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            // `f64::Display` never uses scientific notation, so the output
            // is always a valid JSON number.
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_block(out, indent, ('[', ']'), items.len(), |out, i| {
                items[i].write_value(out, indent + 1);
            }),
            Json::Object(fields) => write_block(out, indent, ('{', '}'), fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push_str(": ");
                fields[i].1.write_value(out, indent + 1);
            }),
        }
    }
}

/// Writes a `[...]`/`{...}` block with one element per line.
fn write_block(
    out: &mut String,
    indent: usize,
    (open, close): (char, char),
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        for _ in 0..=indent {
            out.push_str("  ");
        }
        write_item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

/// The shared top-level document shape: bench name, execution mode, and one
/// entry per sweep cell. Binaries append bench-specific metadata fields
/// before the cells with [`Json::field`].
#[must_use]
pub fn sweep_document(bench: &str, mode: ExecMode, meta: Json, cells: Vec<Json>) -> Json {
    let mut doc = Json::object()
        .field("bench", bench)
        .field("mode", mode.name())
        .field("threads", mode.threads());
    if let Json::Object(fields) = meta {
        for (key, value) in fields {
            doc = doc.field(&key, value);
        }
    }
    doc.field("cells", cells)
}

/// Writes `doc` to `path` (when given), exiting nonzero on I/O failure.
pub fn emit_json(path: Option<&str>, doc: &Json) {
    let Some(path) = path else { return };
    if let Err(e) = doc.write_file(path) {
        eprintln!("error: cannot write JSON output {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote JSON results to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_document() {
        let doc = Json::object()
            .field("bench", "demo")
            .field("count", 3u64)
            .field("ratio", 0.25)
            .field("ok", true)
            .field(
                "cells",
                vec![Json::object().field("label", "a"), Json::object()],
            );
        let text = doc.to_pretty();
        assert!(text.starts_with("{\n  \"bench\": \"demo\",\n"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.25"));
        assert!(text.contains("    {\n      \"label\": \"a\"\n    },"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn empty_containers_and_non_finite_floats() {
        let doc = Json::object()
            .field("empty_arr", Vec::new())
            .field("nan", f64::NAN)
            .field("inf", f64::INFINITY);
        let text = doc.to_pretty();
        assert!(text.contains("\"empty_arr\": []"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn sweep_document_shape() {
        let doc = sweep_document(
            "fig_test",
            ExecMode::Sequential,
            Json::object().field("seed", 42u64),
            vec![Json::object().field("label", "c0")],
        );
        let text = doc.to_pretty();
        let order = [
            "\"bench\"",
            "\"mode\"",
            "\"threads\"",
            "\"seed\"",
            "\"cells\"",
        ];
        let mut last = 0;
        for key in order {
            let pos = text.find(key).expect("key present");
            assert!(pos > last || last == 0, "field order: {key}");
            last = pos;
        }
        assert!(text.contains("\"mode\": \"sequential\""));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Array(Vec::new()).field("x", 1u64);
    }
}
