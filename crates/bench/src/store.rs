//! `pipo-store`: a persistent, content-addressed result cache.
//!
//! The sweep engine's in-memory baseline memoization dies with the process;
//! this module generalises it into an on-disk cache shared by every figure
//! binary (`--store PATH`) and the long-running `pipo-serve` service. The
//! design follows the `jdb_wal`/`size_lru` append-only-log pattern named in
//! `ROADMAP.md`:
//!
//! * **Content addressing** — a record's address is the stable FNV-1a hash
//!   of its *canonical cell key*: a single-line ASCII rendering of every
//!   input that determines a cell's result (`SystemConfig`, mix + component
//!   benchmarks, `MonitorConfig` including filter geometry and backend,
//!   instructions, seed) prefixed with a schema version. The shard count is
//!   deliberately **excluded**: `System::run_sharded` is bit-identical to
//!   `System::run` for any shard count (pinned by the sharded regression
//!   suites), so sharded and sequential runs share cache records. The full
//!   key is stored next to each record and verified on lookup, so a hash
//!   collision degrades to a miss, never a wrong answer.
//! * **Append-only log, validated on open** — the file is a header line
//!   followed by framed records (`rec <hash> <keylen> <paylen> <checksum>`
//!   then the raw key and payload bytes). Recovery follows the trace_v2
//!   decoder's validate-everything discipline: every frame's lengths,
//!   hash, checksum and terminator are checked, and the first malformed
//!   byte ends the scan — a truncated or torn tail is dropped (and counted
//!   in telemetry), never trusted and never a panic.
//! * **Atomic persistence** — [`ResultStore::flush`] rewrites the compacted
//!   log through [`write_atomic`]
//!   (write-temp-then-rename), so readers see either the previous log or
//!   the complete new one even if a flush is killed mid-write.
//! * **LRU size budget** — with [`ResultStore::with_budget`], inserting past
//!   the byte budget evicts least-recently-used records (lookups refresh
//!   recency; the newest record is never evicted). Compaction happens at
//!   flush: live records are written oldest-first, so file order *is*
//!   recency order on recovery.
//!
//! The store is single-writer: concurrent processes should go through
//! `pipo-serve`, which serialises access behind one store.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use cache_sim::{Replacement, SystemConfig};
use pipo_workloads::Mix;
use pipomonitor::MonitorConfig;

use crate::json::write_atomic;
use crate::sweep::MixCell;

/// Version stamped into both the canonical key prefix and the log header.
/// Bump it whenever the simulation semantics or the payload schema change:
/// old records then simply never match, instead of being served stale.
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// First line of every store file.
const HEADER: &str = "pipo-store v1\n";

/// Upper bound on one record's framing line (`rec ` + 16-digit hash +
/// two decimal lengths + 16-digit checksum + spaces + newline). Used to
/// bound the newline scan so a corrupt tail cannot make recovery quadratic.
const MAX_FRAME_LINE: usize = 96;

/// FNV-1a 64-bit: the store's stable content hash. Hand-rolled because the
/// standard library's hasher is explicitly unstable across releases, and
/// on-disk addresses must outlive the binary that wrote them.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn replacement_part(replacement: &Replacement) -> String {
    match replacement {
        Replacement::Lru => "lru".to_string(),
        Replacement::TreePlru => "tree-plru".to_string(),
        Replacement::Random { seed } => format!("random:{seed}"),
    }
}

fn system_part(system: &SystemConfig) -> String {
    format!(
        "cores:{},line:{},l1:{}x{}@{},l2:{}x{}@{},l3:{}x{}@{},dram:{},repl:{}",
        system.cores,
        system.line_size,
        system.l1.sets,
        system.l1.ways,
        system.l1.latency,
        system.l2.sets,
        system.l2.ways,
        system.l2.latency,
        system.l3.sets,
        system.l3.ways,
        system.l3.latency,
        system.dram_latency,
        replacement_part(&system.replacement),
    )
}

fn mix_part(mix: &Mix) -> String {
    let mut benches = String::new();
    for (i, bench) in mix.benchmarks.iter().enumerate() {
        if i > 0 {
            benches.push('+');
        }
        benches.push_str(bench.name);
    }
    format!("{}:{benches}", mix.name)
}

fn monitor_part(monitor: &MonitorConfig) -> String {
    format!(
        "backend:{},l:{},b:{},f:{},mnk:{},thr:{},fseed:{:#x},delay:{}",
        monitor.backend.name(),
        monitor.filter.buckets(),
        monitor.filter.entries_per_bucket(),
        monitor.filter.fingerprint_bits(),
        monitor.filter.max_kicks(),
        monitor.filter.security_threshold(),
        monitor.filter.seed(),
        monitor.prefetch_delay,
    )
}

/// Canonical key of a baseline (unprotected) run: everything that
/// determines a `run_mix_baseline_sharded` result except the shard count
/// (shard counts are bit-identical by construction). Also the key the sweep
/// engine dedups baselines on.
#[must_use]
pub fn baseline_cell_key(system: &SystemConfig, mix: &Mix, instructions: u64, seed: u64) -> String {
    format!(
        "pipo/v{STORE_SCHEMA_VERSION} sys={} mix={} instr={instructions} seed={seed}",
        system_part(system),
        mix_part(mix),
    )
}

/// Canonical key of a monitored sweep cell: the baseline key plus the full
/// monitor configuration. This is the content address of one
/// [`MixRun`](crate::MixRun) record.
#[must_use]
pub fn mix_cell_key(cell: &MixCell) -> String {
    format!(
        "{} mon={}",
        baseline_cell_key(&cell.system, &cell.mix, cell.instructions, cell.seed),
        monitor_part(&cell.monitor),
    )
}

/// Counters describing one store session (plus what recovery found on open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTelemetry {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found no record.
    pub misses: u64,
    /// Records inserted (new keys).
    pub puts: u64,
    /// Records overwritten in place (same key, new payload).
    pub replacements: u64,
    /// Records evicted to honour the size budget.
    pub evictions: u64,
    /// Valid records recovered when the store was opened.
    pub recovered_records: u64,
    /// Bytes of invalid/truncated tail dropped when the store was opened.
    pub dropped_tail_bytes: u64,
}

#[derive(Debug)]
struct Entry {
    key: String,
    payload: String,
    /// Logical recency clock; larger = more recently touched.
    stamp: u64,
}

/// FNV-1a over the concatenated key and payload bytes: the per-record
/// integrity checksum.
fn body_checksum(key: &[u8], payload: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.iter().chain(payload) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn record_frame(key: &str, payload: &str) -> String {
    format!(
        "rec {:016x} {} {} {:016x}\n",
        fnv1a64(key.as_bytes()),
        key.len(),
        payload.len(),
        body_checksum(key.as_bytes(), payload.as_bytes()),
    )
}

fn record_size(key: &str, payload: &str) -> u64 {
    (record_frame(key, payload).len() + key.len() + payload.len() + 1) as u64
}

/// The persistent content-addressed result store (see module docs).
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    /// FNV key hash → entries whose keys hash there (collisions coexist).
    entries: HashMap<u64, Vec<Entry>>,
    /// Logical clock driving LRU stamps.
    clock: u64,
    /// Size budget in encoded bytes (`None` = unbounded).
    budget: Option<u64>,
    /// Encoded size of the live log (header + all live records).
    live_bytes: u64,
    /// In-memory state differs from the file on disk.
    dirty: bool,
    telemetry: StoreTelemetry,
}

impl ResultStore {
    /// Opens (or initialises) an unbounded store at `path`. The file is not
    /// created until the first [`flush`](Self::flush).
    ///
    /// # Errors
    ///
    /// I/O errors reading an existing file, or a file whose header is not a
    /// `pipo-store v1` header (truncated tails — including a torn header
    /// prefix — recover instead of erroring; see module docs).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, None)
    }

    /// Opens a store bounded to `budget_bytes` of encoded log. Inserting
    /// past the budget evicts least-recently-used records; the most recent
    /// record always survives even if it alone exceeds the budget.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn with_budget(path: impl AsRef<Path>, budget_bytes: u64) -> io::Result<Self> {
        Self::open_with(path, Some(budget_bytes))
    }

    fn open_with(path: impl AsRef<Path>, budget: Option<u64>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut store = Self {
            path,
            entries: HashMap::new(),
            clock: 0,
            budget,
            live_bytes: HEADER.len() as u64,
            dirty: false,
            telemetry: StoreTelemetry::default(),
        };
        let bytes = match std::fs::read(&store.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        store.recover(&bytes)?;
        // Recovered entries may already exceed a (new, smaller) budget.
        store.enforce_budget();
        Ok(store)
    }

    /// Rebuilds the in-memory index from a log image, dropping the first
    /// malformed byte onward (truncation-tolerant, never panics).
    fn recover(&mut self, bytes: &[u8]) -> io::Result<()> {
        if !bytes.starts_with(HEADER.as_bytes()) {
            // A strict prefix of the header is a torn write of a fresh
            // store: recover it as empty. Anything else is not ours.
            if HEADER.as_bytes().starts_with(bytes) {
                self.telemetry.dropped_tail_bytes = bytes.len() as u64;
                self.dirty = !bytes.is_empty();
                return Ok(());
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a pipo-store v1 file", self.path.display()),
            ));
        }
        let mut offset = HEADER.len();
        while offset < bytes.len() {
            let Some((key, payload, next)) = parse_record(bytes, offset) else {
                break;
            };
            self.insert_recovered(key, payload);
            offset = next;
        }
        self.telemetry.dropped_tail_bytes = (bytes.len() - offset) as u64;
        self.telemetry.recovered_records = self.len() as u64;
        // A dropped tail (or superseded duplicate records) means the file
        // and the index disagree; rewrite on the next flush.
        self.dirty = self.telemetry.dropped_tail_bytes > 0;
        Ok(())
    }

    fn insert_recovered(&mut self, key: String, payload: String) {
        self.clock += 1;
        let hash = fnv1a64(key.as_bytes());
        let bucket = self.entries.entry(hash).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| e.key == key) {
            // Later records supersede earlier ones (append-only updates).
            self.live_bytes -= record_size(&entry.key, &entry.payload);
            self.live_bytes += record_size(&key, &payload);
            entry.payload = payload;
            entry.stamp = self.clock;
            self.dirty = true;
        } else {
            self.live_bytes += record_size(&key, &payload);
            bucket.push(Entry {
                key,
                payload,
                stamp: self.clock,
            });
        }
    }

    /// Looks up a record by its canonical key, refreshing its LRU recency.
    pub fn get(&mut self, key: &str) -> Option<&str> {
        self.clock += 1;
        let clock = self.clock;
        let hash = fnv1a64(key.as_bytes());
        let entry = self
            .entries
            .get_mut(&hash)
            .and_then(|bucket| bucket.iter_mut().find(|e| e.key == key));
        match entry {
            Some(entry) => {
                entry.stamp = clock;
                self.telemetry.hits += 1;
                Some(&entry.payload)
            }
            None => {
                self.telemetry.misses += 1;
                None
            }
        }
    }

    /// Inserts (or overwrites) a record, then evicts least-recently-used
    /// records if a budget is exceeded. Nothing touches disk until
    /// [`flush`](Self::flush).
    pub fn put(&mut self, key: &str, payload: &str) {
        self.clock += 1;
        let clock = self.clock;
        let hash = fnv1a64(key.as_bytes());
        let bucket = self.entries.entry(hash).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| e.key == key) {
            self.live_bytes -= record_size(&entry.key, &entry.payload);
            self.live_bytes += record_size(key, payload);
            entry.payload = payload.to_string();
            entry.stamp = clock;
            self.telemetry.replacements += 1;
        } else {
            self.live_bytes += record_size(key, payload);
            bucket.push(Entry {
                key: key.to_string(),
                payload: payload.to_string(),
                stamp: clock,
            });
            self.telemetry.puts += 1;
        }
        self.dirty = true;
        self.enforce_budget();
    }

    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else { return };
        while self.live_bytes > budget && self.len() > 1 {
            let (&hash, min_stamp) = self
                .entries
                .iter()
                .filter(|(_, bucket)| !bucket.is_empty())
                .map(|(hash, bucket)| {
                    (
                        hash,
                        bucket.iter().map(|e| e.stamp).min().expect("non-empty"),
                    )
                })
                .min_by_key(|&(_, stamp)| stamp)
                .expect("len > 1 means a bucket is non-empty");
            let bucket = self.entries.get_mut(&hash).expect("bucket exists");
            let pos = bucket
                .iter()
                .position(|e| e.stamp == min_stamp)
                .expect("stamp came from this bucket");
            let entry = bucket.swap_remove(pos);
            if bucket.is_empty() {
                self.entries.remove(&hash);
            }
            self.live_bytes -= record_size(&entry.key, &entry.payload);
            self.telemetry.evictions += 1;
            self.dirty = true;
        }
    }

    /// Writes the compacted log atomically (temp file + rename) if anything
    /// changed since the last flush. Live records are written in recency
    /// order, oldest first, so recovery reconstructs the LRU order.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; the previous on-disk log is
    /// untouched on failure.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let mut records: Vec<&Entry> = self.entries.values().flatten().collect();
        records.sort_by_key(|e| e.stamp);
        let mut image = String::with_capacity(self.live_bytes as usize);
        image.push_str(HEADER);
        for entry in records {
            image.push_str(&record_frame(&entry.key, &entry.payload));
            image.push_str(&entry.key);
            image.push_str(&entry.payload);
            image.push('\n');
        }
        debug_assert_eq!(image.len() as u64, self.live_bytes);
        write_atomic(&self.path, image.as_bytes())?;
        self.dirty = false;
        Ok(())
    }

    /// Number of live records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.values().all(Vec::is_empty)
    }

    /// Encoded size of the live log in bytes (header + records).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.live_bytes
    }

    /// The store's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Session counters plus recovery statistics.
    #[must_use]
    pub fn telemetry(&self) -> StoreTelemetry {
        self.telemetry
    }

    /// Iterates `(key, payload)` over live records in unspecified order
    /// (the `pipo-serve` dashboard aggregates these).
    pub fn records(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .values()
            .flatten()
            .map(|e| (e.key.as_str(), e.payload.as_str()))
    }
}

/// Flushes a figure binary's `--store` (when present) and reports the
/// warm/cold split on stderr. Stderr, deliberately: store telemetry varies
/// between cold and warm invocations, and the `--json` documents must stay
/// byte-identical with and without a store.
pub fn finish_store(
    store: Option<&mut ResultStore>,
    outcome: crate::sweep::SweepStoreOutcome,
    elapsed: std::time::Duration,
) {
    let Some(store) = store else { return };
    if let Err(e) = store.flush() {
        eprintln!(
            "error: cannot flush result store {}: {e}",
            store.path().display()
        );
        std::process::exit(1);
    }
    eprintln!(
        "store {}: {} warm / {} cold cells in {elapsed:.1?} ({} records, {} bytes)",
        store.path().display(),
        outcome.hits,
        outcome.misses,
        store.len(),
        store.bytes(),
    );
}

/// Parses one record frame at `offset`. Returns `(key, payload, next
/// offset)` or `None` on any malformation — short frame, bad magic, bad
/// lengths, checksum/hash mismatch, invalid UTF-8, missing terminator.
fn parse_record(bytes: &[u8], offset: usize) -> Option<(String, String, usize)> {
    let rest = &bytes[offset..];
    let line_end = rest.iter().take(MAX_FRAME_LINE).position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&rest[..line_end]).ok()?;
    let mut fields = line.split(' ');
    if fields.next()? != "rec" {
        return None;
    }
    let hash = u64::from_str_radix(fields.next()?, 16).ok()?;
    let keylen: usize = fields.next()?.parse().ok()?;
    let paylen: usize = fields.next()?.parse().ok()?;
    let check = u64::from_str_radix(fields.next()?, 16).ok()?;
    if fields.next().is_some() {
        return None;
    }
    let body_start = line_end + 1;
    let body_end = body_start.checked_add(keylen)?.checked_add(paylen)?;
    if body_end.checked_add(1)? > rest.len() {
        return None;
    }
    if rest[body_end] != b'\n' {
        return None;
    }
    let key_bytes = &rest[body_start..body_start + keylen];
    let payload_bytes = &rest[body_start + keylen..body_end];
    if fnv1a64(key_bytes) != hash {
        return None;
    }
    if body_checksum(key_bytes, payload_bytes) != check {
        return None;
    }
    let key = std::str::from_utf8(key_bytes).ok()?.to_string();
    let payload = std::str::from_utf8(payload_bytes).ok()?.to_string();
    Some((key, payload, offset + body_end + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipo_workloads::all_mixes;

    fn temp_store(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pipo_store_unit_{}_{name}.log", std::process::id()))
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors; a silent change here would orphan
        // every record ever written.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_keys_are_stable() {
        let cell = MixCell::new(
            "k",
            all_mixes()[0],
            MonitorConfig::paper_default(),
            2_000_000,
            42,
        );
        let key = mix_cell_key(&cell);
        // Pin the exact canonical rendering: any accidental change silently
        // orphans all previously stored records.
        let expected = concat!(
            "pipo/v1 sys=cores:4,line:64,l1:256x4@2,l2:512x8@18,l3:4096x16@35,dram:200,repl:lru",
            " mix=mix1:libquantum+mcf+sphinx3+gobmk instr=2000000 seed=42",
            " mon=backend:auto,l:1024,b:8,f:12,mnk:4,thr:3,fseed:0x5151c0de,delay:50",
        );
        assert_eq!(
            key, expected,
            "canonical key changed — bump STORE_SCHEMA_VERSION if intended"
        );
        assert!(key.starts_with(&baseline_cell_key(
            &cell.system,
            &cell.mix,
            cell.instructions,
            cell.seed
        )));
    }

    #[test]
    fn shards_do_not_change_the_key() {
        let mk = |shards| {
            mix_cell_key(
                &MixCell::new("k", all_mixes()[1], MonitorConfig::paper_default(), 1000, 7)
                    .with_shards(shards),
            )
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn put_get_flush_reopen_round_trip() {
        let path = temp_store("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut store = ResultStore::open(&path).expect("open fresh");
        assert!(store.is_empty());
        store.put("key-a", "{\"v\": 1}");
        store.put("key-b", "{\"v\": 2}");
        assert_eq!(store.get("key-a"), Some("{\"v\": 1}"));
        assert_eq!(store.get("missing"), None);
        store.flush().expect("flush");
        store.flush().expect("idempotent flush");

        let mut reopened = ResultStore::open(&path).expect("reopen");
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.telemetry().recovered_records, 2);
        assert_eq!(reopened.telemetry().dropped_tail_bytes, 0);
        assert_eq!(reopened.get("key-b"), Some("{\"v\": 2}"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_puts_supersede_and_update_size() {
        let path = temp_store("supersede");
        std::fs::remove_file(&path).ok();
        let mut store = ResultStore::open(&path).expect("open");
        store.put("k", "short");
        let small = store.bytes();
        store.put("k", "a considerably longer payload");
        assert!(store.bytes() > small);
        assert_eq!(store.len(), 1);
        assert_eq!(store.telemetry().replacements, 1);
        store.put("k", "short");
        assert_eq!(store.bytes(), small);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_a_foreign_file() {
        let path = temp_store("foreign");
        std::fs::write(&path, "definitely not a store\n").expect("write");
        let err = ResultStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
