//! Shared command-line parsing for the figure harness binaries.
//!
//! Every binary accepts the same surface:
//!
//! ```text
//! <binary> [scale] [--json PATH] [--sequential | --threads N] [--shards N]
//!          [--filter BACKEND] [--help]
//! ```
//!
//! * `scale` — one optional unsigned integer whose meaning is per-binary
//!   (instructions per core, probe windows, trials, insertions, ...). Each
//!   binary's doc comment names it.
//! * `--json PATH` — additionally write machine-readable results to `PATH`.
//! * `--sequential` — evaluate sweep cells one at a time (the pre-engine
//!   behaviour; per-cell results are bit-identical either way).
//! * `--threads N` — evaluate sweep cells on `N` worker threads. The default
//!   is one thread per host core.
//! * `--shards N` — additionally parallelize *within* each simulated system:
//!   every `System::run` becomes an epoch-parallel `System::run_sharded`
//!   with `N` shards (bit-identical results; see `ARCHITECTURE.md`).
//!   Binaries whose cells do not run whole systems reject the flag.
//!   `--threads` and `--shards` multiply: `--threads T --shards S` can keep
//!   up to `T × S` worker threads runnable, so pair `--shards` with an
//!   explicit `--threads`/`--sequential` cell budget when the product would
//!   oversubscribe the host.
//! * `--filter BACKEND` — pattern-store backend for the simulated monitors
//!   (`auto`, `classic`, `bloom` or `xor`; default `auto`, the paper's
//!   hardware design). Binaries that do not build monitors — or that sweep
//!   backends themselves, like `ablation_filter` — reject the flag.
//! * `--trace PATH` — replay a recorded `pipo-trace` file (v1 text or v2
//!   binary, sniffed by magic) as an extra workload. Only `trace_replay`
//!   consumes recorded traces; every other binary rejects the flag.
//! * `--store PATH` — answer sweep cells from (and record new cells into)
//!   the persistent content-addressed result store at `PATH` — the same
//!   store a `pipo-serve` instance serves. Only the `System::run` sweep
//!   figures (`fig8_performance`, `sensitivity_secthr`,
//!   `ablation_replacement`) have store-keyed cells; the rest reject the
//!   flag.
//! * `--help` / `-h` — print the full flag list and exit 0.
//!
//! Unknown flags and unparsable values are reported on stderr and exit with
//! status 2 — they are never silently swallowed into a default. So are
//! *conflicting* flags: `--sequential` with `--threads N` (in either order)
//! is rejected instead of silently letting the last one win.

use auto_cuckoo::FilterBackend;

use crate::store::ResultStore;
use crate::sweep::ExecMode;

/// Usage string printed alongside argument errors and by `--help`.
pub const USAGE: &str = "\
usage: <binary> [scale] [--json PATH] [--sequential | --threads N] [--shards N]
                [--filter auto|classic|bloom|xor] [--trace PATH]
                [--store PATH] [--help]

  scale             optional unsigned integer; per-binary meaning
                    (instructions per core, probe windows, trials,
                    insertions, ...)
  --json PATH       additionally write machine-readable results to PATH
  --sequential      evaluate sweep cells one at a time
                    (conflicts with --threads)
  --threads N       evaluate sweep cells on N worker threads
                    (default: one per host core; conflicts with --sequential)
  --shards N        epoch-parallel sharding inside each simulated system
                    (System::run_sharded; bit-identical to unsharded runs)
  --filter BACKEND  pattern-store backend for the simulated monitors:
                    auto (paper default), classic, bloom or xor
  --trace PATH      replay a recorded pipo-trace file (v1 text or v2
                    binary); only trace_replay consumes recorded traces
  --store PATH      persistent content-addressed result store: warm sweep
                    cells are answered from it, cold cells recorded into it
                    (only the System::run sweep figures accept it)
  --help, -h        print this help and exit";

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// The optional positional scale argument (per-binary meaning).
    pub scale: Option<u64>,
    /// Where to write JSON results, if requested.
    pub json: Option<String>,
    /// How to execute sweep cells.
    pub mode: ExecMode,
    /// Epoch-parallel shards inside each simulated system (`--shards N`);
    /// `None` leaves every system on the plain sequential engine.
    pub shards: Option<usize>,
    /// Pattern-store backend for monitors (`--filter BACKEND`); `None`
    /// leaves the [`MonitorConfig`](pipomonitor::MonitorConfig) default
    /// (`auto`) in place.
    pub filter: Option<FilterBackend>,
    /// Path to a recorded trace file to replay (`--trace PATH`); only
    /// `trace_replay` consumes it, every other binary rejects the flag.
    pub trace: Option<String>,
    /// Path to the persistent result store (`--store PATH`); only the
    /// `System::run` sweep figures consume it, every other binary rejects
    /// the flag.
    pub store: Option<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, printing an error and exiting with status 2
    /// on an unknown flag or unparsable value. `--help`/`-h` prints the full
    /// flag list and exits 0.
    #[must_use]
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        if raw.iter().any(|a| a == "--help" || a == "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        match Self::try_parse(raw) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable core of [`parse`](Self::parse)).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown flag, a missing flag
    /// value, an unparsable number, or a duplicate positional argument.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self {
            scale: None,
            json: None,
            mode: ExecMode::host_default(),
            shards: None,
            filter: None,
            trace: None,
            store: None,
        };
        // Execution-mode flags seen so far, for conflict detection: the
        // combination `--sequential --threads N` (either order) must be an
        // error naming both flags, never a silent last-one-wins.
        let mut saw_sequential = false;
        let mut saw_threads: Option<usize> = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--json" => {
                    out.json = Some(it.next().ok_or("--json needs a file path")?);
                }
                "--sequential" => {
                    saw_sequential = true;
                    out.mode = ExecMode::Sequential;
                }
                "--threads" => {
                    let raw = it.next().ok_or("--threads needs a thread count")?;
                    let threads: usize = raw.parse().map_err(|_| {
                        format!("--threads expects a positive integer, got {raw:?}")
                    })?;
                    if threads == 0 {
                        return Err("--threads expects a positive integer, got 0".into());
                    }
                    saw_threads = Some(threads);
                    out.mode = ExecMode::with_threads(threads);
                }
                "--shards" => {
                    let raw = it.next().ok_or("--shards needs a shard count")?;
                    let shards: usize = raw
                        .parse()
                        .map_err(|_| format!("--shards expects a positive integer, got {raw:?}"))?;
                    if shards == 0 {
                        return Err("--shards expects a positive integer, got 0".into());
                    }
                    out.shards = Some(shards);
                }
                "--filter" => {
                    let raw = it.next().ok_or("--filter needs a backend name")?;
                    out.filter = Some(raw.parse().map_err(|_| {
                        format!("--filter expects one of auto, classic, bloom, xor; got {raw:?}")
                    })?);
                }
                "--trace" => {
                    out.trace = Some(it.next().ok_or("--trace needs a file path")?);
                }
                "--store" => {
                    out.store = Some(it.next().ok_or("--store needs a file path")?);
                }
                flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
                positional => {
                    if out.scale.is_some() {
                        return Err(format!("unexpected extra argument {positional:?}"));
                    }
                    out.scale = Some(positional.parse().map_err(|_| {
                        format!("unparsable scale argument {positional:?} (expected an unsigned integer)")
                    })?);
                }
            }
        }
        if saw_sequential {
            if let Some(threads) = saw_threads {
                return Err(format!(
                    "conflicting execution-mode flags: --sequential and --threads {threads} \
                     cannot be combined (pick one)"
                ));
            }
        }
        Ok(out)
    }

    /// The scale argument, or `default` when absent.
    #[must_use]
    pub fn scale_or(&self, default: u64) -> u64 {
        self.scale.unwrap_or(default)
    }

    /// For binaries with no scale parameter: rejects a positional argument
    /// (exit 2) instead of silently ignoring it — same contract as the rest
    /// of the parser.
    pub fn expect_no_scale(&self) {
        if let Some(scale) = self.scale {
            eprintln!("error: this binary takes no scale argument (got {scale})");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }

    /// For binaries whose cells do not run whole systems: rejects `--shards`
    /// (exit 2) instead of silently ignoring it. The message leads with the
    /// offending flag so a user scanning stderr (or a script grepping it)
    /// sees *which* flag was rejected, not just a usage dump
    /// (`crates/bench/tests/cli.rs` pins this for every binary).
    pub fn expect_no_shards(&self) {
        if let Some(shards) = self.shards {
            eprintln!(
                "error: unsupported flag `--shards {shards}`: this binary does not \
                 simulate whole systems, so epoch-parallel sharding has no effect"
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }

    /// For binaries that do not build monitors (or sweep the backends
    /// themselves): rejects `--filter` (exit 2) instead of silently ignoring
    /// it. Mirrors [`expect_no_shards`](Self::expect_no_shards): the message
    /// leads with the offending flag.
    pub fn expect_no_filter(&self) {
        if let Some(backend) = self.filter {
            eprintln!(
                "error: unsupported flag `--filter {backend}`: this binary does not \
                 take a pattern-store backend selection"
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }

    /// For binaries that do not replay recorded traces: rejects `--trace`
    /// (exit 2) instead of silently ignoring it. Mirrors
    /// [`expect_no_shards`](Self::expect_no_shards): the message leads with
    /// the offending flag.
    pub fn expect_no_trace(&self) {
        if let Some(path) = &self.trace {
            eprintln!(
                "error: unsupported flag `--trace {path}`: this binary does not \
                 replay recorded traces (use the trace_replay binary)"
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }

    /// For binaries whose cells are not store-keyed (no `System::run` sweep
    /// grid): rejects `--store` (exit 2) instead of silently ignoring it.
    /// Mirrors [`expect_no_shards`](Self::expect_no_shards): the message
    /// leads with the offending flag.
    pub fn expect_no_store(&self) {
        if let Some(path) = &self.store {
            eprintln!(
                "error: unsupported flag `--store {path}`: this binary has no \
                 store-keyed sweep cells (use fig8_performance, \
                 sensitivity_secthr or ablation_replacement)"
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }

    /// Opens the `--store` result store, exiting 1 with a diagnostic when
    /// the file exists but cannot be read or is not a store. `None` when
    /// the flag was absent.
    #[must_use]
    pub fn open_store(&self) -> Option<ResultStore> {
        let path = self.store.as_deref()?;
        match ResultStore::open(path) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("error: cannot open result store {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// The `--filter` backend, defaulting to the paper's `auto` design.
    #[must_use]
    pub fn filter_backend(&self) -> FilterBackend {
        self.filter.unwrap_or(FilterBackend::Auto)
    }

    /// The `--shards` value as a shard count, `1` (sequential) when absent.
    #[must_use]
    pub fn shards_or_sequential(&self) -> usize {
        self.shards.unwrap_or(1)
    }

    /// The scale argument read as instructions per core
    /// ([`DEFAULT_INSTRUCTIONS`](crate::DEFAULT_INSTRUCTIONS) when absent).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.scale_or(crate::DEFAULT_INSTRUCTIONS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::try_parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn empty_args_use_defaults() {
        let args = parse(&[]).expect("valid");
        assert_eq!(args.scale, None);
        assert_eq!(args.json, None);
        assert_eq!(args.instructions(), crate::DEFAULT_INSTRUCTIONS);
        assert_eq!(args.scale_or(17), 17);
    }

    #[test]
    fn positional_scale_and_flags() {
        let args = parse(&["50000", "--json", "out.json", "--threads", "3"]).expect("valid");
        assert_eq!(args.scale, Some(50_000));
        assert_eq!(args.instructions(), 50_000);
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert_eq!(args.mode.threads(), 3);
        assert_eq!(args.shards, None);
        assert_eq!(args.shards_or_sequential(), 1);
        assert_eq!(
            parse(&["--sequential"]).expect("valid").mode,
            ExecMode::Sequential
        );
    }

    #[test]
    fn shards_flag_parses_and_validates() {
        let args = parse(&["--shards", "4"]).expect("valid");
        assert_eq!(args.shards, Some(4));
        assert_eq!(args.shards_or_sequential(), 4);
        assert!(parse(&["--shards"]).unwrap_err().contains("shard count"));
        assert!(parse(&["--shards", "0"]).unwrap_err().contains('0'));
        assert!(parse(&["--shards", "four"]).unwrap_err().contains("four"));
    }

    #[test]
    fn conflicting_execution_modes_are_rejected_in_both_orders() {
        for args in [
            &["--sequential", "--threads", "4"][..],
            &["--threads", "4", "--sequential"][..],
            &["--threads", "4", "--json", "x.json", "--sequential"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(
                err.contains("--sequential") && err.contains("--threads"),
                "conflict message must name both flags: {err}"
            );
        }
        // Repeating one mode flag stays allowed (idempotent / last wins).
        assert_eq!(
            parse(&["--sequential", "--sequential"])
                .expect("valid")
                .mode,
            ExecMode::Sequential
        );
        assert_eq!(
            parse(&["--threads", "2", "--threads", "3"])
                .expect("valid")
                .mode
                .threads(),
            3
        );
    }

    #[test]
    fn store_flag_parses_a_path() {
        assert_eq!(parse(&[]).expect("valid").store, None);
        let args = parse(&["--store", "/tmp/results.store"]).expect("valid");
        assert_eq!(args.store.as_deref(), Some("/tmp/results.store"));
        assert!(parse(&["--store"]).unwrap_err().contains("file path"));
    }

    #[test]
    fn usage_enumerates_every_flag() {
        for flag in [
            "--json",
            "--sequential",
            "--threads",
            "--shards",
            "--filter",
            "--trace",
            "--store",
            "--help",
        ] {
            assert!(USAGE.contains(flag), "usage text must mention {flag}");
        }
        for backend in FilterBackend::ALL {
            assert!(
                USAGE.contains(backend.name()),
                "usage text must enumerate backend {backend}"
            );
        }
    }

    #[test]
    fn filter_flag_parses_every_backend() {
        assert_eq!(parse(&[]).expect("valid").filter, None);
        assert_eq!(
            parse(&[]).expect("valid").filter_backend(),
            FilterBackend::Auto
        );
        for backend in FilterBackend::ALL {
            let args = parse(&["--filter", backend.name()]).expect("valid");
            assert_eq!(args.filter, Some(backend));
            assert_eq!(args.filter_backend(), backend);
        }
        assert!(parse(&["--filter"]).unwrap_err().contains("backend name"));
        let err = parse(&["--filter", "ribbon"]).unwrap_err();
        assert!(err.contains("ribbon") && err.contains("auto"), "{err}");
    }

    #[test]
    fn trace_flag_parses_a_path() {
        assert_eq!(parse(&[]).expect("valid").trace, None);
        let args = parse(&["--trace", "traces/occupancy_sweep.trace2"]).expect("valid");
        assert_eq!(args.trace.as_deref(), Some("traces/occupancy_sweep.trace2"));
        assert!(parse(&["--trace"]).unwrap_err().contains("file path"));
    }

    #[test]
    fn unparsable_scale_is_an_error_not_a_default() {
        let err = parse(&["2e6"]).unwrap_err();
        assert!(err.contains("2e6"), "message names the argument: {err}");
        assert!(parse(&["-5"]).is_err(), "negative numbers look like flags");
    }

    #[test]
    fn bad_flags_are_errors() {
        assert!(parse(&["--jsno", "x"]).unwrap_err().contains("--jsno"));
        assert!(parse(&["--json"]).unwrap_err().contains("file path"));
        assert!(parse(&["--threads", "zero"]).unwrap_err().contains("zero"));
        assert!(parse(&["--threads", "0"]).unwrap_err().contains('0'));
        assert!(parse(&["1", "2"]).unwrap_err().contains("extra"));
    }
}
