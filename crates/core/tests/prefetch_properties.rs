//! Property tests of the prefetch queue's ordering, dedup, and sink-drain
//! invariants — the contracts the allocation-free observer path relies on.

use cache_sim::LineAddr;
use pipomonitor::PrefetchQueue;
use proptest::prelude::*;

/// `(line, gap)` schedule events: each event schedules `line` at a clock
/// `gap` cycles after the previous event (nondecreasing time, as in a real
/// simulation).
fn arb_events() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..32, 0u64..20), 1..200)
}

proptest! {
    /// Draining everything returns pending lines in schedule order, without
    /// duplicates, and exactly the set of lines scheduled since the last
    /// drain.
    #[test]
    fn drain_preserves_schedule_order_and_dedups(
        events in arb_events(),
        delay in 0u64..100,
    ) {
        let mut q = PrefetchQueue::new(delay);
        let mut now = 0;
        let mut expected = Vec::new();
        for &(line, gap) in &events {
            now += gap;
            q.schedule(LineAddr(line), now);
            if !expected.contains(&LineAddr(line)) {
                expected.push(LineAddr(line));
            }
        }
        prop_assert_eq!(q.len(), expected.len());
        let drained = q.drain_due(now + delay);
        prop_assert_eq!(drained, expected);
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.next_due(), None);
    }

    /// A partial drain at time `t` returns exactly the entries with release
    /// time `<= t`, and `next_due` always reports the earliest remaining
    /// release.
    #[test]
    fn partial_drains_respect_release_times(
        events in arb_events(),
        delay in 1u64..50,
        step in 1u64..40,
    ) {
        let mut q = PrefetchQueue::new(delay);
        let mut now = 0;
        let mut releases = Vec::new(); // (release, line) in schedule order
        for &(line, gap) in &events {
            now += gap;
            let l = LineAddr(line);
            if !releases.iter().any(|&(_, x)| x == l) {
                releases.push((now + delay, l));
            }
            q.schedule(l, now);
        }
        let mut t = 0;
        let mut drained_all = Vec::new();
        let mut buf = Vec::new();
        while !q.is_empty() {
            prop_assert_eq!(q.next_due(), releases.get(drained_all.len()).map(|&(r, _)| r));
            buf.clear();
            q.drain_due_into(t, &mut buf);
            for &line in &buf {
                drained_all.push(line);
            }
            // Everything due at or before t must be gone.
            if let Some(due) = q.next_due() {
                prop_assert!(due > t);
            }
            t += step;
        }
        let expected: Vec<_> = releases.iter().map(|&(_, l)| l).collect();
        prop_assert_eq!(drained_all, expected);
    }

    /// After draining, a line may be rescheduled; while pending it may not.
    /// `scheduled_total` counts accepted schedules only.
    #[test]
    fn dedup_window_is_the_pending_window(
        line in 0u64..16,
        delay in 0u64..20,
        attempts in 1u64..10,
    ) {
        let mut q = PrefetchQueue::new(delay);
        for i in 0..attempts {
            q.schedule(LineAddr(line), i); // all dup after the first
        }
        prop_assert_eq!(q.len(), 1);
        prop_assert_eq!(q.scheduled_total(), 1);
        let drained = q.drain_due(attempts + delay);
        prop_assert_eq!(drained.len(), 1);
        q.schedule(LineAddr(line), 1000);
        prop_assert_eq!(q.len(), 1);
        prop_assert_eq!(q.scheduled_total(), 2);
    }
}
