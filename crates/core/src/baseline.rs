//! The prior-work stateful baseline: a directory-style recording table.
//!
//! Previous stateful detectors (Wang et al., DATE 2020 / CF 2019 — the
//! paper's references \[5\], \[6\]) record Ping-Pong candidates in a
//! *set-associative tag table* indexed by line address. The paper's related-
//! work section levels two criticisms at this design, both of which this
//! module makes measurable:
//!
//! 1. **Storage** — the table stores full line tags, costing several times
//!    the Auto-Cuckoo filter's fingerprints for the same entry count (and an
//!    order of magnitude more when sized as a directory extension covering
//!    the whole LLC).
//! 2. **Determinism** — the table's set-indexed LRU layout lets an adversary
//!    construct a *small, deterministic* eviction set for the victim's
//!    record: `ways` fresh addresses that map to the same table set evict it
//!    reliably, every attack iteration, defeating detection. The Auto-Cuckoo
//!    filter's autonomic deletion removes that handle.
//!
//! [`DirectoryMonitor`] implements the same capture/tag/prefetch pipeline as
//! [`PiPoMonitor`](crate::PiPoMonitor) but records in the tag table, so the
//! two defenses are directly comparable under identical attacks (see the
//! `baseline_stateful` harness and `tests/baseline_bypass.rs`).

use auto_cuckoo::hash::mix64;
use cache_sim::{Cycle, LineAddr, TrafficObserver};

use crate::prefetch::PrefetchQueue;

/// Configuration of the directory-table baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryMonitorConfig {
    /// Number of table sets (power of two).
    pub sets: usize,
    /// Table associativity.
    pub ways: usize,
    /// Security saturation threshold (same meaning as `secThr`).
    pub threshold: u8,
    /// pEvict→prefetch delay in cycles.
    pub prefetch_delay: Cycle,
}

impl DirectoryMonitorConfig {
    /// A table with the same entry count (8192) and policy as the paper's
    /// Auto-Cuckoo configuration, for apples-to-apples comparison.
    #[must_use]
    pub fn paper_comparable() -> Self {
        Self {
            sets: 1024,
            ways: 8,
            threshold: 3,
            prefetch_delay: 50,
        }
    }

    /// Total entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Storage bits per entry: 1 valid + full line tag + 2-bit counter.
    /// The tag must distinguish every line mapping to a set: with
    /// `line_addr_bits`-bit line numbers, that is `line_addr_bits −
    /// log2(sets)` bits.
    #[must_use]
    pub fn bits_per_entry(&self, line_addr_bits: u32) -> u64 {
        let index_bits = self.sets.trailing_zeros();
        1 + u64::from(line_addr_bits.saturating_sub(index_bits)) + 2
    }

    /// Total storage bits.
    #[must_use]
    pub fn storage_bits(&self, line_addr_bits: u32) -> u64 {
        self.bits_per_entry(line_addr_bits) * self.entries() as u64
    }
}

impl Default for DirectoryMonitorConfig {
    fn default() -> Self {
        Self::paper_comparable()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    valid: bool,
    line: LineAddr,
    security: u8,
    stamp: u64,
}

/// Statistics of the baseline monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryMonitorStats {
    /// Demand fetches observed.
    pub fetches_observed: u64,
    /// Captures (Security reached the threshold).
    pub captures: u64,
    /// Records evicted from the table by conflicting insertions — each one
    /// is a deterministic-eviction opportunity for a defense-aware attacker.
    pub record_evictions: u64,
    /// Prefetches scheduled.
    pub prefetches_scheduled: u64,
}

/// The directory-table stateful detector (prior-work baseline).
///
/// # Examples
///
/// Captures a Ping-Pong line just like PiPoMonitor:
///
/// ```
/// use cache_sim::{LineAddr, TrafficObserver};
/// use pipomonitor::baseline::{DirectoryMonitor, DirectoryMonitorConfig};
///
/// let mut m = DirectoryMonitor::new(DirectoryMonitorConfig::paper_comparable());
/// let line = LineAddr(0x42);
/// assert!(!m.on_memory_fetch(line, 0));
/// m.on_memory_fetch(line, 1);
/// m.on_memory_fetch(line, 2);
/// assert!(m.on_memory_fetch(line, 3)); // secThr = 3 reached
/// ```
#[derive(Debug, Clone)]
pub struct DirectoryMonitor {
    config: DirectoryMonitorConfig,
    table: Vec<DirEntry>,
    clock: u64,
    queue: PrefetchQueue,
    stats: DirectoryMonitorStats,
}

impl DirectoryMonitor {
    /// Builds the baseline monitor.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(config: DirectoryMonitorConfig) -> Self {
        assert!(
            config.sets.is_power_of_two() && config.sets > 0,
            "table sets must be a power of two"
        );
        assert!(config.ways > 0, "table needs at least one way");
        Self {
            table: vec![DirEntry::default(); config.entries()],
            clock: 0,
            queue: PrefetchQueue::new(config.prefetch_delay),
            config,
            stats: DirectoryMonitorStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &DirectoryMonitorConfig {
        &self.config
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &DirectoryMonitorStats {
        &self.stats
    }

    /// The table set a line maps to. The index is hashed (so it does not
    /// alias with LLC set indexing), but the hash is *publicly computable* —
    /// which is precisely the weakness: an adversary searches for
    /// conflicting addresses and evicts any record deterministically.
    #[must_use]
    pub fn table_set_of(&self, line: LineAddr) -> usize {
        Self::set_for(line, self.config.sets)
    }

    /// Static version of [`table_set_of`](Self::table_set_of) (used by the
    /// attack tooling, which knows the indexing function).
    #[must_use]
    pub fn set_for(line: LineAddr, sets: usize) -> usize {
        (mix64(line.0 ^ 0xd1e_7ab1e) as usize) & (sets - 1)
    }

    /// Whether a record for `line` is currently present.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.table_set_of(line);
        let base = set * self.config.ways;
        self.table[base..base + self.config.ways]
            .iter()
            .any(|e| e.valid && e.line == line)
    }

    /// Current Security of a line's record, if present.
    #[must_use]
    pub fn security_of(&self, line: LineAddr) -> Option<u8> {
        let set = self.table_set_of(line);
        let base = set * self.config.ways;
        self.table[base..base + self.config.ways]
            .iter()
            .find(|e| e.valid && e.line == line)
            .map(|e| e.security)
    }
}

impl TrafficObserver for DirectoryMonitor {
    fn on_memory_fetch(&mut self, line: LineAddr, _now: Cycle) -> bool {
        self.stats.fetches_observed += 1;
        self.clock += 1;
        let ways = self.config.ways;
        let set = self.table_set_of(line);
        let base = set * ways;

        // Hit: bump Security (saturating at the threshold).
        for entry in &mut self.table[base..base + ways] {
            if entry.valid && entry.line == line {
                if entry.security < self.config.threshold {
                    entry.security += 1;
                }
                entry.stamp = self.clock;
                let captured = entry.security >= self.config.threshold;
                if captured {
                    self.stats.captures += 1;
                }
                return captured;
            }
        }

        // Miss: insert; LRU-evict deterministically when the set is full.
        let mut victim = base;
        let mut oldest = u64::MAX;
        for idx in base..base + ways {
            if !self.table[idx].valid {
                victim = idx;
                break;
            }
            if self.table[idx].stamp < oldest {
                oldest = self.table[idx].stamp;
                victim = idx;
            }
        }
        if self.table[victim].valid {
            self.stats.record_evictions += 1;
        }
        self.table[victim] = DirEntry {
            valid: true,
            line,
            security: 0,
            stamp: self.clock,
        };
        false
    }

    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        if protected && accessed {
            self.queue.schedule(line, now);
            self.stats.prefetches_scheduled += 1;
        }
    }

    fn next_prefetch_due(&self) -> Option<Cycle> {
        self.queue.next_due()
    }

    fn drain_due_prefetches(&mut self, now: Cycle, out: &mut Vec<LineAddr>) {
        self.queue.drain_due_into(now, out);
    }
}

/// Fresh line addresses that all map to `target`'s table set — a
/// deterministic record-eviction set for the directory baseline, found by
/// searching the (public) index hash. The `cursor` advances across calls so
/// every round yields fresh, LLC-cold addresses.
#[must_use]
pub fn table_flush_lines(
    config: &DirectoryMonitorConfig,
    target: LineAddr,
    cursor: &mut u64,
    attacker_base_line: u64,
) -> Vec<LineAddr> {
    let target_set = DirectoryMonitor::set_for(target, config.sets);
    let mut out = Vec::with_capacity(config.ways);
    while out.len() < config.ways {
        *cursor += 1;
        let line = LineAddr(attacker_base_line + *cursor);
        if DirectoryMonitor::set_for(line, config.sets) == target_set {
            out.push(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DirectoryMonitorConfig {
        DirectoryMonitorConfig {
            sets: 16,
            ways: 4,
            threshold: 3,
            prefetch_delay: 10,
        }
    }

    #[test]
    fn captures_after_threshold() {
        let mut m = DirectoryMonitor::new(small());
        let line = LineAddr(5);
        assert!(!m.on_memory_fetch(line, 0));
        assert!(!m.on_memory_fetch(line, 1));
        assert!(!m.on_memory_fetch(line, 2));
        assert!(m.on_memory_fetch(line, 3));
        assert_eq!(m.stats().captures, 1);
        assert_eq!(m.security_of(line), Some(3));
    }

    #[test]
    fn deterministic_eviction_with_ways_conflicts() {
        let cfg = small();
        let mut m = DirectoryMonitor::new(cfg);
        let target = LineAddr(5);
        m.on_memory_fetch(target, 0);
        assert!(m.contains(target));
        // Exactly `ways` fresh conflicting lines evict the record, always.
        let mut cursor = 0;
        for line in table_flush_lines(&cfg, target, &mut cursor, 1 << 20) {
            assert_eq!(m.table_set_of(line), m.table_set_of(target));
            m.on_memory_fetch(line, 1);
        }
        assert!(
            !m.contains(target),
            "directory record must be deterministically evicted"
        );
        assert!(m.stats().record_evictions >= 1);
    }

    #[test]
    fn flush_lines_are_fresh_across_rounds() {
        let cfg = small();
        let mut cursor = 0;
        let a = table_flush_lines(&cfg, LineAddr(5), &mut cursor, 1 << 20);
        let b = table_flush_lines(&cfg, LineAddr(5), &mut cursor, 1 << 20);
        for line in &b {
            assert!(!a.contains(line), "rounds must not reuse lines");
        }
    }

    #[test]
    fn lru_keeps_recently_touched_records() {
        let cfg = small();
        let mut m = DirectoryMonitor::new(cfg);
        let target = LineAddr(5);
        m.on_memory_fetch(target, 0);
        // Touch the target between conflicting fills: it stays resident
        // until `ways` *consecutive* fills displace it.
        let mut cursor = 0;
        for (i, line) in table_flush_lines(&cfg, target, &mut cursor, 1 << 20)
            .into_iter()
            .take(cfg.ways - 1)
            .enumerate()
        {
            m.on_memory_fetch(line, i as u64);
            m.on_memory_fetch(target, i as u64); // refresh LRU + security
        }
        assert!(m.contains(target));
    }

    #[test]
    fn pevict_schedules_prefetch_like_pipomonitor() {
        let mut m = DirectoryMonitor::new(small());
        m.on_llc_eviction(LineAddr(9), true, true, 100);
        assert_eq!(m.next_prefetch_due(), Some(110));
        let mut out = Vec::new();
        m.drain_due_prefetches(109, &mut out);
        assert_eq!(out, Vec::new());
        m.drain_due_prefetches(110, &mut out);
        assert_eq!(out, vec![LineAddr(9)]);
        // Unaccessed tagged eviction: suppressed.
        m.on_llc_eviction(LineAddr(9), true, false, 200);
        out.clear();
        m.drain_due_prefetches(1_000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn storage_dwarfs_the_filter() {
        // Same entry count in the Auto-Cuckoo filter: 15 bits per entry.
        let filter_bits = 8192 * 15;

        // A same-capacity tag table with 34-bit line numbers (40-bit
        // physical addresses, 64-byte lines) already costs ~1.8x.
        let cfg = DirectoryMonitorConfig::paper_comparable();
        let dir_bits = cfg.storage_bits(34);
        assert!(
            dir_bits as f64 > filter_bits as f64 * 1.5,
            "directory table {dir_bits} must cost well above filter {filter_bits}"
        );

        // Prior stateful work extends the directory across the whole 4 MB
        // LLC (65536 lines): an order of magnitude above the filter, the
        // paper's related-work claim.
        let full_extension = DirectoryMonitorConfig {
            sets: 65536,
            ways: 1,
            threshold: 3,
            prefetch_delay: 50,
        };
        let full_bits = full_extension.storage_bits(34);
        assert!(
            full_bits > filter_bits * 10,
            "directory extension {full_bits} must be an order of magnitude above {filter_bits}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_set_count() {
        let cfg = DirectoryMonitorConfig {
            sets: 12,
            ..small()
        };
        let _ = DirectoryMonitor::new(cfg);
    }
}
