//! PiPoMonitor configuration.

use std::error::Error;
use std::fmt;

use auto_cuckoo::{FilterBackend, FilterParams, ParamsError};
use cache_sim::Cycle;

/// Error building a [`PiPoMonitor`](crate::PiPoMonitor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildMonitorError {
    /// The embedded Auto-Cuckoo filter parameters were invalid.
    Filter(ParamsError),
}

impl fmt::Display for BuildMonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMonitorError::Filter(e) => write!(f, "invalid filter parameters: {e}"),
        }
    }
}

impl Error for BuildMonitorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildMonitorError::Filter(e) => Some(e),
        }
    }
}

impl From<ParamsError> for BuildMonitorError {
    fn from(e: ParamsError) -> Self {
        BuildMonitorError::Filter(e)
    }
}

/// Configuration of a PiPoMonitor instance.
///
/// # Examples
///
/// ```
/// use pipomonitor::MonitorConfig;
///
/// let cfg = MonitorConfig::paper_default();
/// assert_eq!(cfg.prefetch_delay, 50);
/// assert_eq!(cfg.filter.buckets(), 1024);
/// assert_eq!(cfg.backend, auto_cuckoo::FilterBackend::Auto);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Pattern-store geometry and policy (`l`, `b`, `f`, MNK, `secThr`).
    pub filter: FilterParams,
    /// Which [`PatternStore`](auto_cuckoo::PatternStore) implementation the
    /// monitor tracks patterns with. [`FilterBackend::Auto`] is the paper's
    /// hardware design and the default.
    pub backend: FilterBackend,
    /// Cycles to wait after a `pEvict` before issuing the prefetch, so the
    /// prefetch does not contend with the same line's writeback (paper §IV).
    pub prefetch_delay: Cycle,
}

impl MonitorConfig {
    /// The paper's Table II configuration: `l=1024, b=8, f=12, MNK=4,
    /// secThr=3`, with a 50-cycle prefetch delay.
    ///
    /// The paper does not publish the delay value; 50 cycles comfortably
    /// clears a posted writeback while staying far below the attacker's
    /// 5000-cycle probe interval. The sensitivity harness sweeps it.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            filter: FilterParams::paper_default(),
            backend: FilterBackend::Auto,
            prefetch_delay: 50,
        }
    }

    /// Replaces the filter parameters.
    #[must_use]
    pub fn with_filter(mut self, filter: FilterParams) -> Self {
        self.filter = filter;
        self
    }

    /// Replaces the pattern-store backend.
    #[must_use]
    pub fn with_backend(mut self, backend: FilterBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the prefetch delay.
    #[must_use]
    pub fn with_prefetch_delay(mut self, delay: Cycle) -> Self {
        self.prefetch_delay = delay;
        self
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auto_cuckoo::FilterParams;

    #[test]
    fn default_matches_paper() {
        let cfg = MonitorConfig::paper_default();
        assert_eq!(cfg.filter, FilterParams::paper_default());
        assert_eq!(MonitorConfig::default(), cfg);
    }

    #[test]
    fn with_builders_replace_fields() {
        let filter = FilterParams::builder().buckets(512).build().expect("valid");
        let cfg = MonitorConfig::paper_default()
            .with_filter(filter)
            .with_backend(FilterBackend::Bloom)
            .with_prefetch_delay(100);
        assert_eq!(cfg.filter.buckets(), 512);
        assert_eq!(cfg.backend, FilterBackend::Bloom);
        assert_eq!(cfg.prefetch_delay, 100);
    }

    #[test]
    fn error_wraps_filter_error() {
        let params_err = FilterParams::builder().buckets(3).build().unwrap_err();
        let err = BuildMonitorError::from(params_err.clone());
        assert!(err.to_string().contains("filter"));
        assert_eq!(err, BuildMonitorError::Filter(params_err));
    }
}
