//! PiPoMonitor: a stateful, detection-based defense against cross-core
//! last-level-cache side-channel attacks.
//!
//! PiPoMonitor sits in the memory controller and watches LLC↔memory traffic
//! through the [`cache_sim::TrafficObserver`] hook. Every demand fetch is
//! recorded in a pluggable [`auto_cuckoo::PatternStore`] (the paper's
//! [`auto_cuckoo::AutoCuckooFilter`] by default); when a line's re-access
//! (`Security`) counter reaches `secThr` it is captured as a **Ping-Pong
//! line** — the temporal signature of an attacker repeatedly evicting a
//! victim line and the victim re-fetching it. Captured lines are tagged in
//! the LLC; when a tagged-and-accessed line is evicted, the monitor
//! prefetches it back after a short delay, so the attacker's probes always
//! observe a resident line and learn nothing.
//!
//! The monitor participates in the simulator's allocation-free hot path: its
//! [`PrefetchQueue`] deduplicates pending lines through an O(1) membership
//! set, exposes the earliest release time via [`PrefetchQueue::next_due`] so
//! the system only drains when a prefetch is actually due, and drains into a
//! caller-owned reusable buffer ([`PrefetchQueue::drain_due_into`]) instead
//! of allocating a `Vec` per call.
//!
//! # Examples
//!
//! Running a workload on a monitored system:
//!
//! ```
//! use cache_sim::{Access, Addr, CoreId, System, SystemConfig};
//! use pipomonitor::{MonitorConfig, PiPoMonitor};
//!
//! # fn main() -> Result<(), pipomonitor::BuildMonitorError> {
//! let monitor = PiPoMonitor::new(MonitorConfig::paper_default())?;
//! let mut system = System::new(SystemConfig::small_test(), monitor);
//! let mut i = 0u64;
//! system.set_source(CoreId(0), Box::new(move || {
//!     i += 1;
//!     Some(Access::read(Addr((i % 128) * 64)).after(5))
//! }));
//! let report = system.run(10_000);
//! let stats = system.observer().stats();
//! assert_eq!(stats.fetches_observed, report.stats.total_memory_fetches());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod monitor;
pub mod overhead;
pub mod prefetch;

pub use baseline::{DirectoryMonitor, DirectoryMonitorConfig, DirectoryMonitorStats};
pub use config::{BuildMonitorError, MonitorConfig};
pub use monitor::{MonitorStats, PiPoMonitor};
pub use overhead::{area_estimate_mm2, OverheadReport};
pub use prefetch::PrefetchQueue;
