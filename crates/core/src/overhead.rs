//! Hardware overhead accounting (paper §VII-D).
//!
//! Storage is exact arithmetic over the filter geometry. Area is an estimate
//! scaled linearly from the paper's published CACTI 7 numbers at 22 nm
//! (0.013 mm² for the 15 KB, 8192-entry configuration against a 4 MB LLC);
//! CACTI itself is not available offline, so this substitution is documented
//! under "Recorded substitutions" in `ARCHITECTURE.md`.

use auto_cuckoo::{FilterParams, StorageOverhead};

/// The paper's published area for its 15 KB filter configuration, in mm².
const PAPER_AREA_MM2: f64 = 0.013;
/// Storage bits of the paper's configuration (8192 entries × 15 bits).
const PAPER_BITS: f64 = 8192.0 * 15.0;

/// Estimated silicon area of a filter configuration at 22 nm, scaled
/// linearly in storage bits from the paper's CACTI 7 data point.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::FilterParams;
/// use pipomonitor::area_estimate_mm2;
///
/// let area = area_estimate_mm2(&FilterParams::paper_default());
/// assert!((area - 0.013).abs() < 1e-9);
/// ```
#[must_use]
pub fn area_estimate_mm2(params: &FilterParams) -> f64 {
    let bits = (1 + params.fingerprint_bits() as u64 + 2) * params.capacity() as u64;
    PAPER_AREA_MM2 * bits as f64 / PAPER_BITS
}

/// Full hardware-overhead report for a monitor deployment (the §VII-D
/// table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Storage accounting.
    pub storage: StorageOverhead,
    /// Estimated area in mm².
    pub area_mm2: f64,
    /// Area relative to the paper's 4 MB LLC (the paper reports 0.32 %).
    pub area_relative_to_llc: f64,
}

impl OverheadReport {
    /// Computes the report for a filter protecting an LLC of `llc_bytes`.
    ///
    /// # Examples
    ///
    /// ```
    /// use auto_cuckoo::FilterParams;
    /// use pipomonitor::OverheadReport;
    ///
    /// let r = OverheadReport::for_filter(&FilterParams::paper_default(), 4 << 20);
    /// assert!((r.storage.total_kib - 15.0).abs() < 1e-9);
    /// assert!((r.storage.relative_to_llc * 100.0 - 0.37).abs() < 0.01);
    /// ```
    #[must_use]
    pub fn for_filter(params: &FilterParams, llc_bytes: u64) -> Self {
        let storage = StorageOverhead::for_filter(params, llc_bytes);
        let area_mm2 = area_estimate_mm2(params);
        // The paper's LLC area baseline: 0.013 mm² is 0.32% of the LLC, so
        // the LLC is ~4.06 mm²; scale with LLC capacity.
        let paper_llc_area = PAPER_AREA_MM2 / 0.0032;
        let llc_area = paper_llc_area * llc_bytes as f64 / (4 << 20) as f64;
        Self {
            storage,
            area_mm2,
            area_relative_to_llc: area_mm2 / llc_area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_published_numbers() {
        let r = OverheadReport::for_filter(&FilterParams::paper_default(), 4 << 20);
        assert_eq!(r.storage.entries, 8192);
        assert_eq!(r.storage.bits_per_entry, 15);
        assert!((r.storage.total_kib - 15.0).abs() < 1e-9);
        assert!((r.area_mm2 - 0.013).abs() < 1e-12);
        assert!((r.area_relative_to_llc - 0.0032).abs() < 1e-6);
    }

    #[test]
    fn area_scales_linearly_with_bits() {
        let half = FilterParams::builder().buckets(512).build().expect("valid");
        assert!((area_estimate_mm2(&half) - 0.013 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_an_order_below_directory_extension() {
        // The paper's claim: an order of magnitude below prior stateful
        // approaches. A directory extension storing a 26-bit line tag plus a
        // 2-bit counter per LLC line would cost 65536 * 28 bits = 224 KiB;
        // the filter costs 15 KiB.
        let filter = OverheadReport::for_filter(&FilterParams::paper_default(), 4 << 20);
        let directory_bits = 65536.0 * 28.0;
        assert!(filter.storage.total_bits as f64 * 10.0 < directory_bits * 1.5);
    }
}
