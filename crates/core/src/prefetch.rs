//! The delayed prefetch queue fed by `pEvict` messages.
//!
//! When the LLC evicts a tagged-and-accessed line it sends a `pEvict` to the
//! monitor. The monitor waits `prefetch_delay` cycles (so the prefetch does
//! not contend with the same line's writeback) and then asks the memory fetch
//! queue to bring the line back into the LLC (paper §IV, "Prefetching
//! Ping-Pong lines").
//!
//! The queue is built for the simulator's allocation-free hot path: duplicate
//! suppression is O(1) via a membership set kept in sync with the FIFO
//! (instead of a linear scan of pending entries), draining appends into a
//! caller-owned buffer, and [`next_due`](PrefetchQueue::next_due) exposes the
//! earliest release time so callers only drain when something is ready.

use std::collections::{HashSet, VecDeque};

use cache_sim::{Cycle, LineAddr};

/// A FIFO of pending prefetches with release times.
///
/// # Examples
///
/// ```
/// use cache_sim::LineAddr;
/// use pipomonitor::PrefetchQueue;
///
/// let mut q = PrefetchQueue::new(50);
/// q.schedule(LineAddr(7), 100);
/// assert_eq!(q.next_due(), Some(150));
/// assert!(q.drain_due(149).is_empty()); // not due yet
/// assert_eq!(q.drain_due(150), vec![LineAddr(7)]);
/// ```
#[derive(Debug, Default)]
pub struct PrefetchQueue {
    delay: Cycle,
    pending: VecDeque<(Cycle, LineAddr)>,
    /// Lines currently in `pending`, for O(1) duplicate suppression.
    members: HashSet<LineAddr>,
    scheduled_total: u64,
}

impl Clone for PrefetchQueue {
    fn clone(&self) -> Self {
        Self {
            delay: self.delay,
            pending: self.pending.clone(),
            members: self.members.clone(),
            scheduled_total: self.scheduled_total,
        }
    }

    /// Overwrites `self` with `source` while reusing the queue and member-
    /// set allocations (the epoch-parallel engine snapshots the monitor —
    /// queue included — once per committing epoch; see
    /// `AutoCuckooFilter::clone_from`).
    fn clone_from(&mut self, source: &Self) {
        self.delay = source.delay;
        self.pending.clone_from(&source.pending);
        self.members.clone_from(&source.members);
        self.scheduled_total = source.scheduled_total;
    }
}

impl PrefetchQueue {
    /// Creates a queue with the given release delay.
    #[must_use]
    pub fn new(delay: Cycle) -> Self {
        Self {
            delay,
            pending: VecDeque::new(),
            members: HashSet::new(),
            scheduled_total: 0,
        }
    }

    /// Configured delay between `pEvict` and prefetch issue.
    #[must_use]
    pub fn delay(&self) -> Cycle {
        self.delay
    }

    /// Enqueues a prefetch for `line`, releasing at `now + delay`.
    ///
    /// A line already pending is not enqueued twice (the LLC cannot evict the
    /// same line twice without it being refetched in between, but prefetch
    /// cascades could otherwise duplicate work).
    pub fn schedule(&mut self, line: LineAddr, now: Cycle) {
        if !self.members.insert(line) {
            return;
        }
        self.pending.push_back((now + self.delay, line));
        self.scheduled_total += 1;
    }

    /// Release time of the prefetch at the head of the FIFO, or `None` if
    /// empty.
    ///
    /// Prefetches issue strictly in schedule order (a hardware-style FIFO
    /// with head-of-line blocking): because simulated cores apply their
    /// think time *after* being scheduled, `pEvict` timestamps — and hence
    /// release times — are not globally monotone, so an entry behind the
    /// head can in principle have an earlier release. It still waits for the
    /// head. This matches the queue's behaviour since the seed
    /// implementation; the bit-identity goldens pin it.
    #[must_use]
    pub fn next_due(&self) -> Option<Cycle> {
        self.pending.front().map(|&(release, _)| release)
    }

    /// Pops the longest due prefix of the FIFO (every entry from the front
    /// whose release time is `<= now`) into `out`, preserving schedule
    /// order. In-order issue: a due entry parked behind a not-yet-due head
    /// stays queued (see [`next_due`](Self::next_due)).
    ///
    /// The caller owns (and typically reuses) `out`, so steady-state draining
    /// allocates nothing.
    pub fn drain_due_into(&mut self, now: Cycle, out: &mut Vec<LineAddr>) {
        while let Some(&(release, line)) = self.pending.front() {
            if release > now {
                break;
            }
            self.pending.pop_front();
            self.members.remove(&line);
            out.push(line);
        }
    }

    /// Removes and returns every line whose release time is `<= now`.
    ///
    /// Allocating convenience wrapper around
    /// [`drain_due_into`](Self::drain_due_into) for tests and examples; the
    /// simulator hot path uses the buffer-reusing form.
    pub fn drain_due(&mut self, now: Cycle) -> Vec<LineAddr> {
        let mut due = Vec::new();
        self.drain_due_into(now, &mut due);
        due
    }

    /// Number of prefetches currently pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no prefetches are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total prefetches ever scheduled.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_delay() {
        let mut q = PrefetchQueue::new(10);
        q.schedule(LineAddr(1), 0);
        assert!(q.drain_due(9).is_empty());
        assert_eq!(q.drain_due(10), vec![LineAddr(1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_delay_releases_immediately() {
        let mut q = PrefetchQueue::new(0);
        q.schedule(LineAddr(2), 42);
        assert_eq!(q.next_due(), Some(42));
        assert_eq!(q.drain_due(42), vec![LineAddr(2)]);
    }

    #[test]
    fn preserves_fifo_order() {
        let mut q = PrefetchQueue::new(5);
        q.schedule(LineAddr(1), 0);
        q.schedule(LineAddr(2), 1);
        q.schedule(LineAddr(3), 2);
        assert_eq!(
            q.drain_due(100),
            vec![LineAddr(1), LineAddr(2), LineAddr(3)]
        );
    }

    #[test]
    fn partial_drain_keeps_later_entries() {
        let mut q = PrefetchQueue::new(10);
        q.schedule(LineAddr(1), 0); // due at 10
        q.schedule(LineAddr(2), 20); // due at 30
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.drain_due(15), vec![LineAddr(1)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_due(), Some(30));
        assert_eq!(q.drain_due(30), vec![LineAddr(2)]);
        assert_eq!(q.next_due(), None);
    }

    #[test]
    fn deduplicates_pending_lines() {
        let mut q = PrefetchQueue::new(10);
        q.schedule(LineAddr(1), 0);
        q.schedule(LineAddr(1), 5);
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 1);
        assert_eq!(q.drain_due(100).len(), 1);
        // After draining, the line may be scheduled again.
        q.schedule(LineAddr(1), 50);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn drain_due_into_appends_without_clearing() {
        let mut q = PrefetchQueue::new(0);
        q.schedule(LineAddr(1), 1);
        let mut buf = vec![LineAddr(99)];
        q.drain_due_into(5, &mut buf);
        assert_eq!(buf, vec![LineAddr(99), LineAddr(1)]);
    }
}
