//! The PiPoMonitor itself: filter queries on memory fetches, `pEvict`
//! handling, and prefetch scheduling. Implements
//! [`cache_sim::TrafficObserver`] so it plugs into the memory controller of
//! the simulated system.

use auto_cuckoo::{build_store, AutoCuckooFilter, PatternStore};
use cache_sim::{Cycle, LineAddr, TrafficObserver};

use crate::config::{BuildMonitorError, MonitorConfig};
use crate::prefetch::PrefetchQueue;

/// Cumulative monitor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Demand fetches observed at the memory controller.
    pub fetches_observed: u64,
    /// Fetches whose filter response reached `secThr` (lines tagged as
    /// Ping-Pong on their way into the LLC).
    pub captures: u64,
    /// `pEvict` messages received (evictions of tagged lines).
    pub pevicts: u64,
    /// Prefetches actually scheduled (tagged *and* accessed evictions).
    pub prefetches_scheduled: u64,
    /// Tagged-but-never-accessed evictions: prefetch suppressed to avoid the
    /// endless-prefetch loop (paper §IV, last paragraph).
    pub prefetches_suppressed: u64,
}

impl MonitorStats {
    /// Adds another statistics block into this one.
    ///
    /// Every counter is a plain sum, so combining deltas from independent
    /// monitor instances (e.g. harness aggregation across runs) is
    /// associative and commutative: any merge order produces identical
    /// totals. The epoch-parallel engine relies on the snapshot/restore of
    /// the whole observer instead of merging, but the property tests in
    /// `tests/observer_merge.rs` pin this contract for aggregating callers.
    pub fn absorb(&mut self, other: &MonitorStats) {
        self.fetches_observed += other.fetches_observed;
        self.captures += other.captures;
        self.pevicts += other.pevicts;
        self.prefetches_scheduled += other.prefetches_scheduled;
        self.prefetches_suppressed += other.prefetches_suppressed;
    }
}

/// The monitor deployed in the memory controller (paper Fig. 2).
///
/// Use it as the observer of a [`cache_sim::System`] (or pass it to
/// [`cache_sim::Hierarchy::access`] directly for fine-grained attack
/// experiments).
///
/// # Examples
///
/// Detecting a Ping-Pong pattern at the traffic level:
///
/// ```
/// use cache_sim::{LineAddr, TrafficObserver};
/// use pipomonitor::{MonitorConfig, PiPoMonitor};
///
/// # fn main() -> Result<(), pipomonitor::BuildMonitorError> {
/// let mut monitor = PiPoMonitor::new(MonitorConfig::paper_default())?;
/// let line = LineAddr(0x99);
/// // The same line fetched from memory four times: insert + 3 re-accesses
/// // reaches secThr = 3, so the fourth fetch tags the line.
/// assert!(!monitor.on_memory_fetch(line, 0));
/// assert!(!monitor.on_memory_fetch(line, 100));
/// assert!(!monitor.on_memory_fetch(line, 200));
/// assert!(monitor.on_memory_fetch(line, 300));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PiPoMonitor {
    config: MonitorConfig,
    store: Box<dyn PatternStore>,
    queue: PrefetchQueue,
    stats: MonitorStats,
}

impl Clone for PiPoMonitor {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            store: self.store.clone_box(),
            queue: self.queue.clone(),
            stats: self.stats,
        }
    }

    /// Overwrites `self` with `source` while reusing the pattern-store and
    /// prefetch-queue allocations, so the epoch-parallel engine's
    /// once-per-epoch observer snapshot is a plain copy instead of an
    /// allocation (mirrors `Cache::clone_from` on the LLC snapshots).
    /// Delegates to [`PatternStore::clone_from_store`], which requires both
    /// monitors to use the same backend.
    fn clone_from(&mut self, source: &Self) {
        self.config = source.config;
        self.store.clone_from_store(source.store.as_ref());
        self.queue.clone_from(&source.queue);
        self.stats = source.stats;
    }
}

impl PiPoMonitor {
    /// Builds a monitor.
    ///
    /// # Errors
    ///
    /// Returns [`BuildMonitorError`] when the filter parameters are invalid.
    pub fn new(config: MonitorConfig) -> Result<Self, BuildMonitorError> {
        let store = build_store(config.backend, config.filter)?;
        Ok(Self {
            queue: PrefetchQueue::new(config.prefetch_delay),
            store,
            config,
            stats: MonitorStats::default(),
        })
    }

    /// The monitor configuration.
    #[must_use]
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Monitor statistics.
    #[must_use]
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// The embedded pattern store (read access for experiments), whatever
    /// backend [`MonitorConfig::backend`] selected.
    #[must_use]
    pub fn pattern_store(&self) -> &dyn PatternStore {
        self.store.as_ref()
    }

    /// The embedded Auto-Cuckoo filter (read access for experiments).
    ///
    /// # Panics
    ///
    /// Panics when the monitor was built with a non-`auto` backend; use
    /// [`Self::pattern_store`] for backend-agnostic access.
    #[deprecated(since = "0.1.0", note = "use `pattern_store()` instead")]
    #[must_use]
    pub fn filter(&self) -> &AutoCuckooFilter {
        self.store
            .as_any()
            .downcast_ref::<AutoCuckooFilter>()
            .expect("PiPoMonitor::filter() requires the `auto` backend")
    }

    /// Pending prefetch queue (read access for experiments).
    #[must_use]
    pub fn queue(&self) -> &PrefetchQueue {
        &self.queue
    }

    /// False positives per million instructions, given the run's instruction
    /// count. The paper counts *every* capture as a false positive in benign
    /// workloads (Fig. 8(b)).
    #[must_use]
    pub fn false_positives_per_mi(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.stats.captures as f64 * 1.0e6 / instructions as f64
        }
    }
}

impl TrafficObserver for PiPoMonitor {
    // Observer events fire on memory fetches and LLC evictions — a few
    // percent of accesses — but their inlined bodies (cuckoo query, queue
    // maintenance) would bloat every monitored instantiation of the
    // simulation hot loop. Keeping them out of line costs one call on the
    // rare path and keeps the per-access path compact.
    #[inline(never)]
    fn on_memory_fetch(&mut self, line: LineAddr, _now: Cycle) -> bool {
        self.stats.fetches_observed += 1;
        let outcome = self.store.query(line.0);
        if outcome.captured {
            self.stats.captures += 1;
        }
        outcome.captured
    }

    #[inline(never)]
    fn on_llc_eviction(&mut self, line: LineAddr, protected: bool, accessed: bool, now: Cycle) {
        if !protected {
            return;
        }
        self.stats.pevicts += 1;
        if accessed {
            self.queue.schedule(line, now);
            self.stats.prefetches_scheduled += 1;
        } else {
            // Tagged line evicted without ever being re-accessed: do not
            // prefetch again, ending the protection cycle for this line.
            self.stats.prefetches_suppressed += 1;
        }
    }

    fn next_prefetch_due(&self) -> Option<Cycle> {
        self.queue.next_due()
    }

    fn drain_due_prefetches(&mut self, now: Cycle, out: &mut Vec<LineAddr>) {
        self.queue.drain_due_into(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, Addr, CoreId, Hierarchy, SystemConfig};

    fn monitor() -> PiPoMonitor {
        PiPoMonitor::new(MonitorConfig::paper_default()).expect("valid config")
    }

    #[test]
    fn capture_after_threshold_reaccesses() {
        let mut m = monitor();
        let line = LineAddr(42);
        assert!(!m.on_memory_fetch(line, 0));
        assert!(!m.on_memory_fetch(line, 1));
        assert!(!m.on_memory_fetch(line, 2));
        assert!(m.on_memory_fetch(line, 3));
        assert_eq!(m.stats().captures, 1);
        assert_eq!(m.stats().fetches_observed, 4);
    }

    #[test]
    fn distinct_lines_do_not_capture() {
        let mut m = monitor();
        for i in 0..1000u64 {
            assert!(!m.on_memory_fetch(LineAddr(i * 17 + 3), i));
        }
        // Fingerprint collisions could in principle capture, but 1000 random
        // lines in an 8192-entry filter with f=12 make it overwhelmingly
        // unlikely; the paper's ε is 0.004 per lookup.
        assert_eq!(m.stats().captures, 0);
    }

    fn due(m: &mut PiPoMonitor, now: Cycle) -> Vec<LineAddr> {
        let mut out = Vec::new();
        m.drain_due_prefetches(now, &mut out);
        out
    }

    #[test]
    fn pevict_of_accessed_line_schedules_prefetch() {
        let mut m = monitor();
        let line = LineAddr(7);
        m.on_llc_eviction(line, true, true, 100);
        assert_eq!(m.stats().prefetches_scheduled, 1);
        assert_eq!(m.next_prefetch_due(), Some(150));
        assert!(due(&mut m, 100 + 49).is_empty());
        assert_eq!(due(&mut m, 100 + 50), vec![line]);
        assert_eq!(m.next_prefetch_due(), None);
    }

    #[test]
    fn pevict_of_unaccessed_line_is_suppressed() {
        let mut m = monitor();
        m.on_llc_eviction(LineAddr(7), true, false, 100);
        assert_eq!(m.stats().prefetches_scheduled, 0);
        assert_eq!(m.stats().prefetches_suppressed, 1);
        assert_eq!(m.next_prefetch_due(), None);
        assert!(due(&mut m, 10_000).is_empty());
    }

    #[test]
    fn unprotected_evictions_are_ignored() {
        let mut m = monitor();
        m.on_llc_eviction(LineAddr(7), false, true, 100);
        assert_eq!(m.stats().pevicts, 0);
        assert!(due(&mut m, 10_000).is_empty());
    }

    #[test]
    fn false_positive_rate_helper() {
        let mut m = monitor();
        for _ in 0..4 {
            m.on_memory_fetch(LineAddr(1), 0);
        }
        assert!((m.false_positives_per_mi(1_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(m.false_positives_per_mi(0), 0.0);
    }

    #[test]
    fn every_backend_captures_the_pattern() {
        for backend in auto_cuckoo::FilterBackend::ALL {
            let cfg = MonitorConfig::paper_default().with_backend(backend);
            let mut m = PiPoMonitor::new(cfg).expect("valid config");
            let line = LineAddr(42);
            assert!(!m.on_memory_fetch(line, 0), "{backend}: premature capture");
            assert!(!m.on_memory_fetch(line, 1), "{backend}: premature capture");
            assert!(!m.on_memory_fetch(line, 2), "{backend}: premature capture");
            assert!(m.on_memory_fetch(line, 3), "{backend}: missed capture");
            assert_eq!(m.pattern_store().backend(), backend);
            assert!(m.pattern_store().contains(42));
        }
    }

    #[test]
    fn clone_from_preserves_backend_state() {
        for backend in auto_cuckoo::FilterBackend::ALL {
            let cfg = MonitorConfig::paper_default().with_backend(backend);
            let mut a = PiPoMonitor::new(cfg).expect("valid config");
            for i in 0..100u64 {
                a.on_memory_fetch(LineAddr(i * 3), i);
            }
            let mut b = PiPoMonitor::new(cfg).expect("valid config");
            b.clone_from(&a);
            assert_eq!(b.stats(), a.stats(), "{backend}: stats diverged");
            assert_eq!(
                b.pattern_store().len(),
                a.pattern_store().len(),
                "{backend}: store length diverged"
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_filter_shim_still_works_on_auto() {
        let mut m = monitor();
        m.on_memory_fetch(LineAddr(9), 0);
        assert!(m.filter().contains(9));
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "requires the `auto` backend")]
    fn deprecated_filter_shim_panics_on_other_backends() {
        let cfg = MonitorConfig::paper_default().with_backend(auto_cuckoo::FilterBackend::Bloom);
        let m = PiPoMonitor::new(cfg).expect("valid config");
        let _ = m.filter();
    }

    /// End-to-end: a line ping-ponging between LLC and memory gets tagged,
    /// and its eviction is answered with a prefetch that restores it.
    #[test]
    fn end_to_end_protection_cycle() {
        let mut h = Hierarchy::new(SystemConfig::small_test());
        let mut m = monitor();
        let victim = Addr(0);
        let sets = h.llc_sets() as u64;
        let ls = h.line_size();
        let ways = h.llc_ways() as u64;

        // Repeatedly: victim touches its line, attacker core blasts the set.
        for round in 0..6u64 {
            let t = round * 10_000;
            h.access(CoreId(0), victim, AccessKind::Read, t, &mut m);
            for i in 1..=ways {
                h.access(
                    CoreId(1),
                    Addr((round * ways + i) * sets * ls),
                    AccessKind::Read,
                    t + i,
                    &mut m,
                );
            }
            // Drain any due prefetches before the next round.
            h.drain_prefetches(t + 9_000, &mut m);
        }
        assert!(
            m.stats().captures > 0,
            "ping-pong pattern must be captured: {:?}",
            m.stats()
        );
        assert!(m.stats().prefetches_scheduled > 0);
        // After the last drain, the victim line should be back in the LLC.
        assert!(
            h.llc_contains(victim),
            "prefetch must restore the victim line"
        );
    }
}
