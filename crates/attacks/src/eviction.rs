//! LLC eviction-set construction and the prime/probe primitives.

use cache_sim::{AccessKind, Addr, CoreId, Cycle, Hierarchy, TrafficObserver};

/// Latency above which a probe access is classified as an LLC miss.
/// An L3 hit costs 35 cycles; a memory fetch costs 235. Anything above 100
/// must have left the chip.
pub const MISS_THRESHOLD: Cycle = 100;

/// A set of attacker-controlled addresses that all map to one LLC set.
///
/// Priming the set fills every way of the target's LLC set with attacker
/// lines; a subsequent victim fetch into that set must evict one of them,
/// which the probe detects as a long-latency re-access (Liu et al., S&P
/// 2015).
///
/// # Examples
///
/// ```
/// use cache_sim::{Addr, Hierarchy, SystemConfig};
/// use pipo_attacks::EvictionSet;
///
/// let h = Hierarchy::new(SystemConfig::paper_default());
/// let target = Addr(0x10_0000_0000);
/// let set = EvictionSet::for_target(&h, target, 0x66_0000_0000);
/// assert_eq!(set.len(), h.llc_ways());
/// for &addr in set.addrs() {
///     assert_eq!(h.llc_set_of(addr), h.llc_set_of(target));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionSet {
    addrs: Vec<Addr>,
    target_set: usize,
}

impl EvictionSet {
    /// Builds an eviction set for `target` from the attacker's address
    /// region starting at `attacker_base` (must not overlap the victim's
    /// memory). One address per LLC way.
    ///
    /// The construction assumes knowledge of the address→set mapping, the
    /// standard starting point for LLC Prime+Probe.
    #[must_use]
    pub fn for_target(hierarchy: &Hierarchy, target: Addr, attacker_base: u64) -> Self {
        Self::with_ways(hierarchy, target, attacker_base, hierarchy.llc_ways())
    }

    /// Builds an eviction set with an explicit number of lines.
    #[must_use]
    pub fn with_ways(hierarchy: &Hierarchy, target: Addr, attacker_base: u64, ways: usize) -> Self {
        let line_size = hierarchy.line_size();
        let sets = hierarchy.llc_sets() as u64;
        let target_set = hierarchy.llc_set_of(target) as u64;
        // Align the attacker base to a set-0 line, then offset into the
        // target set; consecutive entries differ by one full LLC period.
        let base_line = (attacker_base / line_size / sets) * sets;
        let addrs = (1..=ways as u64)
            .map(|i| Addr((base_line + i * sets + target_set) * line_size))
            .collect();
        Self {
            addrs,
            target_set: target_set as usize,
        }
    }

    /// The addresses of the set.
    #[must_use]
    pub fn addrs(&self) -> &[Addr] {
        &self.addrs
    }

    /// Number of lines in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The LLC set index this eviction set targets.
    #[must_use]
    pub fn target_set(&self) -> usize {
        self.target_set
    }

    /// Primes the LLC set: accesses every line, filling the set with
    /// attacker data. Returns the cycle after the last access completes.
    pub fn prime(
        &self,
        hierarchy: &mut Hierarchy,
        core: CoreId,
        mut now: Cycle,
        observer: &mut dyn TrafficObserver,
    ) -> Cycle {
        for &addr in &self.addrs {
            let r = hierarchy.access(core, addr, AccessKind::Read, now, observer);
            now += r.latency;
        }
        now
    }

    /// Probes the set: re-accesses every line, counting LLC misses. Returns
    /// `(end_cycle, misses)`. A nonzero miss count means some other line
    /// displaced attacker data from the set since the prime.
    pub fn probe(
        &self,
        hierarchy: &mut Hierarchy,
        core: CoreId,
        mut now: Cycle,
        observer: &mut dyn TrafficObserver,
    ) -> (Cycle, usize) {
        let mut misses = 0;
        for &addr in &self.addrs {
            let r = hierarchy.access(core, addr, AccessKind::Read, now, observer);
            if r.latency >= MISS_THRESHOLD {
                misses += 1;
            }
            now += r.latency;
        }
        (now, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{NullObserver, SystemConfig};

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(SystemConfig::paper_default())
    }

    #[test]
    fn all_lines_map_to_target_set() {
        let h = hierarchy();
        let target = Addr(0x10_0000_1234);
        let set = EvictionSet::for_target(&h, target, 0x77_0000_0000);
        assert_eq!(set.len(), 16);
        for &a in set.addrs() {
            assert_eq!(h.llc_set_of(a), h.llc_set_of(target));
        }
    }

    #[test]
    fn lines_are_distinct_and_disjoint_from_target() {
        let h = hierarchy();
        let target = Addr(0x10_0000_0000);
        let set = EvictionSet::for_target(&h, target, 0x77_0000_0000);
        let mut lines: Vec<u64> = set.addrs().iter().map(|a| a.0 / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), set.len());
        assert!(!lines.contains(&(target.0 / 64)));
    }

    #[test]
    fn prime_then_victim_access_then_probe_detects() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let target = Addr(0x10_0000_0000);
        let set = EvictionSet::for_target(&h, target, 0x77_0000_0000);

        // Prime fills the set.
        let t = set.prime(&mut h, CoreId(1), 0, &mut obs);
        // Victim touches its line: one attacker way must be evicted.
        h.access(CoreId(0), target, AccessKind::Read, t + 10, &mut obs);
        let (_, misses) = set.probe(&mut h, CoreId(1), t + 1000, &mut obs);
        assert!(misses >= 1, "victim access must be visible");
    }

    #[test]
    fn probe_without_victim_sees_no_misses() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let target = Addr(0x10_0000_0000);
        let set = EvictionSet::for_target(&h, target, 0x77_0000_0000);
        let t = set.prime(&mut h, CoreId(1), 0, &mut obs);
        let (_, misses) = set.probe(&mut h, CoreId(1), t + 1000, &mut obs);
        assert_eq!(misses, 0, "quiet set must probe clean");
    }

    #[test]
    fn repeated_prime_probe_cycles_stay_clean_without_victim() {
        let mut h = hierarchy();
        let mut obs = NullObserver;
        let set = EvictionSet::for_target(&h, Addr(0x10_0000_0000), 0x77_0000_0000);
        let mut t = set.prime(&mut h, CoreId(1), 0, &mut obs);
        for _ in 0..5 {
            let (end, misses) = set.probe(&mut h, CoreId(1), t + 5000, &mut obs);
            assert_eq!(misses, 0);
            t = end;
        }
    }
}
