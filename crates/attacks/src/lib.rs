//! Attacks against the simulated system and against PiPoMonitor itself.
//!
//! Three attack families from the paper:
//!
//! * **Prime+Probe** (§VI-A, Fig. 6): a cross-core attacker primes the LLC
//!   sets of a square-and-multiply victim's `square`/`multiply` lines,
//!   lets the victim run, and probes for evictions every 5000 cycles to read
//!   the key bit by bit.
//! * **Brute force** (§VI-B): a defense-aware adversary floods the
//!   Auto-Cuckoo filter with fresh addresses to evict the victim's record
//!   before it shapes into a Ping-Pong. Expected cost: `b·l` fills.
//! * **Reverse engineering** (§VI-B, Fig. 7): the adversary tries to build a
//!   deterministic eviction set for one filter record; autonomic deletion
//!   inflates the needed set to `b^(MNK+1)` addresses.
//!
//! Beyond the paper, the scenario library adds an **occupancy-channel
//! attacker** ([`OccupancyChannelSource`]): a whole-cache occupancy probe
//! whose repeating over-associativity sweep is the adversarial input to the
//! `trace_replay` harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod defense_aware;
pub mod evict_reload;
pub mod eviction;
pub mod occupancy;
pub mod prime_probe;
pub mod victim;

pub use analysis::{infer_key_bits, KeyRecovery, ProbeTrace};
pub use defense_aware::{
    brute_force_eviction, reverse_engineering_attack, BruteForceResult, ReverseAttackResult,
    TableFlusher,
};
pub use evict_reload::{EvictReloadAttack, EvictReloadOutcome};
pub use eviction::EvictionSet;
pub use occupancy::OccupancyChannelSource;
pub use prime_probe::{AttackConfig, AttackOutcome, PrimeProbeAttack};
pub use victim::{SquareAndMultiply, VictimLayout};
