//! The square-and-multiply victim (GnuPG 1.4.13 model).
//!
//! The algorithm processes the exponent from the most significant bit down:
//! every iteration executes `square`; iterations whose key bit is 1 also
//! execute `multiply`. The *instruction lines* of the two routines are the
//! side channel: observing which of the two lines the victim touched per
//! iteration reveals the key (paper §VI-A).

use cache_sim::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Addresses of the victim's two leaky instruction lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimLayout {
    /// Entry line of the `square` routine (touched every iteration).
    pub square: Addr,
    /// Entry line of the `multiply` routine (touched only for 1-bits).
    pub multiply: Addr,
}

impl VictimLayout {
    /// A layout placing the two lines in distinct cache lines of the
    /// victim's text segment.
    ///
    /// # Panics
    ///
    /// Panics if both addresses fall in the same 64-byte line.
    #[must_use]
    pub fn new(square: Addr, multiply: Addr) -> Self {
        assert_ne!(
            square.0 / 64,
            multiply.0 / 64,
            "square and multiply must live in different lines"
        );
        Self { square, multiply }
    }

    /// The default layout used by the attack experiments: two lines in a
    /// victim text region, far from attacker-controlled memory.
    #[must_use]
    pub fn default_layout() -> Self {
        // Distinct LLC sets keep the two probes independent.
        Self::new(Addr(0x10_0000_0000), Addr(0x10_0004_0040))
    }
}

/// A square-and-multiply exponentiation processing one key bit per
/// iteration.
///
/// # Examples
///
/// ```
/// use pipo_attacks::{SquareAndMultiply, VictimLayout};
///
/// let mut v = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), 8, 42);
/// let mut iterations = 0;
/// while let Some((bit, accesses)) = v.next_iteration() {
///     // square is always touched; multiply only for 1-bits.
///     assert_eq!(accesses.len(), 1 + usize::from(bit));
///     iterations += 1;
/// }
/// assert_eq!(iterations, 8);
/// ```
#[derive(Debug, Clone)]
pub struct SquareAndMultiply {
    layout: VictimLayout,
    key: Vec<bool>,
    pos: usize,
}

impl SquareAndMultiply {
    /// Creates a victim with an explicit key (MSB first).
    #[must_use]
    pub fn new(layout: VictimLayout, key: Vec<bool>) -> Self {
        Self {
            layout,
            key,
            pos: 0,
        }
    }

    /// Creates a victim with a uniformly random `bits`-bit key.
    #[must_use]
    pub fn with_random_key(layout: VictimLayout, bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = (0..bits).map(|_| rng.gen::<bool>()).collect();
        Self::new(layout, key)
    }

    /// The victim's layout.
    #[must_use]
    pub fn layout(&self) -> &VictimLayout {
        &self.layout
    }

    /// The ground-truth key (for accuracy scoring).
    #[must_use]
    pub fn key(&self) -> &[bool] {
        &self.key
    }

    /// Key length in bits.
    #[must_use]
    pub fn key_len(&self) -> usize {
        self.key.len()
    }

    /// Restarts the exponentiation from the first bit.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Executes the next iteration, returning the processed bit and the
    /// instruction-line accesses it performs, or `None` when the key is
    /// exhausted.
    pub fn next_iteration(&mut self) -> Option<(bool, Vec<Addr>)> {
        let bit = *self.key.get(self.pos)?;
        self.pos += 1;
        let mut accesses = vec![self.layout.square];
        if bit {
            accesses.push(self.layout.multiply);
        }
        Some((bit, accesses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_key_msb_first() {
        let layout = VictimLayout::default_layout();
        let mut v = SquareAndMultiply::new(layout, vec![true, false, true]);
        let (b1, a1) = v.next_iteration().expect("bit 0");
        assert!(b1);
        assert_eq!(a1, vec![layout.square, layout.multiply]);
        let (b2, a2) = v.next_iteration().expect("bit 1");
        assert!(!b2);
        assert_eq!(a2, vec![layout.square]);
        let (b3, _) = v.next_iteration().expect("bit 2");
        assert!(b3);
        assert!(v.next_iteration().is_none());
    }

    #[test]
    fn reset_restarts() {
        let mut v = SquareAndMultiply::new(VictimLayout::default_layout(), vec![true]);
        assert!(v.next_iteration().is_some());
        assert!(v.next_iteration().is_none());
        v.reset();
        assert!(v.next_iteration().is_some());
    }

    #[test]
    fn random_key_is_deterministic_per_seed() {
        let l = VictimLayout::default_layout();
        let a = SquareAndMultiply::with_random_key(l, 64, 7);
        let b = SquareAndMultiply::with_random_key(l, 64, 7);
        assert_eq!(a.key(), b.key());
        let c = SquareAndMultiply::with_random_key(l, 64, 8);
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn random_key_is_balanced() {
        let v = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), 1000, 3);
        let ones = v.key().iter().filter(|&&b| b).count();
        assert!((350..=650).contains(&ones), "ones = {ones}");
    }

    #[test]
    #[should_panic(expected = "different lines")]
    fn layout_rejects_same_line() {
        let _ = VictimLayout::new(Addr(0x1000), Addr(0x1020));
    }
}
