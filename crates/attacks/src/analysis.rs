//! Probe-trace analysis: turning observations into key bits and scoring
//! leakage (the analysis behind Fig. 6).

/// What the attacker observed in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeObservation {
    /// The `square` set showed a miss (victim apparently ran `square`).
    pub square: bool,
    /// The `multiply` set showed a miss (victim apparently ran `multiply`).
    pub multiply: bool,
}

/// A full attack trace plus ground truth.
#[derive(Debug, Clone)]
pub struct ProbeTrace {
    observations: Vec<ProbeObservation>,
    truth: Vec<bool>,
}

/// Result of a key-recovery attempt.
#[derive(Debug, Clone)]
pub struct KeyRecovery {
    /// Bits the attacker inferred (`multiply` observed ⇒ bit = 1).
    pub inferred: Vec<bool>,
    /// Fraction of bits inferred correctly.
    pub accuracy: f64,
    /// Empirical distinguishability: |P(observe multiply | bit=1) −
    /// P(observe multiply | bit=0)|. 1.0 = perfect channel, 0.0 = the
    /// observations carry no information about the key.
    pub distinguishability: f64,
}

impl ProbeTrace {
    /// Builds a trace.
    ///
    /// # Panics
    ///
    /// Panics if observation and truth lengths differ.
    #[must_use]
    pub fn new(observations: Vec<ProbeObservation>, truth: Vec<bool>) -> Self {
        assert_eq!(
            observations.len(),
            truth.len(),
            "one observation per key bit"
        );
        Self {
            observations,
            truth,
        }
    }

    /// Number of iterations recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The raw observations.
    #[must_use]
    pub fn observations(&self) -> &[ProbeObservation] {
        &self.observations
    }

    /// The ground-truth key bits.
    #[must_use]
    pub fn truth(&self) -> &[bool] {
        &self.truth
    }

    /// Recovers the key with the paper's rule: a 1-bit is inferred when the
    /// `multiply` set probes dirty.
    #[must_use]
    pub fn recover_key(&self) -> KeyRecovery {
        let inferred = infer_key_bits(&self.observations);
        let correct = inferred
            .iter()
            .zip(&self.truth)
            .filter(|(a, b)| a == b)
            .count();
        let accuracy = if self.truth.is_empty() {
            0.0
        } else {
            correct as f64 / self.truth.len() as f64
        };
        KeyRecovery {
            accuracy,
            distinguishability: self.distinguishability(),
            inferred,
        }
    }

    /// |P(multiply observed | bit=1) − P(multiply observed | bit=0)|.
    #[must_use]
    pub fn distinguishability(&self) -> f64 {
        let mut seen = [0u32; 2];
        let mut total = [0u32; 2];
        for (obs, &bit) in self.observations.iter().zip(&self.truth) {
            let idx = usize::from(bit);
            total[idx] += 1;
            if obs.multiply {
                seen[idx] += 1;
            }
        }
        let p = |i: usize| {
            if total[i] == 0 {
                // With no samples of this bit value the conditional is
                // undefined; treat it as indistinguishable.
                f64::NAN
            } else {
                f64::from(seen[i]) / f64::from(total[i])
            }
        };
        let (p1, p0) = (p(1), p(0));
        if p1.is_nan() || p0.is_nan() {
            0.0
        } else {
            (p1 - p0).abs()
        }
    }

    /// Renders the trace as the two dot-rows of Fig. 6: one row per probed
    /// line, `●` where the attacker observed an access.
    #[must_use]
    pub fn render(&self) -> String {
        let mut square_row = String::from("square   ");
        let mut mult_row = String::from("multiply ");
        let mut truth_row = String::from("key bit  ");
        for (obs, &bit) in self.observations.iter().zip(&self.truth) {
            square_row.push(if obs.square { '●' } else { '·' });
            mult_row.push(if obs.multiply { '●' } else { '·' });
            truth_row.push(if bit { '1' } else { '0' });
        }
        format!("{square_row}\n{mult_row}\n{truth_row}")
    }
}

/// The inference rule: observed multiply ⇒ key bit 1.
#[must_use]
pub fn infer_key_bits(observations: &[ProbeObservation]) -> Vec<bool> {
    observations.iter().map(|o| o.multiply).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(square: bool, multiply: bool) -> ProbeObservation {
        ProbeObservation { square, multiply }
    }

    #[test]
    fn perfect_trace_recovers_key() {
        let truth = vec![true, false, true];
        let observations = vec![obs(true, true), obs(true, false), obs(true, true)];
        let trace = ProbeTrace::new(observations, truth);
        let r = trace.recover_key();
        assert_eq!(r.inferred, vec![true, false, true]);
        assert!((r.accuracy - 1.0).abs() < 1e-12);
        assert!((r.distinguishability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_ones_observations_carry_no_information() {
        let truth = vec![true, false, true, false];
        let observations = vec![obs(true, true); 4];
        let trace = ProbeTrace::new(observations, truth);
        let r = trace.recover_key();
        assert!((r.accuracy - 0.5).abs() < 1e-12);
        assert_eq!(r.distinguishability, 0.0);
    }

    #[test]
    fn distinguishability_handles_single_valued_keys() {
        let truth = vec![true, true];
        let observations = vec![obs(true, true), obs(true, true)];
        let trace = ProbeTrace::new(observations, truth);
        assert_eq!(trace.distinguishability(), 0.0);
    }

    #[test]
    fn render_shows_dots() {
        let trace = ProbeTrace::new(vec![obs(true, false)], vec![false]);
        let s = trace.render();
        assert!(s.contains("square"));
        assert!(s.contains('●'));
        assert!(s.contains('·'));
        assert!(s.contains('0'));
    }

    #[test]
    #[should_panic(expected = "one observation per key bit")]
    fn mismatched_lengths_panic() {
        let _ = ProbeTrace::new(vec![obs(true, true)], vec![true, false]);
    }

    #[test]
    fn empty_trace() {
        let trace = ProbeTrace::new(Vec::new(), Vec::new());
        assert!(trace.is_empty());
        assert_eq!(trace.recover_key().accuracy, 0.0);
    }
}
