//! The cross-core Prime+Probe attack loop (paper §VI-A, Fig. 6).

use cache_sim::{AccessKind, Addr, CoreId, Cycle, Hierarchy, TrafficObserver};

use crate::analysis::{ProbeObservation, ProbeTrace};
use crate::eviction::EvictionSet;
use crate::victim::SquareAndMultiply;

/// Attack parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackConfig {
    /// Number of attack iterations (probe windows).
    pub iterations: usize,
    /// Cycles between successive probes (the paper probes every 5000).
    pub probe_interval: Cycle,
    /// Victim square-and-multiply iterations executed per probe window.
    ///
    /// `1` models an idealised lockstep attacker that samples every key bit
    /// individually — the strongest attacker. The paper's GnuPG victim runs
    /// continuously, processing several bits per 5000-cycle window; values
    /// around 3-5 model that timing. With more than one bit per window the
    /// recorded ground truth per window is the OR of its bits (did the
    /// victim multiply in this window), matching what Fig. 6 plots.
    pub bits_per_window: usize,
    /// Core running the victim.
    pub victim_core: CoreId,
    /// Core running the attacker (must differ from the victim's).
    pub attacker_core: CoreId,
    /// Base of the attacker's address region for eviction sets.
    pub attacker_base: u64,
}

impl AttackConfig {
    /// The paper's setup: probe every 5000 cycles, victim on core 0,
    /// attacker on core 1, 100 iterations, continuous victim execution
    /// (4 bits per window).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            iterations: 100,
            probe_interval: 5000,
            bits_per_window: 4,
            victim_core: CoreId(0),
            attacker_core: CoreId(1),
            attacker_base: 0x77_0000_0000,
        }
    }

    /// An idealised lockstep attacker: exactly one victim key bit per probe
    /// window. Stronger than the paper's attacker.
    #[must_use]
    pub fn lockstep() -> Self {
        Self {
            bits_per_window: 1,
            ..Self::paper_default()
        }
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Everything the attack produced: the probe trace plus bookkeeping.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Per-iteration probe observations and the ground-truth key bits.
    pub trace: ProbeTrace,
    /// Cycle at which the attack finished.
    pub end_cycle: Cycle,
}

/// The orchestrated Prime+Probe attack.
///
/// Each iteration: the attacker primes the `square` and `multiply` LLC sets,
/// the victim executes one square-and-multiply iteration, pending monitor
/// prefetches are drained (time passes), and the attacker probes both sets.
/// A probed miss means "the victim (apparently) touched this line".
///
/// # Examples
///
/// Against an unprotected system the attack recovers the key:
///
/// ```
/// use cache_sim::{Hierarchy, NullObserver, SystemConfig};
/// use pipo_attacks::{AttackConfig, PrimeProbeAttack, SquareAndMultiply, VictimLayout};
///
/// let mut h = Hierarchy::new(SystemConfig::paper_default());
/// let mut baseline = NullObserver;
/// let victim = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), 32, 1);
/// let cfg = AttackConfig { iterations: 32, ..AttackConfig::lockstep() };
/// let outcome = PrimeProbeAttack::new(cfg).run(&mut h, victim, &mut baseline);
/// let recovery = outcome.trace.recover_key();
/// assert!(recovery.accuracy > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct PrimeProbeAttack {
    config: AttackConfig,
}

impl PrimeProbeAttack {
    /// Creates an attack with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if victim and attacker share a core (the threat model requires
    /// cross-core attackers).
    #[must_use]
    pub fn new(config: AttackConfig) -> Self {
        assert_ne!(
            config.victim_core, config.attacker_core,
            "cross-core attack requires distinct cores"
        );
        Self { config }
    }

    /// The attack configuration.
    #[must_use]
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Runs the attack on a hierarchy observed by `observer` (pass
    /// [`cache_sim::NullObserver`] for the unprotected baseline or a
    /// `PiPoMonitor` for the defended system).
    pub fn run(
        &self,
        hierarchy: &mut Hierarchy,
        victim: SquareAndMultiply,
        observer: &mut dyn TrafficObserver,
    ) -> AttackOutcome {
        self.run_with_flusher(hierarchy, victim, observer, &mut |_| Vec::new())
    }

    /// Like [`run`](Self::run), but a *defense-aware* attacker additionally
    /// accesses `flusher(window)`'s addresses at the start of every window,
    /// attempting to evict the victim's record from the defense's recording
    /// structure before its Security counter saturates (paper §VI-B).
    ///
    /// Against the deterministic directory-table baseline a tiny per-window
    /// flush suffices; against the Auto-Cuckoo filter the expected flush
    /// cost is `b·l` accesses per window, far beyond the probe interval.
    pub fn run_with_flusher(
        &self,
        hierarchy: &mut Hierarchy,
        mut victim: SquareAndMultiply,
        observer: &mut dyn TrafficObserver,
        flusher: &mut dyn FnMut(usize) -> Vec<Addr>,
    ) -> AttackOutcome {
        let cfg = &self.config;
        let layout = *victim.layout();
        let square_set = EvictionSet::for_target(hierarchy, layout.square, cfg.attacker_base);
        // Offset the second region so the two sets cannot collide even when
        // the targets share an LLC set.
        let multiply_set =
            EvictionSet::for_target(hierarchy, layout.multiply, cfg.attacker_base + (1 << 32));

        let mut observations = Vec::with_capacity(cfg.iterations);
        let mut truth = Vec::with_capacity(cfg.iterations);
        let mut now: Cycle = 0;
        let bits_per_window = cfg.bits_per_window.max(1);

        'windows: for window in 0..cfg.iterations {
            let iter_start = now;

            // Defense-aware record flushing (no-op for the plain attack).
            for addr in flusher(window) {
                let r = hierarchy.access(cfg.attacker_core, addr, AccessKind::Read, now, observer);
                now += r.latency;
            }

            // Prime both target sets.
            now = square_set.prime(hierarchy, cfg.attacker_core, now, observer);
            now = multiply_set.prime(hierarchy, cfg.attacker_core, now, observer);

            // The victim executes its iterations spread across the window.
            let mut window_bit = false;
            let slot = cfg.probe_interval / (bits_per_window as Cycle + 1);
            let mut executed_any = false;
            for k in 0..bits_per_window {
                let Some((bit, accesses)) = victim.next_iteration() else {
                    if executed_any {
                        break;
                    }
                    break 'windows;
                };
                executed_any = true;
                window_bit |= bit;
                let mut victim_clock = iter_start + slot * (k as Cycle + 1);
                for addr in accesses {
                    hierarchy.drain_prefetches(victim_clock, observer);
                    let r = hierarchy.access(
                        cfg.victim_core,
                        addr,
                        AccessKind::Read,
                        victim_clock,
                        observer,
                    );
                    victim_clock += r.latency;
                }
            }
            truth.push(window_bit);

            // Wait out the probe interval; monitor prefetches become due.
            now = iter_start + cfg.probe_interval;
            hierarchy.drain_prefetches(now, observer);

            // Probe: a miss means the set was disturbed since the prime.
            let (t, square_misses) = square_set.probe(hierarchy, cfg.attacker_core, now, observer);
            let (t, multiply_misses) =
                multiply_set.probe(hierarchy, cfg.attacker_core, t, observer);
            now = t;

            observations.push(ProbeObservation {
                square: square_misses > 0,
                multiply: multiply_misses > 0,
            });
        }

        AttackOutcome {
            trace: ProbeTrace::new(observations, truth),
            end_cycle: now,
        }
    }
}

/// Convenience: victim accesses its secret-independent data between attack
/// rounds (used by tests to add benign noise).
pub fn touch_victim_noise(
    hierarchy: &mut Hierarchy,
    core: CoreId,
    base: u64,
    lines: u64,
    now: Cycle,
    observer: &mut dyn TrafficObserver,
) -> Cycle {
    let mut t = now;
    for i in 0..lines {
        let r = hierarchy.access(core, Addr(base + i * 64), AccessKind::Read, t, observer);
        t += r.latency;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimLayout;
    use cache_sim::{NullObserver, SystemConfig};

    fn run_baseline(key: Vec<bool>) -> AttackOutcome {
        let mut h = Hierarchy::new(SystemConfig::paper_default());
        let mut obs = NullObserver;
        let victim = SquareAndMultiply::new(VictimLayout::default_layout(), key.clone());
        let cfg = AttackConfig {
            iterations: key.len(),
            ..AttackConfig::lockstep()
        };
        PrimeProbeAttack::new(cfg).run(&mut h, victim, &mut obs)
    }

    #[test]
    fn baseline_attack_reads_multiply_exactly_for_one_bits() {
        let key = vec![true, false, true, true, false, false, true, false];
        let outcome = run_baseline(key.clone());
        assert_eq!(outcome.trace.len(), key.len());
        for (obs, &bit) in outcome.trace.observations().iter().zip(&key) {
            assert!(obs.square, "square runs every iteration");
            assert_eq!(obs.multiply, bit, "multiply leaks the key bit");
        }
    }

    #[test]
    fn baseline_recovers_full_key() {
        let key = vec![
            true, false, false, true, true, false, true, false, true, true,
        ];
        let outcome = run_baseline(key);
        let recovery = outcome.trace.recover_key();
        assert!((recovery.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct cores")]
    fn same_core_attack_is_rejected() {
        let cfg = AttackConfig {
            attacker_core: CoreId(0),
            ..AttackConfig::paper_default()
        };
        let _ = PrimeProbeAttack::new(cfg);
    }

    #[test]
    fn attack_time_advances_monotonically() {
        let outcome = run_baseline(vec![true; 5]);
        assert!(outcome.end_cycle >= 5 * 5000);
    }

    #[test]
    fn windowed_attack_records_or_of_bits() {
        let mut h = Hierarchy::new(SystemConfig::paper_default());
        let mut obs = NullObserver;
        // 8 bits, 4 per window -> 2 windows with truths (1, 0).
        let key = vec![false, true, false, false, false, false, false, false];
        let victim = SquareAndMultiply::new(VictimLayout::default_layout(), key);
        let cfg = AttackConfig {
            iterations: 4,
            bits_per_window: 4,
            ..AttackConfig::paper_default()
        };
        let outcome = PrimeProbeAttack::new(cfg).run(&mut h, victim, &mut obs);
        assert_eq!(outcome.trace.len(), 2);
        assert_eq!(outcome.trace.truth(), &[true, false]);
        assert!(outcome.trace.observations()[0].multiply);
        assert!(!outcome.trace.observations()[1].multiply);
    }

    #[test]
    fn windowed_attack_stops_at_key_end() {
        let mut h = Hierarchy::new(SystemConfig::paper_default());
        let mut obs = NullObserver;
        // 6 bits, 4 per window: 1 full window + 1 partial window.
        let victim = SquareAndMultiply::new(VictimLayout::default_layout(), vec![true; 6]);
        let cfg = AttackConfig {
            iterations: 10,
            bits_per_window: 4,
            ..AttackConfig::paper_default()
        };
        let outcome = PrimeProbeAttack::new(cfg).run(&mut h, victim, &mut obs);
        assert_eq!(outcome.trace.len(), 2);
    }
}
