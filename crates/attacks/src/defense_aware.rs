//! Defense-aware attacks against the Auto-Cuckoo filter itself (paper §VI-B,
//! Fig. 7).
//!
//! A PiPoMonitor-aware adversary tries to evict the victim's *filter record*
//! before its `Security` counter reaches `secThr`, so the Ping-Pong pattern
//! is never captured. Two strategies:
//!
//! * **Brute force** — flood the (full) filter with fresh addresses; each
//!   insertion autonomically deletes one quasi-uniformly-random record.
//!   Expected fills to hit one specific record: `b·l`.
//! * **Reverse engineering** — restrict the flood to addresses whose
//!   candidate buckets include the target's bucket. With MNK = 0 this works
//!   in ~`b` fills; every extra kick multiplies the required eviction set by
//!   `b`, reaching `b^(MNK+1)` (32768 for the paper's b = 8, MNK = 4).

use auto_cuckoo::hash::candidate_buckets;
use auto_cuckoo::{AutoCuckooFilter, FilterParams};
use cache_sim::{Addr, LineAddr};
use pipomonitor::DirectoryMonitorConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a brute-force filter-flush campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    /// Fills needed per trial to evict the target record.
    pub fills_per_trial: Vec<u64>,
    /// Mean fills across trials.
    pub mean_fills: f64,
    /// The analytic expectation, `b·l`.
    pub expected_fills: u64,
}

/// Result of a reverse-engineering (targeted-bucket) campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ReverseAttackResult {
    /// MNK the filter was configured with.
    pub max_kicks: u32,
    /// Mean targeted fills needed to evict the target record.
    pub mean_fills: f64,
    /// The analytic eviction-set size, `b^(MNK+1)`.
    pub eviction_set_bound: u64,
}

/// Safety valve: give up a trial after this many fills (counts as the cap).
const FILL_CAP: u64 = 5_000_000;

fn fresh_filter(params: FilterParams, trial_seed: u64) -> AutoCuckooFilter {
    let params = FilterParams::builder()
        .buckets(params.buckets())
        .entries_per_bucket(params.entries_per_bucket())
        .fingerprint_bits(params.fingerprint_bits())
        .max_kicks(params.max_kicks())
        .security_threshold(params.security_threshold())
        .seed(params.seed() ^ trial_seed.rotate_left(17))
        .build()
        .expect("derived parameters stay valid");
    AutoCuckooFilter::new(params).expect("validated above")
}

/// Pre-fills the filter to full occupancy with adversary addresses, then
/// inserts the target.
fn prepare_full_filter(filter: &mut AutoCuckooFilter, target: u64, rng: &mut StdRng) {
    // Over-insert well past capacity so occupancy saturates.
    let warmup = filter.params().capacity() as u64 * 4;
    for _ in 0..warmup {
        filter.query(rng.gen::<u64>() | 1);
    }
    // Inserting into a full filter can autonomically delete the new record
    // itself when the kick walk revisits its bucket; retry until resident.
    while !filter.contains(target) {
        filter.query(target);
    }
}

/// Runs the brute-force eviction experiment: how many fresh-address fills
/// does the adversary need before the target's record is gone?
///
/// # Examples
///
/// On a small filter the measured mean tracks the analytic `b·l`:
///
/// ```
/// use auto_cuckoo::FilterParams;
/// use pipo_attacks::brute_force_eviction;
///
/// # fn main() -> Result<(), auto_cuckoo::ParamsError> {
/// let params = FilterParams::builder().buckets(64).entries_per_bucket(4).build()?;
/// let r = brute_force_eviction(params, 20, 42);
/// assert_eq!(r.expected_fills, 256);
/// assert!(r.mean_fills > 64.0 && r.mean_fills < 1024.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn brute_force_eviction(params: FilterParams, trials: usize, seed: u64) -> BruteForceResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fills_per_trial = Vec::with_capacity(trials);
    for trial in 0..trials {
        let mut filter = fresh_filter(params, trial as u64 + 1);
        let target = rng.gen::<u64>() | 1;
        prepare_full_filter(&mut filter, target, &mut rng);
        let mut fills = 0u64;
        while filter.contains(target) && fills < FILL_CAP {
            filter.query(rng.gen::<u64>() | 1);
            fills += 1;
        }
        fills_per_trial.push(fills);
    }
    let mean_fills = fills_per_trial.iter().sum::<u64>() as f64 / trials.max(1) as f64;
    BruteForceResult {
        fills_per_trial,
        mean_fills,
        expected_fills: (params.buckets() * params.entries_per_bucket()) as u64,
    }
}

/// Finds an address (other than `target`) whose candidate buckets intersect
/// the target's candidate buckets — the adversary knows the target address,
/// hence both of its buckets.
fn address_targeting_bucket(
    params: &FilterParams,
    target_pair: auto_cuckoo::IndexPair,
    target: u64,
    rng: &mut StdRng,
) -> u64 {
    loop {
        let candidate = rng.gen::<u64>() | 1;
        if candidate == target {
            continue;
        }
        let pair = candidate_buckets(candidate, params);
        if pair.contains(target_pair.primary) || pair.contains(target_pair.alternate) {
            return candidate;
        }
    }
}

/// Runs the reverse-engineering experiment for the filter's configured MNK:
/// the adversary only inserts addresses whose candidate buckets include the
/// target's primary bucket (the best achievable level-0 eviction set) and
/// counts fills until the target record is evicted.
///
/// As MNK grows, the record that is finally evicted wanders away from the
/// targeted bucket along the random kick path, so the measured cost grows
/// roughly geometrically — the empirical counterpart of the `b^(MNK+1)`
/// bound of Fig. 7.
#[must_use]
pub fn reverse_engineering_attack(
    params: FilterParams,
    trials: usize,
    seed: u64,
) -> ReverseAttackResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    for trial in 0..trials {
        let mut filter = fresh_filter(params, 1000 + trial as u64);
        let target = rng.gen::<u64>() | 1;
        prepare_full_filter(&mut filter, target, &mut rng);
        let target_pair = candidate_buckets(target, &params);
        let mut fills = 0u64;
        while filter.contains(target) && fills < FILL_CAP {
            let addr = address_targeting_bucket(&params, target_pair, target, &mut rng);
            filter.query(addr);
            fills += 1;
        }
        total += fills;
    }
    let b = params.entries_per_bucket() as u64;
    let mut bound = 1u64;
    for _ in 0..=params.max_kicks() {
        bound = bound.saturating_mul(b);
    }
    ReverseAttackResult {
        max_kicks: params.max_kicks(),
        mean_fills: total as f64 / trials.max(1) as f64,
        eviction_set_bound: bound,
    }
}

/// A defense-aware attacker's record-flush generator against the
/// deterministic directory-table baseline
/// ([`pipomonitor::DirectoryMonitor`]).
///
/// Each round yields `ways` *fresh* line addresses mapping to the victim's
/// table set. Fresh lines guarantee memory fetches (they are LLC-cold), so
/// each round deterministically LRU-evicts the victim's table record before
/// its Security counter can saturate — defeating detection. The caller
/// supplies an `avoid` predicate to keep flush lines out of the attacker's
/// own probe sets.
///
/// No equivalent exists for the Auto-Cuckoo filter: autonomic deletion makes
/// the victim record's eviction non-deterministic, raising the expected
/// per-round flush cost to `b·l` accesses (see
/// [`brute_force_eviction`]).
#[derive(Debug, Clone)]
pub struct TableFlusher {
    sets: usize,
    ways: usize,
    target_set: usize,
    base_line: u64,
    cursor: u64,
}

impl TableFlusher {
    /// Creates a flusher for `target` against a table of `config`'s
    /// geometry, drawing addresses from the attacker region starting at byte
    /// address `attacker_base`. The table's index hash is public, so the
    /// adversary finds conflicting lines by brute-force search — a one-time
    /// offline cost of ~`sets` hash evaluations per line.
    #[must_use]
    pub fn new(config: &DirectoryMonitorConfig, target: LineAddr, attacker_base: u64) -> Self {
        Self {
            sets: config.sets,
            ways: config.ways,
            target_set: pipomonitor::DirectoryMonitor::set_for(target, config.sets),
            base_line: attacker_base / 64,
            cursor: 0,
        }
    }

    /// Produces the next round of `ways` fresh conflicting addresses,
    /// skipping any the `avoid` predicate rejects.
    pub fn next_round<F: Fn(LineAddr) -> bool>(&mut self, avoid: F) -> Vec<Addr> {
        let mut out = Vec::with_capacity(self.ways);
        while out.len() < self.ways {
            self.cursor += 1;
            let line = LineAddr(self.base_line + self.cursor);
            if pipomonitor::DirectoryMonitor::set_for(line, self.sets) == self.target_set
                && !avoid(line)
            {
                out.push(Addr(line.0 * 64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(mnk: u32) -> FilterParams {
        FilterParams::builder()
            .buckets(32)
            .entries_per_bucket(4)
            .fingerprint_bits(14)
            .max_kicks(mnk)
            .build()
            .expect("valid")
    }

    #[test]
    fn brute_force_mean_tracks_capacity() {
        let params = small_params(2);
        let r = brute_force_eviction(params, 40, 7);
        assert_eq!(r.expected_fills, 128);
        // Geometric with mean 128: generous 3x bounds over 40 trials.
        assert!(
            r.mean_fills > 128.0 / 3.0 && r.mean_fills < 128.0 * 3.0,
            "mean {}",
            r.mean_fills
        );
        assert_eq!(r.fills_per_trial.len(), 40);
    }

    #[test]
    fn brute_force_scales_with_filter_size() {
        let small = brute_force_eviction(small_params(2), 25, 1);
        let big_params = FilterParams::builder()
            .buckets(128)
            .entries_per_bucket(4)
            .fingerprint_bits(14)
            .max_kicks(2)
            .build()
            .expect("valid");
        let big = brute_force_eviction(big_params, 25, 1);
        assert!(
            big.mean_fills > small.mean_fills * 1.5,
            "bigger filter must cost more: {} vs {}",
            big.mean_fills,
            small.mean_fills
        );
    }

    #[test]
    fn reverse_attack_cost_grows_with_mnk() {
        let r0 = reverse_engineering_attack(small_params(0), 30, 3);
        let r2 = reverse_engineering_attack(small_params(2), 30, 3);
        assert_eq!(r0.eviction_set_bound, 4);
        assert_eq!(r2.eviction_set_bound, 64);
        assert!(
            r2.mean_fills > r0.mean_fills * 2.0,
            "MNK=2 ({}) must cost well above MNK=0 ({})",
            r2.mean_fills,
            r0.mean_fills
        );
    }

    #[test]
    fn reverse_attack_mnk0_is_cheap() {
        let r = reverse_engineering_attack(small_params(0), 30, 9);
        // With MNK=0 every targeted fill evicts within the target's bucket
        // (b=4): expect a handful of fills on average.
        assert!(r.mean_fills < 32.0, "mean {}", r.mean_fills);
    }

    #[test]
    fn table_flusher_lines_hit_target_set_and_stay_fresh() {
        let cfg = DirectoryMonitorConfig {
            sets: 64,
            ways: 4,
            threshold: 3,
            prefetch_delay: 10,
        };
        let target = LineAddr(0x123);
        let target_set = pipomonitor::DirectoryMonitor::set_for(target, cfg.sets);
        let mut flusher = TableFlusher::new(&cfg, target, 0x55_0000_0000);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            let round = flusher.next_round(|_| false);
            assert_eq!(round.len(), 4);
            for addr in round {
                let line = LineAddr(addr.0 / 64);
                assert_eq!(
                    pipomonitor::DirectoryMonitor::set_for(line, cfg.sets),
                    target_set,
                    "must map to the target's table set"
                );
                assert!(seen.insert(line), "flush lines must be fresh");
            }
        }
    }

    #[test]
    fn table_flusher_respects_avoid_predicate() {
        let cfg = DirectoryMonitorConfig {
            sets: 64,
            ways: 4,
            threshold: 3,
            prefetch_delay: 10,
        };
        let mut flusher = TableFlusher::new(&cfg, LineAddr(7), 0);
        // Avoid odd line numbers; rounds must still fill with even ones.
        let round = flusher.next_round(|l| l.0 % 2 == 1);
        assert_eq!(round.len(), 4);
        for addr in round {
            assert_eq!((addr.0 / 64) % 2, 0);
        }
    }
}
