//! Evict+Reload: a cross-core attack on *shared* lines (e.g. a shared
//! library's code pages).
//!
//! Unlike Prime+Probe, the attacker can address the victim's lines directly:
//! each window it **evicts** the target line with an eviction set, waits,
//! then **reloads** the line itself and times the access — a fast reload
//! means the victim touched the line in between. This is an extension
//! beyond the paper's evaluation showing PiPoMonitor's mitigation is not
//! specific to Prime+Probe: the evict/re-fetch traffic is exactly a
//! Ping-Pong pattern, so the filter captures the line and the prefetch makes
//! every reload fast, blinding the attacker.

use cache_sim::{AccessKind, Cycle, Hierarchy, TrafficObserver};

use crate::analysis::{ProbeObservation, ProbeTrace};
use crate::eviction::{EvictionSet, MISS_THRESHOLD};
use crate::prime_probe::AttackConfig;
use crate::victim::SquareAndMultiply;

/// The Evict+Reload attack loop. Reuses [`AttackConfig`]; the
/// `attacker_base` seeds the eviction sets used for the evict step.
///
/// # Examples
///
/// On the unprotected system the reload times leak the victim's windowed
/// operation sequence:
///
/// ```
/// use cache_sim::{Hierarchy, NullObserver, SystemConfig};
/// use pipo_attacks::{AttackConfig, EvictReloadAttack, SquareAndMultiply, VictimLayout};
///
/// let mut h = Hierarchy::new(SystemConfig::paper_default());
/// let victim = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), 64, 3);
/// let cfg = AttackConfig { iterations: 16, ..AttackConfig::paper_default() };
/// let mut baseline = NullObserver;
/// let outcome = EvictReloadAttack::new(cfg).run(&mut h, victim, &mut baseline);
/// assert!(outcome.trace.recover_key().accuracy > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct EvictReloadAttack {
    config: AttackConfig,
}

/// Outcome of an Evict+Reload run.
#[derive(Debug, Clone)]
pub struct EvictReloadOutcome {
    /// Per-window reload observations and windowed ground truth.
    pub trace: ProbeTrace,
    /// Cycle at which the attack finished.
    pub end_cycle: Cycle,
}

impl EvictReloadAttack {
    /// Creates the attack.
    ///
    /// # Panics
    ///
    /// Panics if victim and attacker share a core.
    #[must_use]
    pub fn new(config: AttackConfig) -> Self {
        assert_ne!(
            config.victim_core, config.attacker_core,
            "cross-core attack requires distinct cores"
        );
        Self { config }
    }

    /// Runs the attack against `observer`'s system.
    pub fn run(
        &self,
        hierarchy: &mut Hierarchy,
        mut victim: SquareAndMultiply,
        observer: &mut dyn TrafficObserver,
    ) -> EvictReloadOutcome {
        let cfg = &self.config;
        let layout = *victim.layout();
        let square_set = EvictionSet::for_target(hierarchy, layout.square, cfg.attacker_base);
        let multiply_set =
            EvictionSet::for_target(hierarchy, layout.multiply, cfg.attacker_base + (1 << 32));
        let bits_per_window = cfg.bits_per_window.max(1);

        let mut observations = Vec::with_capacity(cfg.iterations);
        let mut truth = Vec::with_capacity(cfg.iterations);
        let mut now: Cycle = 0;

        'windows: for _ in 0..cfg.iterations {
            let iter_start = now;

            // Evict: flush the shared lines out of the LLC.
            now = square_set.prime(hierarchy, cfg.attacker_core, now, observer);
            now = multiply_set.prime(hierarchy, cfg.attacker_core, now, observer);

            // Victim executes its iterations across the window.
            let mut window_bit = false;
            let slot = cfg.probe_interval / (bits_per_window as Cycle + 1);
            let mut executed_any = false;
            for k in 0..bits_per_window {
                let Some((bit, accesses)) = victim.next_iteration() else {
                    if executed_any {
                        break;
                    }
                    break 'windows;
                };
                executed_any = true;
                window_bit |= bit;
                let mut clock = iter_start + slot * (k as Cycle + 1);
                for addr in accesses {
                    hierarchy.drain_prefetches(clock, observer);
                    let r =
                        hierarchy.access(cfg.victim_core, addr, AccessKind::Read, clock, observer);
                    clock += r.latency;
                }
            }
            truth.push(window_bit);

            now = iter_start + cfg.probe_interval;
            hierarchy.drain_prefetches(now, observer);

            // Reload: the attacker touches the shared lines and times them.
            let rs = hierarchy.access(
                cfg.attacker_core,
                layout.square,
                AccessKind::Read,
                now,
                observer,
            );
            now += rs.latency;
            let rm = hierarchy.access(
                cfg.attacker_core,
                layout.multiply,
                AccessKind::Read,
                now,
                observer,
            );
            now += rm.latency;

            observations.push(ProbeObservation {
                square: rs.latency < MISS_THRESHOLD,
                multiply: rm.latency < MISS_THRESHOLD,
            });
        }

        EvictReloadOutcome {
            trace: ProbeTrace::new(observations, truth),
            end_cycle: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::victim::VictimLayout;
    use cache_sim::{NullObserver, SystemConfig};

    fn config(windows: usize) -> AttackConfig {
        AttackConfig {
            iterations: windows,
            bits_per_window: 1,
            ..AttackConfig::paper_default()
        }
    }

    #[test]
    fn baseline_reload_leaks_exact_bits() {
        let key = vec![true, false, true, true, false, false, true, false];
        let mut h = Hierarchy::new(SystemConfig::paper_default());
        let victim = SquareAndMultiply::new(VictimLayout::default_layout(), key.clone());
        let mut obs = NullObserver;
        let outcome = EvictReloadAttack::new(config(key.len())).run(&mut h, victim, &mut obs);
        for (o, &bit) in outcome.trace.observations().iter().zip(&key) {
            assert!(o.square, "square reload must hit every window");
            assert_eq!(o.multiply, bit, "multiply reload leaks the key bit");
        }
        assert!((outcome.trace.recover_key().accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct cores")]
    fn rejects_same_core() {
        let cfg = AttackConfig {
            attacker_core: cache_sim::CoreId(0),
            ..AttackConfig::paper_default()
        };
        let _ = EvictReloadAttack::new(cfg);
    }

    #[test]
    fn trace_length_matches_windows() {
        let mut h = Hierarchy::new(SystemConfig::paper_default());
        let victim = SquareAndMultiply::with_random_key(VictimLayout::default_layout(), 20, 1);
        let mut obs = NullObserver;
        let outcome = EvictReloadAttack::new(config(20)).run(&mut h, victim, &mut obs);
        assert_eq!(outcome.trace.len(), 20);
        assert!(outcome.end_cycle >= 20 * 5000);
    }
}
