//! Occupancy-channel attacker: a cache-occupancy side channel probe.
//!
//! Unlike Prime+Probe (which targets the *sets* of specific victim lines),
//! an occupancy channel measures how much of the LLC the victim displaces:
//! the attacker keeps a working set resident and times how much of it
//! survives. From the cache's point of view the signature is a tight,
//! repeating sweep over more same-set lines than the associativity can
//! hold — every probe access conflict-misses and re-fetches a recently
//! evicted line, exactly the Ping-Pong pattern PiPoMonitor captures.
//!
//! [`OccupancyChannelSource`] models the probe loop: `probe_sets`
//! consecutive LLC sets, each loaded with `ways + 1` colliding lines
//! (spaced by the set count so they index the same set), visited way-major
//! so each set's lines cycle through in LRU-pathological order. It is fully
//! deterministic (no RNG) and overrides
//! [`refill`](cache_sim::AccessSource::refill) with the identical
//! recurrence, so batched and scalar replay are bit-identical.

use cache_sim::{Access, AccessSource, Addr};

const LINE_SIZE: u64 = 64;

/// Deterministic occupancy-probe access stream (see module docs).
///
/// # Examples
///
/// ```
/// use cache_sim::AccessSource;
/// use pipo_attacks::OccupancyChannelSource;
///
/// // 4096-set, 16-way LLC: probe 8 sets with 17 colliding lines each.
/// let mut probe = OccupancyChannelSource::new(1 << 30, 4096, 16, 8, 2);
/// let period = probe.sweep_len();
/// assert_eq!(period, 8 * 17);
/// let first = probe.next_access().expect("infinite");
/// for _ in 1..period {
///     probe.next_access();
/// }
/// // The sweep is periodic: after one full pass the stream repeats.
/// assert_eq!(probe.next_access(), Some(first));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyChannelSource {
    base_line: u64,
    llc_sets: u64,
    probe_sets: u64,
    lines_per_set: u64,
    think: u64,
    /// Way index of the next access (`0..lines_per_set`), outer loop.
    way: u64,
    /// Set index of the next access (`0..probe_sets`), inner loop.
    set: u64,
}

impl OccupancyChannelSource {
    /// Probe over `probe_sets` sets of an `llc_sets`-set, `llc_ways`-way
    /// LLC, starting at line `base_line` (make it a multiple of `llc_sets`
    /// so probed sets start at set index `base_line % llc_sets`), with
    /// `think` compute cycles between probes.
    ///
    /// # Panics
    ///
    /// Panics if `llc_sets`, `llc_ways`, or `probe_sets` is zero, or if
    /// `probe_sets > llc_sets`.
    #[must_use]
    pub fn new(base_line: u64, llc_sets: u64, llc_ways: u64, probe_sets: u64, think: u64) -> Self {
        assert!(
            llc_sets > 0 && llc_ways > 0,
            "cache geometry must be nonzero"
        );
        assert!(
            probe_sets > 0 && probe_sets <= llc_sets,
            "probe_sets must be in 1..={llc_sets}"
        );
        Self {
            base_line,
            llc_sets,
            probe_sets,
            // One more colliding line than the associativity: under LRU
            // every probe access misses and re-fetches.
            lines_per_set: llc_ways + 1,
            think,
            way: 0,
            set: 0,
        }
    }

    /// Accesses in one full sweep (the stream's period).
    #[must_use]
    pub fn sweep_len(&self) -> u64 {
        self.probe_sets * self.lines_per_set
    }

    /// The line address of the current `(way, set)` cursor.
    #[inline]
    fn cursor_line(&self) -> u64 {
        self.base_line + self.set + self.way * self.llc_sets
    }

    /// Advances the way-major cursor: sets fast, ways slow.
    #[inline]
    fn advance(&mut self) {
        self.set += 1;
        if self.set == self.probe_sets {
            self.set = 0;
            self.way += 1;
            if self.way == self.lines_per_set {
                self.way = 0;
            }
        }
    }
}

impl AccessSource for OccupancyChannelSource {
    fn next_access(&mut self) -> Option<Access> {
        let line = self.cursor_line();
        self.advance();
        Some(Access::read(Addr(line * LINE_SIZE)).after(self.think))
    }

    /// Batched generation with the identical cursor recurrence, so the
    /// stream is bit-identical however the caller mixes entry points.
    fn refill(&mut self, buf: &mut Vec<Access>, max: usize) {
        for _ in 0..max {
            let line = self.cursor_line();
            self.advance();
            buf.push(Access::read(Addr(line * LINE_SIZE)).after(self.think));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn probes_exactly_ways_plus_one_lines_per_set() {
        let mut src = OccupancyChannelSource::new(0, 1024, 8, 4, 0);
        let mut per_set: std::collections::HashMap<u64, HashSet<u64>> =
            std::collections::HashMap::new();
        for _ in 0..src.sweep_len() {
            let a = src.next_access().expect("infinite");
            let line = a.addr.0 / LINE_SIZE;
            per_set.entry(line % 1024).or_default().insert(line);
        }
        assert_eq!(per_set.len(), 4, "probes exactly probe_sets sets");
        for (set, lines) in per_set {
            assert_eq!(lines.len(), 9, "set {set} must hold ways+1 lines");
        }
    }

    #[test]
    fn stream_is_periodic_and_deterministic() {
        let mut a = OccupancyChannelSource::new(512, 256, 4, 16, 3);
        let mut b = OccupancyChannelSource::new(512, 256, 4, 16, 3);
        let period = a.sweep_len() as usize;
        let first: Vec<_> = (0..period).map(|_| a.next_access()).collect();
        let again: Vec<_> = (0..period).map(|_| a.next_access()).collect();
        assert_eq!(first, again, "sweep must repeat exactly");
        let fresh: Vec<_> = (0..period).map(|_| b.next_access()).collect();
        assert_eq!(first, fresh, "reconstruction must reproduce the stream");
    }

    #[test]
    fn refill_matches_next_access() {
        let mut scalar = OccupancyChannelSource::new(4096, 4096, 16, 64, 1);
        let mut batched = OccupancyChannelSource::new(4096, 4096, 16, 64, 1);
        let mut buf = Vec::new();
        for round in 0..40usize {
            let max = 1 + (round * 7) % 64;
            buf.clear();
            batched.refill(&mut buf, max);
            assert_eq!(buf.len(), max, "infinite stream must fill the batch");
            for &access in &buf {
                assert_eq!(Some(access), scalar.next_access());
            }
            assert_eq!(batched.next_access(), scalar.next_access());
        }
    }

    #[test]
    #[should_panic(expected = "probe_sets")]
    fn rejects_probing_more_sets_than_the_cache_has() {
        let _ = OccupancyChannelSource::new(0, 64, 8, 65, 0);
    }
}
