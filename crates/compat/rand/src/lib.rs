//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], and [`Rng::gen_range`].
//! Streams are deterministic (xoshiro256++ seeded via SplitMix64) but do
//! **not** match upstream `rand`'s streams; all workspace experiments derive
//! their reference numbers from this generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The user-facing sampling interface (subset of upstream `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (upstream's `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Distributions with precomputed sampling state (subset of upstream
/// `rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A uniform integer distribution with a precomputed Barrett reciprocal.
    ///
    /// Sampling draws **exactly** `start + rng.next_u64() % span` — the same
    /// value, from the same single RNG draw, as [`Rng::gen_range`] over the
    /// equivalent range — but replaces the hardware 64-bit division with two
    /// multiplies and a conditional subtract. Hot generators that draw from
    /// a fixed range every access precompute the distribution once instead
    /// of paying the division per draw.
    ///
    /// [`Rng::gen_range`]: super::Rng::gen_range
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        start: u64,
        /// Range width; `0` encodes the full-width `start..=start + u64::MAX`
        /// degenerate range (every draw is returned as-is).
        span: u64,
        /// `floor(2^64 / span)` (unused for spans 0 and 1).
        magic: u64,
    }

    impl Uniform {
        /// Distribution over `start..end` (half-open).
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        #[must_use]
        pub fn new(start: u64, end: u64) -> Self {
            assert!(start < end, "empty range in Uniform::new");
            Self::with_span(start, end - start)
        }

        /// Distribution over `start..=end` (inclusive).
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        #[must_use]
        pub fn new_inclusive(start: u64, end: u64) -> Self {
            assert!(start <= end, "empty range in Uniform::new_inclusive");
            Self::with_span(start, (end - start).wrapping_add(1))
        }

        fn with_span(start: u64, span: u64) -> Self {
            let magic = if span >= 2 {
                ((1u128 << 64) / u128::from(span)) as u64
            } else {
                0
            };
            Self { start, span, magic }
        }

        /// Draws one value (consumes one `next_u64`, like `gen_range`).
        #[inline]
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            let x = rng.next_u64();
            let rem = match self.span {
                0 => return self.start.wrapping_add(x),
                1 => 0,
                span => {
                    // Barrett reduction with `magic = floor(2^64 / span)`:
                    // the estimated quotient is `floor(x / span)` or one
                    // less, so one conditional subtract makes the remainder
                    // exact for every `x`.
                    let q = ((u128::from(x) * u128::from(self.magic)) >> 64) as u64;
                    let mut rem = x - q * span;
                    if rem >= span {
                        rem -= span;
                    }
                    debug_assert_eq!(rem, x % span);
                    rem
                }
            };
            self.start + rem
        }
    }
}

/// Named generators (upstream's `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_matches_gen_range_stream() {
        use super::distributions::Uniform;
        // Spans around powers of two, primes, 1, and the full-width
        // degenerate inclusive range: the precomputed distribution must
        // reproduce `gen_range`'s draws bit-for-bit from the same stream.
        for span in [1u64, 2, 3, 7, 8, 1000, 4096, 1 << 22, (1 << 62) + 3] {
            let mut a = StdRng::seed_from_u64(span);
            let mut b = StdRng::seed_from_u64(span);
            let half = Uniform::new(5, 5 + span);
            let incl = Uniform::new_inclusive(5, 5 + span);
            for _ in 0..200 {
                assert_eq!(half.sample(&mut a), b.gen_range(5..5 + span), "span {span}");
                assert_eq!(
                    incl.sample(&mut a),
                    b.gen_range(5..=5 + span),
                    "span {span}"
                );
            }
        }
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let full = Uniform::new_inclusive(0, u64::MAX);
        for _ in 0..100 {
            assert_eq!(full.sample(&mut a), b.gen_range(0..=u64::MAX));
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
