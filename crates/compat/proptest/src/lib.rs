//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the API subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`strategy::Just`],
//! `any::<T>()`, integer-range strategies, tuple composition, `prop_map`,
//! [`prop_oneof!`], and `prop::collection::vec`.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! seeds: each `#[test]` runs a fixed number of deterministically seeded
//! cases, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation for the [`proptest!`](crate::proptest) macro.

    /// Number of cases each property runs unless overridden with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    pub const CASES: u64 = 64;

    /// Per-block configuration (API subset of upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property in the block runs.
        pub cases: u64,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u64) -> Self {
            Self {
                cases: cases.max(1),
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: CASES }
        }
    }

    /// A small deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one numbered case of a property.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            Self {
                state: 0x5051_c0de_0b5e_55ed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (API subset of upstream `proptest::strategy`).

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical full-range strategy (upstream `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 != 0
        }
    }

    /// Full-range strategy for `T` (upstream `any::<T>()`).
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Boxes a strategy, erasing its concrete type (for [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice among boxed strategies of one value type.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.arms.len() as u64) as usize;
            self.arms[arm].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy with per-element strategy `element` and a length in
    /// `len` (half-open, as upstream).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring upstream's prelude.

    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __proptest_cases = ($cfg).cases;
                for case in 0..__proptest_cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );)+
                    $body
                }
            }
        )*
    };
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                for case in 0..$crate::test_runner::CASES {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn map_and_tuples(pair in (arb_even(), any::<bool>())) {
            prop_assert_eq!(pair.0 % 2, 0);
        }

        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
