//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the API subset the workspace benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`, and [`Bencher::iter`]. It measures wall-clock medians
//! over a fixed number of samples and prints one line per benchmark — no
//! statistics, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] (upstream deprecated its own copy).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the median sample time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up call, then timed samples.
        std_black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// Top-level benchmark driver (API subset of upstream `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling is count-based here.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed call.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut bencher);
        println!("bench {id:<48} median {:>12.3?}", bencher.last_median);
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
