//! Differential tests: every [`PatternStore`] backend against a scalar
//! reference oracle.
//!
//! The oracle is the *exact* query-with-promotion semantics: a map from line
//! to times-seen, `Security = min(times_seen − 1, secThr)`, captured when
//! `Security` reaches `secThr`. Each backend approximates this under its own
//! failure mode — fingerprint collisions and relocation (cuckoo), counter
//! sharing (bloom), generational forgetting (xor) — so the properties are
//! tiered:
//!
//! * exact agreement where the backend is exact (single items everywhere;
//!   xor below its rebuild point; cuckoo with collision-free item sets),
//! * one-sided bounds where it is not (bloom only ever *inflates*),
//! * structural invariants that hold unconditionally (clear, clone).

use std::collections::{HashMap, HashSet};

use auto_cuckoo::hash::candidate_buckets;
use auto_cuckoo::{build_store, fingerprint_of, FilterBackend, FilterParams};
use proptest::prelude::*;

/// The scalar reference: exact per-line counts, paper promotion rule.
struct ScalarOracle {
    counts: HashMap<u64, u32>,
    thr: u8,
}

struct OracleOutcome {
    inserted: bool,
    security: u8,
    captured: bool,
}

impl ScalarOracle {
    fn new(thr: u8) -> Self {
        Self {
            counts: HashMap::new(),
            thr,
        }
    }

    fn query(&mut self, item: u64) -> OracleOutcome {
        let count = self.counts.entry(item).or_insert(0);
        *count += 1;
        let seen = *count;
        let security = u8::try_from((seen - 1).min(u32::from(self.thr))).expect("capped at thr");
        OracleOutcome {
            inserted: seen == 1,
            security,
            captured: seen > 1 && security >= self.thr,
        }
    }

    fn security_of(&self, item: u64) -> Option<u8> {
        let seen = *self.counts.get(&item)?;
        Some(u8::try_from((seen - 1).min(u32::from(self.thr))).expect("capped at thr"))
    }
}

/// Parameters roomy enough that load effects stay controllable: at least
/// 512 entries of capacity with 4-wide buckets.
fn roomy_params() -> impl Strategy<Value = FilterParams> {
    (
        (7u32..=10),  // log2(l): 128..=1024 buckets
        (4usize..=8), // b
        (8u32..=14),  // f
        (2u32..=6),   // MNK
        (1u8..=3),    // secThr
        any::<u64>(), // seed
    )
        .prop_map(|(log_l, b, f, mnk, thr, seed)| {
            FilterParams::builder()
                .buckets(1 << log_l)
                .entries_per_bucket(b)
                .fingerprint_bits(f)
                .max_kicks(mnk)
                .security_threshold(thr)
                .seed(seed)
                .build()
                .expect("generated parameters are valid")
        })
}

proptest! {
    /// A single line promoted in isolation behaves identically to the oracle
    /// on every backend: same insert/merge split, same security staircase,
    /// same capture point. No backend has an excuse on one item.
    #[test]
    fn single_item_promotion_matches_oracle_everywhere(
        params in roomy_params(),
        item in any::<u64>(),
        repeats in 1usize..12,
    ) {
        for backend in FilterBackend::ALL {
            let mut store = build_store(backend, params).expect("valid params");
            let mut oracle = ScalarOracle::new(params.security_threshold());
            for round in 0..repeats {
                let got = store.query(item);
                let want = oracle.query(item);
                prop_assert_eq!(got.inserted, want.inserted, "{backend} round {round}");
                prop_assert_eq!(got.merged, !want.inserted, "{backend} round {round}");
                prop_assert_eq!(got.security, want.security, "{backend} round {round}");
                prop_assert_eq!(got.captured, want.captured, "{backend} round {round}");
                prop_assert!(store.contains(item), "{backend} lost the item");
                prop_assert_eq!(
                    store.security_of(item), oracle.security_of(item),
                    "{backend} security_of diverged at round {round}"
                );
            }
        }
    }

    /// The xor store's live window is an exact table: below the rebuild
    /// point (fresh store, fewer distinct lines than 7/8 of the window) it
    /// must agree with the oracle on *arbitrary* streams, query by query.
    #[test]
    fn xor_matches_oracle_exactly_below_rebuild(
        params in roomy_params(),
        items in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut store = build_store(FilterBackend::Xor, params).expect("valid params");
        let mut oracle = ScalarOracle::new(params.security_threshold());
        // 300 distinct lines < 7/8 of the ≥512-slot window: no rebuild.
        for (i, &item) in items.iter().enumerate() {
            let got = store.query(item);
            let want = oracle.query(item);
            prop_assert_eq!(got.inserted, want.inserted, "query {i}");
            prop_assert_eq!(got.security, want.security, "query {i}");
            prop_assert_eq!(got.captured, want.captured, "query {i}");
        }
        for &item in &items {
            prop_assert_eq!(store.security_of(item), oracle.security_of(item));
            prop_assert!(store.contains(item));
        }
    }

    /// The bloom store's counter sharing is inflationary only: on arbitrary
    /// streams it may report a line hotter than it is, never colder. So it
    /// never misses an oracle capture, never under-reports security, and
    /// never claims an insert for a line the oracle has seen.
    #[test]
    fn bloom_only_ever_inflates(
        params in roomy_params(),
        items in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        let mut store = build_store(FilterBackend::Bloom, params).expect("valid params");
        let mut oracle = ScalarOracle::new(params.security_threshold());
        for (i, &item) in items.iter().enumerate() {
            let got = store.query(item);
            let want = oracle.query(item);
            prop_assert!(got.security >= want.security, "under-reported at query {i}");
            prop_assert!(got.captured || !want.captured, "missed a capture at query {i}");
            prop_assert!(!got.inserted || want.inserted, "re-inserted a seen line at query {i}");
            prop_assert!(store.contains(item), "seen line must test present");
        }
    }

    /// With a collision-free item set (pairwise-distinct fingerprint/bucket
    /// pairs) at ≤50% load, both cuckoo backends are exact: they agree with
    /// the oracle query by query. The check stops early in the rare case a
    /// relocation walk overflows (autonomic deletion / failed insert), which
    /// is the one effect collision-freedom cannot rule out.
    #[test]
    fn cuckoo_backends_match_oracle_without_collisions(
        params in roomy_params(),
        raw in prop::collection::vec(any::<u64>(), 1..200),
        repeats in 1usize..5,
    ) {
        // Deduplicate by the identity the filters actually store.
        let mut seen = HashSet::new();
        let items: Vec<u64> = raw
            .into_iter()
            .filter(|&item| {
                let key = (
                    fingerprint_of(item, &params),
                    candidate_buckets(item, &params).canonical(),
                );
                seen.insert(key)
            })
            .take(params.capacity() / 2)
            .collect();

        for backend in [FilterBackend::Auto, FilterBackend::Classic] {
            let mut store = build_store(backend, params).expect("valid params");
            let mut oracle = ScalarOracle::new(params.security_threshold());
            'stream: for _ in 0..repeats {
                for &item in &items {
                    let got = store.query(item);
                    if got.autonomic_deletion.is_some() || (!got.inserted && !got.merged) {
                        // Overflow: a record was lost (auto) or refused
                        // (classic); exactness no longer applies.
                        break 'stream;
                    }
                    let want = oracle.query(item);
                    prop_assert_eq!(got.inserted, want.inserted, "{backend}");
                    prop_assert_eq!(got.security, want.security, "{backend}");
                    prop_assert_eq!(got.captured, want.captured, "{backend}");
                }
            }
        }
    }

    /// `clear` returns every backend to the empty state: nothing contained,
    /// statistics zeroed, and a fresh stream then behaves like a fresh store.
    #[test]
    fn clear_is_a_full_reset_on_every_backend(
        params in roomy_params(),
        items in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        for backend in FilterBackend::ALL {
            let mut store = build_store(backend, params).expect("valid params");
            for &item in &items {
                store.query(item);
            }
            store.clear();
            prop_assert!(store.is_empty(), "{backend} not empty after clear");
            prop_assert_eq!(store.len(), 0, "{backend} len after clear");
            prop_assert_eq!(store.stats_snapshot().queries, 0, "{backend} stats after clear");
            for &item in &items {
                prop_assert!(!store.contains(item), "{backend} still contains {item:#x}");
                prop_assert_eq!(store.security_of(item), None, "{backend} security after clear");
            }
            // Post-clear, the store answers like a fresh one.
            let first = store.query(items[0]);
            prop_assert!(first.inserted, "{backend} first query after clear must insert");
        }
    }

    /// `clone_box` and `clone_from_store` produce observably identical
    /// stores: the same follow-up stream yields the same outcomes.
    #[test]
    fn clones_are_observably_identical(
        params in roomy_params(),
        warm in prop::collection::vec(any::<u64>(), 1..150),
        probe in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        for backend in FilterBackend::ALL {
            let mut original = build_store(backend, params).expect("valid params");
            for &item in &warm {
                original.query(item);
            }
            let mut boxed = original.clone_box();
            let mut copied = build_store(backend, params).expect("valid params");
            copied.clone_from_store(original.as_ref());
            prop_assert_eq!(boxed.len(), original.len(), "{backend} clone_box len");
            prop_assert_eq!(copied.len(), original.len(), "{backend} clone_from len");
            for &item in &probe {
                let a = original.query(item);
                let b = boxed.query(item);
                let c = copied.query(item);
                prop_assert_eq!(a.security, b.security, "{backend} clone_box diverged");
                prop_assert_eq!(a.captured, b.captured, "{backend} clone_box diverged");
                prop_assert_eq!(a.security, c.security, "{backend} clone_from diverged");
                prop_assert_eq!(a.captured, c.captured, "{backend} clone_from diverged");
            }
        }
    }
}
