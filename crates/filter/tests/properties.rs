//! Property-based tests for the filter crate's core invariants.

use auto_cuckoo::hash::{alternate_bucket, candidate_buckets};
use auto_cuckoo::{fingerprint_of, AutoCuckooFilter, ClassicCuckooFilter, FilterParams};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = FilterParams> {
    (
        (2u32..=11),  // log2(l): 4..=2048 buckets
        (1usize..=8), // b
        (4u32..=16),  // f
        (0u32..=6),   // MNK
        (1u8..=3),    // secThr
        any::<u64>(), // seed
    )
        .prop_map(|(log_l, b, f, mnk, thr, seed)| {
            FilterParams::builder()
                .buckets(1 << log_l)
                .entries_per_bucket(b)
                .fingerprint_bits(f)
                .max_kicks(mnk)
                .security_threshold(thr)
                .seed(seed)
                .build()
                .expect("generated parameters are valid")
        })
}

proptest! {
    /// The partial-key identity must be an involution for every parameter set
    /// and every item: applying the alternate-bucket map twice returns the
    /// original bucket, and it maps the pair onto itself.
    #[test]
    fn xor_relocation_is_involution(params in arb_params(), item in any::<u64>()) {
        let pair = candidate_buckets(item, &params);
        let fp = fingerprint_of(item, &params);
        prop_assert!(pair.primary < params.buckets());
        prop_assert!(pair.alternate < params.buckets());
        prop_assert_eq!(alternate_bucket(pair.primary, fp, &params), pair.alternate);
        prop_assert_eq!(alternate_bucket(pair.alternate, fp, &params), pair.primary);
    }

    /// Auto-Cuckoo insertions never fail and never exceed capacity.
    #[test]
    fn auto_filter_never_overflows(params in arb_params(), items in prop::collection::vec(any::<u64>(), 1..400)) {
        let mut filter = AutoCuckooFilter::new(params).expect("valid params");
        for &item in &items {
            let out = filter.query(item);
            prop_assert!(out.inserted ^ out.merged, "exactly one of inserted/merged");
            prop_assert!(out.security <= params.security_threshold());
            prop_assert!(filter.len() <= params.capacity());
        }
    }

    /// Occupancy never decreases under queries (autonomic deletion replaces a
    /// record one-for-one).
    #[test]
    fn auto_filter_occupancy_monotone(params in arb_params(), items in prop::collection::vec(any::<u64>(), 1..400)) {
        let mut filter = AutoCuckooFilter::new(params).expect("valid params");
        let mut last = 0usize;
        for &item in &items {
            filter.query(item);
            prop_assert!(filter.len() >= last);
            last = filter.len();
        }
    }

    /// Immediately after a query, the item is present unless the relocation
    /// walk happened to displace and autonomically delete the item's own
    /// record (possible when the random walk revisits its bucket). In that
    /// case the reported deleted fingerprint must be the item's.
    #[test]
    fn queried_item_resident_unless_self_evicted(params in arb_params(), items in prop::collection::vec(any::<u64>(), 1..200)) {
        let mut filter = AutoCuckooFilter::new(params).expect("valid params");
        for &item in &items {
            let out = filter.query(item);
            let fp = fingerprint_of(item, &params);
            if out.autonomic_deletion != Some(fp) {
                prop_assert!(filter.contains(item), "item {item:#x} missing right after query");
            }
        }
    }

    /// Re-querying the same item `secThr` times after insertion must capture
    /// it, regardless of configuration or interleaved state.
    #[test]
    fn repeated_queries_capture(params in arb_params(), item in any::<u64>()) {
        let mut filter = AutoCuckooFilter::new(params).expect("valid params");
        filter.query(item);
        let mut captured = false;
        for _ in 0..params.security_threshold() {
            captured = filter.query(item).captured;
        }
        prop_assert!(captured);
    }

    /// The classic filter's delete is exact-on-fingerprint: after inserting
    /// and deleting the same item (with no other residents), contains is false.
    #[test]
    fn classic_insert_delete_roundtrip(params in arb_params(), item in any::<u64>()) {
        let mut filter = ClassicCuckooFilter::new(params).expect("valid params");
        if filter.insert(item).is_ok() {
            prop_assert!(filter.contains(item));
            filter.delete(item);
            prop_assert!(!filter.contains(item));
            prop_assert!(filter.is_empty());
        }
    }

    /// Filter statistics are internally consistent.
    #[test]
    fn stats_are_consistent(params in arb_params(), items in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut filter = AutoCuckooFilter::new(params).expect("valid params");
        for &item in &items {
            filter.query(item);
        }
        let s = filter.stats();
        prop_assert_eq!(s.queries, items.len() as u64);
        prop_assert_eq!(s.inserts + s.merges, s.queries);
        prop_assert!(s.autonomic_deletions <= s.inserts);
        prop_assert!(filter.len() as u64 <= s.inserts);
    }

    /// Determinism: the same parameter set (including seed) and item sequence
    /// produce identical filters.
    #[test]
    fn behaviour_is_deterministic(params in arb_params(), items in prop::collection::vec(any::<u64>(), 1..200)) {
        let run = || {
            let mut filter = AutoCuckooFilter::new(params).expect("valid params");
            let outs: Vec<_> = items.iter().map(|&i| filter.query(i)).collect();
            (outs, filter.len())
        };
        prop_assert_eq!(run(), run());
    }
}
