//! A single filter entry: the fPrint Array and Data Array fields of Fig. 5.
//!
//! Hardware layout per entry (paper §VII-D): 1 valid bit, `f`-bit fingerprint,
//! 2-bit saturating `Security` counter. The `addr_tally` field is *simulation
//! bookkeeping only* (used by the Fig. 4 collision census) and is documented
//! as not being part of the hardware.

/// One entry of the filter matrix.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::Entry;
///
/// let mut e = Entry::occupied(0x0abc);
/// assert!(e.is_valid());
/// assert_eq!(e.security(), 0);
/// e.bump_security(3);
/// e.bump_security(3);
/// e.bump_security(3);
/// e.bump_security(3); // saturates
/// assert_eq!(e.security(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Entry {
    valid: bool,
    fingerprint: u16,
    security: u8,
    addr_tally: u32,
}

impl Entry {
    /// An empty (invalid) entry.
    #[must_use]
    pub fn vacant() -> Self {
        Self::default()
    }

    /// A freshly inserted entry holding `fingerprint` with `Security = 0`
    /// and an address tally of one.
    #[must_use]
    pub fn occupied(fingerprint: u16) -> Self {
        Self {
            valid: true,
            fingerprint,
            security: 0,
            addr_tally: 1,
        }
    }

    /// Whether the entry holds a record.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The stored fingerprint. Meaningless when invalid.
    #[must_use]
    pub fn fingerprint(&self) -> u16 {
        self.fingerprint
    }

    /// Current `Security` counter value.
    #[must_use]
    pub fn security(&self) -> u8 {
        self.security
    }

    /// Whether this valid entry matches `fingerprint`.
    #[must_use]
    pub fn matches(&self, fingerprint: u16) -> bool {
        self.valid && self.fingerprint == fingerprint
    }

    /// Increments `Security`, saturating at `threshold`, and returns the new
    /// value. Also counts a merge into this entry for the collision census.
    pub fn bump_security(&mut self, threshold: u8) -> u8 {
        debug_assert!(self.valid, "bump_security on vacant entry");
        if self.security < threshold {
            self.security += 1;
        }
        self.security
    }

    /// Records that an additional (presumed distinct) address coalesced into
    /// this entry. Simulation bookkeeping for the Fig. 4 census.
    pub fn note_collision(&mut self) {
        self.addr_tally = self.addr_tally.saturating_add(1);
    }

    /// Number of addresses that have been coalesced into this entry since it
    /// was (re)inserted: 1 means no fingerprint collision.
    #[must_use]
    pub fn addr_tally(&self) -> u32 {
        self.addr_tally
    }

    /// Invalidates the entry, returning its previous contents.
    pub fn evict(&mut self) -> Entry {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vacant_entry_is_invalid_and_matches_nothing() {
        let e = Entry::vacant();
        assert!(!e.is_valid());
        assert!(!e.matches(0));
        assert!(!e.matches(42));
        assert_eq!(e.security(), 0);
        assert_eq!(e.addr_tally(), 0);
    }

    #[test]
    fn occupied_entry_matches_its_fingerprint_only() {
        let e = Entry::occupied(0x7ff);
        assert!(e.matches(0x7ff));
        assert!(!e.matches(0x7fe));
        assert_eq!(e.addr_tally(), 1);
    }

    #[test]
    fn security_saturates_at_threshold() {
        let mut e = Entry::occupied(1);
        assert_eq!(e.bump_security(3), 1);
        assert_eq!(e.bump_security(3), 2);
        assert_eq!(e.bump_security(3), 3);
        assert_eq!(e.bump_security(3), 3);
        assert_eq!(e.security(), 3);
    }

    #[test]
    fn security_saturates_at_lower_thresholds_too() {
        let mut e = Entry::occupied(1);
        assert_eq!(e.bump_security(1), 1);
        assert_eq!(e.bump_security(1), 1);
    }

    #[test]
    fn evict_leaves_vacant_and_returns_old() {
        let mut e = Entry::occupied(9);
        e.bump_security(3);
        let old = e.evict();
        assert!(old.is_valid());
        assert_eq!(old.fingerprint(), 9);
        assert_eq!(old.security(), 1);
        assert!(!e.is_valid());
    }

    #[test]
    fn collision_tally_counts_merges() {
        let mut e = Entry::occupied(5);
        e.note_collision();
        e.note_collision();
        assert_eq!(e.addr_tally(), 3);
    }
}
