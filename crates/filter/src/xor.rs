//! Xor-filter pattern store with periodic rebuild.
//!
//! This backend splits pattern state into two generations:
//!
//! * a **live window** — an exact open-addressing table of
//!   `(line, Security)` pairs sized for `params.capacity()` lines, and
//! * a **frozen history** — an 8-bit xor filter (Graf–Lemire three-segment
//!   peeling construction) built from the live window's keys whenever the
//!   window fills past 7/8 occupancy.
//!
//! A query first probes the live window; a hit bumps `Security` exactly as
//! the cuckoo backends do. On a miss, membership in the frozen history grants
//! one level of *history credit*: a line that was tracked in the previous
//! window re-enters at `Security = 1` instead of `0`, so a Ping-Pong pattern
//! that straddles a rebuild loses at most one promotion step. Rebuilds
//! *forget* security levels (the xor filter stores membership only), which is
//! the backend's ablation signature: near-zero false positives between
//! rebuilds — the live window is exact — at the cost of a detection-latency
//! penalty across rebuild boundaries plus membership-only false positives
//! (≈ 1/256 per probe) from the frozen filter.
//!
//! All rebuild scratch (peeling masks, counts, queue, stack) is allocated
//! once at construction, so steady-state queries and rebuilds are
//! allocation-free, matching the repo's pinned hot-path contract.
//!
//! Reported memory models the hardware layout rather than the simulation's
//! exact keys: a real live window would store `f`-bit tags plus 2-bit
//! security like the cuckoo table (`(1 + f + 2)` bits/entry), and the frozen
//! filter costs `⌈1.23 · n⌉ + 32` bytes for `n` frozen lines.

use std::fmt;

use crate::hash::mix64;
use crate::params::{FilterParams, ParamsError};
use crate::stats::FilterStats;
use crate::store::QueryOutcome;

/// Sentinel in the `secs` array marking a vacant live slot (valid security
/// levels are tiny, so `0xFF` is unambiguous).
const VACANT: u8 = 0xff;
/// Live-window probe-hash domain separation.
const LIVE_SALT: u64 = 0x11fe_5a17_ab1e_5eed;
/// Second mix constant for xor-filter position derivation.
const XOR_MIX: u64 = 0x9e6c_63d0_676a_9a9a;
/// Rebuild triggers at this fraction of the live window (7/8 full).
const REBUILD_NUM: usize = 7;
const REBUILD_DEN: usize = 8;
/// Peeling retry bound; failure probability per seed is already tiny.
const MAX_SEED_ATTEMPTS: u64 = 128;

/// Arena size for an `n`-key xor filter: `⌈1.23 n⌉ + 32`, rounded up to a
/// multiple of 3 so it splits into equal segments.
fn xor_arena_size(n: usize) -> usize {
    let c = n + (n * 23).div_ceil(100) + 32;
    c.div_ceil(3) * 3
}

/// Multiply-shift reduction of a 32-bit hash onto `0..n`.
#[inline]
fn reduce32(x: u32, n: usize) -> usize {
    ((u64::from(x) * n as u64) >> 32) as usize
}

/// Fingerprint and the three segment positions of `item` under `seed`.
#[inline]
fn xor_positions(item: u64, seed: u64, segment: usize) -> (u8, [usize; 3]) {
    let a = mix64(item.wrapping_add(seed));
    let b = mix64(a ^ XOR_MIX);
    let fp = (b >> 56) as u8;
    (
        fp,
        [
            reduce32(a as u32, segment),
            segment + reduce32((a >> 32) as u32, segment),
            2 * segment + reduce32(b as u32, segment),
        ],
    )
}

/// The two-generation xor-filter pattern store.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{FilterParams, XorPatternStore};
///
/// # fn main() -> Result<(), auto_cuckoo::ParamsError> {
/// let mut store = XorPatternStore::new(FilterParams::paper_default())?;
/// assert!(store.query(0x40).inserted);
/// store.query(0x40);
/// store.query(0x40);
/// assert!(store.query(0x40).captured); // Security reached secThr
/// # Ok(())
/// # }
/// ```
pub struct XorPatternStore {
    params: FilterParams,
    /// Live-window keys; meaningful only where `secs[i] != VACANT`.
    keys: Vec<u64>,
    /// Live-window security levels, `VACANT` marking empty slots.
    secs: Vec<u8>,
    /// Power-of-two live-window index mask.
    mask: usize,
    live_len: usize,
    /// Live occupancy that triggers a rebuild.
    rebuild_at: usize,
    /// Frozen xor-filter fingerprint arena (first `frozen_c` bytes valid).
    fps: Vec<u8>,
    frozen_c: usize,
    frozen_segment: usize,
    frozen_seed: u64,
    /// Keys folded into the frozen filter at the last rebuild.
    frozen_len: usize,
    rebuilds: u64,
    // Preallocated peeling scratch (sized for a full live window).
    build_mask: Vec<u64>,
    build_count: Vec<u32>,
    build_queue: Vec<u32>,
    stack_key: Vec<u64>,
    stack_slot: Vec<u32>,
    stats: FilterStats,
}

impl fmt::Debug for XorPatternStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XorPatternStore")
            .field("params", &self.params)
            .field("live_len", &self.live_len)
            .field("frozen_len", &self.frozen_len)
            .field("rebuilds", &self.rebuilds)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Clone for XorPatternStore {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            keys: self.keys.clone(),
            secs: self.secs.clone(),
            mask: self.mask,
            live_len: self.live_len,
            rebuild_at: self.rebuild_at,
            fps: self.fps.clone(),
            frozen_c: self.frozen_c,
            frozen_segment: self.frozen_segment,
            frozen_seed: self.frozen_seed,
            frozen_len: self.frozen_len,
            rebuilds: self.rebuilds,
            build_mask: self.build_mask.clone(),
            build_count: self.build_count.clone(),
            build_queue: self.build_queue.clone(),
            stack_key: self.stack_key.clone(),
            stack_slot: self.stack_slot.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Overwrites `self` with `source` while reusing every allocation
    /// (epoch-engine snapshot contract).
    fn clone_from(&mut self, source: &Self) {
        self.params = source.params;
        self.keys.clone_from(&source.keys);
        self.secs.clone_from(&source.secs);
        self.mask = source.mask;
        self.live_len = source.live_len;
        self.rebuild_at = source.rebuild_at;
        self.fps.clone_from(&source.fps);
        self.frozen_c = source.frozen_c;
        self.frozen_segment = source.frozen_segment;
        self.frozen_seed = source.frozen_seed;
        self.frozen_len = source.frozen_len;
        self.rebuilds = source.rebuilds;
        self.build_mask.clone_from(&source.build_mask);
        self.build_count.clone_from(&source.build_count);
        self.build_queue.clone_from(&source.build_queue);
        self.stack_key.clone_from(&source.stack_key);
        self.stack_slot.clone_from(&source.stack_slot);
        self.stats = source.stats.clone();
    }
}

impl XorPatternStore {
    /// Creates an empty store sized for `params.capacity()` live lines.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `params` fails validation.
    pub fn new(params: FilterParams) -> Result<Self, ParamsError> {
        params.validate()?;
        let slots = params.capacity().next_power_of_two().max(64);
        let c_max = xor_arena_size(slots);
        Ok(Self {
            keys: vec![0u64; slots],
            secs: vec![VACANT; slots],
            mask: slots - 1,
            live_len: 0,
            rebuild_at: slots * REBUILD_NUM / REBUILD_DEN,
            fps: vec![0u8; c_max],
            frozen_c: 0,
            frozen_segment: 0,
            frozen_seed: 0,
            frozen_len: 0,
            rebuilds: 0,
            build_mask: vec![0u64; c_max],
            build_count: vec![0u32; c_max],
            build_queue: Vec::with_capacity(c_max),
            stack_key: Vec::with_capacity(slots),
            stack_slot: Vec::with_capacity(slots),
            stats: FilterStats::default(),
            params,
        })
    }

    /// The store's parameters.
    #[must_use]
    pub fn params(&self) -> &FilterParams {
        &self.params
    }

    /// Cumulative operation statistics.
    #[must_use]
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// Lines in the live window (frozen history is membership-only and not
    /// counted; see [`Self::frozen_len`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live_len
    }

    /// Whether both generations are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live_len == 0 && self.frozen_len == 0
    }

    /// Live-window occupancy, in `0.0..=1.0`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.live_len as f64 / self.keys.len() as f64
    }

    /// Lines folded into the frozen filter at the last rebuild.
    #[must_use]
    pub fn frozen_len(&self) -> usize {
        self.frozen_len
    }

    /// Rebuilds performed since construction or [`Self::clear`].
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Modelled hardware memory: tag-compressed live entries at
    /// `(1 + f + 2)` bits each plus the frozen fingerprint arena.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let live_bits = self.keys.len() * (1 + self.params.fingerprint_bits() as usize + 2);
        live_bits.div_ceil(8) + self.frozen_c
    }

    /// Empties both generations and resets statistics.
    pub fn clear(&mut self) {
        self.secs.fill(VACANT);
        self.live_len = 0;
        self.frozen_c = 0;
        self.frozen_segment = 0;
        self.frozen_seed = 0;
        self.frozen_len = 0;
        self.rebuilds = 0;
        self.stats = FilterStats::default();
    }

    #[inline]
    fn home_slot(&self, item: u64) -> usize {
        mix64(item ^ LIVE_SALT) as usize & self.mask
    }

    /// Whether the frozen filter claims membership of `item`.
    #[inline]
    fn frozen_contains(&self, item: u64) -> bool {
        if self.frozen_len == 0 {
            return false;
        }
        let (fp, [p0, p1, p2]) = xor_positions(item, self.frozen_seed, self.frozen_segment);
        self.fps[p0] ^ self.fps[p1] ^ self.fps[p2] == fp
    }

    /// The query-with-promotion operation. Live hits promote exactly like the
    /// cuckoo backends; live misses consult the frozen history for one level
    /// of re-entry credit, then insert (rebuilding first if the window is
    /// full).
    pub fn query(&mut self, item: u64) -> QueryOutcome {
        self.stats.queries += 1;
        let thr = self.params.security_threshold();
        let mut idx = self.home_slot(item);
        loop {
            if self.secs[idx] == VACANT {
                break;
            }
            if self.keys[idx] == item {
                let sec = (self.secs[idx] + 1).min(thr);
                self.secs[idx] = sec;
                let captured = sec >= thr;
                self.stats.merges += 1;
                if captured {
                    self.stats.captures += 1;
                }
                return QueryOutcome {
                    security: sec,
                    inserted: false,
                    merged: true,
                    captured,
                    kicks: 0,
                    autonomic_deletion: None,
                };
            }
            idx = (idx + 1) & self.mask;
        }
        // Live miss: rebuild if the window is full, then insert with any
        // history credit the frozen generation grants.
        if self.live_len >= self.rebuild_at {
            self.rebuild();
            idx = self.home_slot(item);
            while self.secs[idx] != VACANT {
                idx = (idx + 1) & self.mask;
            }
        }
        let remembered = self.frozen_contains(item);
        let sec = if remembered { 1u8.min(thr) } else { 0 };
        self.keys[idx] = item;
        self.secs[idx] = sec;
        self.live_len += 1;
        let captured = remembered && sec >= thr;
        if remembered {
            self.stats.merges += 1;
        } else {
            self.stats.inserts += 1;
        }
        if captured {
            self.stats.captures += 1;
        }
        QueryOutcome {
            security: sec,
            inserted: !remembered,
            merged: remembered,
            captured,
            kicks: 0,
            autonomic_deletion: None,
        }
    }

    /// Whether the item is tracked live or claimed by the frozen history.
    #[must_use]
    pub fn contains(&self, item: u64) -> bool {
        self.live_security(item).is_some() || self.frozen_contains(item)
    }

    /// Current `Security` of the item: exact for live lines, history credit
    /// (`1`) for frozen-only lines.
    #[must_use]
    pub fn security_of(&self, item: u64) -> Option<u8> {
        if let Some(sec) = self.live_security(item) {
            return Some(sec);
        }
        self.frozen_contains(item)
            .then(|| 1u8.min(self.params.security_threshold()))
    }

    #[inline]
    fn live_security(&self, item: u64) -> Option<u8> {
        let mut idx = self.home_slot(item);
        loop {
            if self.secs[idx] == VACANT {
                return None;
            }
            if self.keys[idx] == item {
                return Some(self.secs[idx]);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Freezes the live window into a fresh xor filter and empties it.
    /// Runs Graf–Lemire peeling in the preallocated scratch buffers.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let n = self.live_len;
        if n == 0 {
            self.frozen_c = 0;
            self.frozen_len = 0;
            return;
        }
        let c = xor_arena_size(n);
        let segment = c / 3;
        let mut attempt = 0u64;
        loop {
            let seed = mix64(self.rebuilds.wrapping_mul(0x517c_c1b7_2722_0a95) ^ attempt);
            self.build_mask[..c].fill(0);
            self.build_count[..c].fill(0);
            for i in 0..self.secs.len() {
                if self.secs[i] == VACANT {
                    continue;
                }
                let key = self.keys[i];
                let (_, ps) = xor_positions(key, seed, segment);
                for p in ps {
                    self.build_mask[p] ^= key;
                    self.build_count[p] += 1;
                }
            }
            self.build_queue.clear();
            for (slot, &count) in self.build_count[..c].iter().enumerate() {
                if count == 1 {
                    self.build_queue.push(slot as u32);
                }
            }
            self.stack_key.clear();
            self.stack_slot.clear();
            while let Some(slot) = self.build_queue.pop() {
                let slot = slot as usize;
                if self.build_count[slot] != 1 {
                    continue;
                }
                let key = self.build_mask[slot];
                self.stack_key.push(key);
                self.stack_slot.push(slot as u32);
                let (_, ps) = xor_positions(key, seed, segment);
                for p in ps {
                    self.build_mask[p] ^= key;
                    self.build_count[p] -= 1;
                    if self.build_count[p] == 1 {
                        self.build_queue.push(p as u32);
                    }
                }
            }
            if self.stack_key.len() == n {
                self.fps[..c].fill(0);
                for i in (0..n).rev() {
                    let key = self.stack_key[i];
                    let slot = self.stack_slot[i] as usize;
                    let (fp, [p0, p1, p2]) = xor_positions(key, seed, segment);
                    self.fps[slot] = fp ^ self.fps[p0] ^ self.fps[p1] ^ self.fps[p2];
                }
                self.frozen_seed = seed;
                self.frozen_c = c;
                self.frozen_segment = segment;
                self.frozen_len = n;
                break;
            }
            attempt += 1;
            assert!(
                attempt < MAX_SEED_ATTEMPTS,
                "xor-filter peeling failed {MAX_SEED_ATTEMPTS} seeds for {n} keys"
            );
        }
        self.secs.fill(VACANT);
        self.live_len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> XorPatternStore {
        XorPatternStore::new(FilterParams::paper_default()).expect("valid")
    }

    #[test]
    fn fresh_store_is_empty() {
        let s = store();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.frozen_len(), 0);
        assert!(!s.contains(0x40));
        assert_eq!(s.security_of(0x40), None);
    }

    #[test]
    fn promotion_matches_cuckoo_latency() {
        let mut s = store();
        let out = s.query(0x40);
        assert!(out.inserted && out.security == 0);
        assert_eq!(s.query(0x40).security, 1);
        assert_eq!(s.query(0x40).security, 2);
        let out = s.query(0x40);
        assert_eq!(out.security, 3);
        assert!(out.captured);
        assert_eq!(s.security_of(0x40), Some(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn rebuild_preserves_membership_without_false_negatives() {
        let mut s = store();
        let tracked: Vec<u64> = (0..s.rebuild_at as u64).map(|i| mix64(i) | 1).collect();
        for &line in &tracked {
            s.query(line);
        }
        assert_eq!(s.rebuilds(), 0);
        // One more distinct line trips the rebuild.
        s.query(0x7777_7777);
        assert_eq!(s.rebuilds(), 1);
        assert_eq!(s.frozen_len(), tracked.len());
        // Xor filters have no false negatives: every frozen line answers yes.
        for &line in &tracked {
            assert!(s.contains(line), "frozen membership lost for {line:#x}");
        }
    }

    #[test]
    fn history_credit_fast_tracks_reentry() {
        let mut s = store();
        let line = 0xabcd_0040u64;
        s.query(line); // Security 0 in the live window.
                       // Fill the window with other lines until a rebuild evicts it.
        let mut i = 0u64;
        while s.rebuilds() == 0 {
            s.query(mix64(i) | 1);
            i += 1;
        }
        // Re-entry lands at Security 1 (history credit), not 0.
        let out = s.query(line);
        assert!(out.merged && !out.inserted);
        assert_eq!(out.security, 1);
    }

    #[test]
    fn frozen_false_positive_rate_is_near_spec() {
        let mut s = store();
        // Freeze a full window, then probe lines never inserted.
        let mut i = 0u64;
        while s.rebuilds() == 0 {
            s.query(mix64(i) | 1);
            i += 1;
        }
        let mut fps = 0u32;
        let probes = 200_000u64;
        for j in 0..probes {
            if s.frozen_contains(mix64(0x5000_0000 + j) & !1) {
                fps += 1;
            }
        }
        let rate = f64::from(fps) / probes as f64;
        // 8-bit fingerprints target 1/256 ≈ 0.39%; allow generous slack.
        assert!(rate < 0.01, "frozen fp rate too high: {rate}");
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = store();
        for i in 0..20_000u64 {
            s.query(mix64(i));
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.rebuilds(), 0);
        assert_eq!(s.stats().queries, 0);
        assert!(!s.contains(mix64(3)));
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut a = store();
        for i in 0..20_000u64 {
            a.query(mix64(i));
        }
        let mut b = store();
        b.clone_from(&a);
        assert_eq!(b.len(), a.len());
        assert_eq!(b.frozen_len(), a.frozen_len());
        assert_eq!(b.stats(), a.stats());
        assert_eq!(b.security_of(mix64(5)), a.security_of(mix64(5)));
    }

    #[test]
    fn memory_accounts_live_tags_plus_frozen_arena() {
        let s = store();
        let live_bits = s.keys.len() * (1 + 12 + 2);
        assert_eq!(s.memory_bytes(), live_bits.div_ceil(8));
        let mut s = store();
        let mut i = 0u64;
        while s.rebuilds() == 0 {
            s.query(mix64(i) | 1);
            i += 1;
        }
        assert_eq!(s.memory_bytes(), live_bits.div_ceil(8) + s.frozen_c);
    }
}
