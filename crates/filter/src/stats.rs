//! Operation statistics and the fingerprint-collision census used by the
//! paper's Fig. 3 (occupancy) and Fig. 4 (collision ratio) experiments.

use crate::entry::Entry;

/// Cumulative counters over a filter's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Total [`query`](crate::AutoCuckooFilter::query) calls.
    pub queries: u64,
    /// Queries that found an existing matching record.
    pub merges: u64,
    /// Queries that inserted a fresh record.
    pub inserts: u64,
    /// Total relocations performed across all insertions.
    pub kicks: u64,
    /// Insertions that ended in an autonomic deletion.
    pub autonomic_deletions: u64,
    /// Queries whose response reached `secThr` (Ping-Pong captures).
    pub captures: u64,
}

impl FilterStats {
    /// Average relocations per insertion; `0.0` when nothing was inserted.
    #[must_use]
    pub fn kicks_per_insert(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.kicks as f64 / self.inserts as f64
        }
    }

    /// Fraction of queries that merged into an existing record.
    #[must_use]
    pub fn merge_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.merges as f64 / self.queries as f64
        }
    }
}

/// One point on an occupancy-vs-insertions curve (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySample {
    /// Number of insertions performed so far.
    pub insertions: u64,
    /// Fraction of filter entries valid at that point, `0.0..=1.0`.
    pub occupancy: f64,
}

/// Census of fingerprint collisions across a filter's valid entries (Fig. 4).
///
/// `counts[k]` is the number of valid entries into which exactly `k + 1`
/// distinct addresses have coalesced: `counts[0]` are collision-free entries,
/// `counts[1]` entries hold two collided addresses, and so on. The final
/// bucket aggregates everything at or beyond the census width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionCensus {
    counts: Vec<u64>,
    total: u64,
}

/// Number of distinct tally classes tracked before aggregation (1 address,
/// 2 addresses, 3 addresses, ≥4 addresses).
const CENSUS_WIDTH: usize = 4;

impl CollisionCensus {
    /// Builds a census from an iterator of valid entries.
    pub fn from_entries<'a, I>(entries: I) -> Self
    where
        I: IntoIterator<Item = &'a Entry>,
    {
        let mut counts = vec![0u64; CENSUS_WIDTH];
        let mut total = 0u64;
        for entry in entries {
            debug_assert!(entry.is_valid());
            let tally = entry.addr_tally().max(1) as usize;
            let class = (tally - 1).min(CENSUS_WIDTH - 1);
            counts[class] += 1;
            total += 1;
        }
        Self { counts, total }
    }

    /// Total valid entries examined.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.total
    }

    /// Number of entries holding exactly `addresses` collided addresses
    /// (`addresses >= 1`); the last class aggregates `>= CENSUS_WIDTH`.
    ///
    /// # Panics
    ///
    /// Panics if `addresses == 0`.
    #[must_use]
    pub fn entries_with(&self, addresses: usize) -> u64 {
        assert!(addresses >= 1, "an entry holds at least one address");
        let class = (addresses - 1).min(CENSUS_WIDTH - 1);
        self.counts[class]
    }

    /// Fraction of entries with at least one fingerprint collision
    /// (i.e. holding two or more addresses). This is the y-axis of Fig. 4.
    #[must_use]
    pub fn collision_ratio(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let collided: u64 = self.counts[1..].iter().sum();
        collided as f64 / self.total as f64
    }

    /// Fraction of entries holding strictly more than two addresses (the
    /// paper observes this approaches zero at f = 12).
    #[must_use]
    pub fn heavy_collision_ratio(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let heavy: u64 = self.counts[2..].iter().sum();
        heavy as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;

    fn entry_with_tally(tally: u32) -> Entry {
        let mut e = Entry::occupied(1);
        for _ in 1..tally {
            e.note_collision();
        }
        e
    }

    #[test]
    fn stats_derived_rates() {
        let s = FilterStats {
            queries: 10,
            merges: 4,
            inserts: 6,
            kicks: 12,
            autonomic_deletions: 1,
            captures: 2,
        };
        assert!((s.kicks_per_insert() - 2.0).abs() < 1e-12);
        assert!((s.merge_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stats_rates_are_zero_when_empty() {
        let s = FilterStats::default();
        assert_eq!(s.kicks_per_insert(), 0.0);
        assert_eq!(s.merge_rate(), 0.0);
    }

    #[test]
    fn census_classifies_by_tally() {
        let entries = [
            entry_with_tally(1),
            entry_with_tally(1),
            entry_with_tally(2),
            entry_with_tally(3),
            entry_with_tally(9),
        ];
        let census = CollisionCensus::from_entries(entries.iter());
        assert_eq!(census.total_entries(), 5);
        assert_eq!(census.entries_with(1), 2);
        assert_eq!(census.entries_with(2), 1);
        assert_eq!(census.entries_with(3), 1);
        assert_eq!(census.entries_with(4), 1); // aggregated >= 4
        assert!((census.collision_ratio() - 0.6).abs() < 1e-12);
        assert!((census.heavy_collision_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn census_of_empty_iterator() {
        let census = CollisionCensus::from_entries(std::iter::empty());
        assert_eq!(census.total_entries(), 0);
        assert_eq!(census.collision_ratio(), 0.0);
        assert_eq!(census.heavy_collision_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn census_rejects_zero_addresses() {
        let census = CollisionCensus::from_entries(std::iter::empty());
        let _ = census.entries_with(0);
    }
}
