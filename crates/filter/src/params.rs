//! Filter geometry and policy parameters (Table I of the paper).

use std::error::Error;
use std::fmt;

/// Errors produced when validating [`FilterParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParamsError {
    /// The number of buckets `l` must be a power of two so that the XOR
    /// alternate-bucket identity is an involution over bucket indices.
    BucketsNotPowerOfTwo(usize),
    /// The number of buckets `l` must be nonzero.
    ZeroBuckets,
    /// The bucket width `b` must be nonzero.
    ZeroEntriesPerBucket,
    /// Fingerprint width `f` must be in `1..=16` (entries store `u16`).
    FingerprintWidthOutOfRange(u32),
    /// `secThr` must fit in the 2-bit saturating Security counter (`1..=3`).
    SecurityThresholdOutOfRange(u8),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::BucketsNotPowerOfTwo(l) => {
                write!(f, "bucket count {l} is not a power of two")
            }
            ParamsError::ZeroBuckets => write!(f, "bucket count must be nonzero"),
            ParamsError::ZeroEntriesPerBucket => {
                write!(f, "entries per bucket must be nonzero")
            }
            ParamsError::FingerprintWidthOutOfRange(bits) => {
                write!(f, "fingerprint width {bits} is outside 1..=16")
            }
            ParamsError::SecurityThresholdOutOfRange(thr) => {
                write!(f, "security threshold {thr} is outside 1..=3")
            }
        }
    }
}

impl Error for ParamsError {}

/// Geometry and policy parameters of a Cuckoo filter.
///
/// Notation follows Table I of the paper:
///
/// | field | paper symbol | meaning |
/// |---|---|---|
/// | `buckets` | `l` | number of bucket rows |
/// | `entries_per_bucket` | `b` | entries per bucket row |
/// | `fingerprint_bits` | `f` | fingerprint width in bits |
/// | `max_kicks` | `MNK` | maximal number of relocations per insertion |
/// | `security_threshold` | `secThr` | Security saturation = Ping-Pong capture |
///
/// # Examples
///
/// ```
/// use auto_cuckoo::FilterParams;
///
/// let p = FilterParams::paper_default();
/// assert_eq!(p.buckets(), 1024);
/// assert_eq!(p.entries_per_bucket(), 8);
/// assert_eq!(p.fingerprint_bits(), 12);
/// assert_eq!(p.max_kicks(), 4);
/// assert_eq!(p.security_threshold(), 3);
/// assert_eq!(p.capacity(), 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilterParams {
    buckets: usize,
    entries_per_bucket: usize,
    fingerprint_bits: u32,
    max_kicks: u32,
    security_threshold: u8,
    seed: u64,
}

impl FilterParams {
    /// The configuration evaluated in the paper (Table II):
    /// `l = 1024, b = 8, f = 12, MNK = 4, secThr = 3` (ε ≈ 0.004).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            buckets: 1024,
            entries_per_bucket: 8,
            fingerprint_bits: 12,
            max_kicks: 4,
            security_threshold: 3,
            seed: 0x5151_c0de,
        }
    }

    /// Starts building a custom parameter set from the paper defaults.
    #[must_use]
    pub fn builder() -> FilterParamsBuilder {
        FilterParamsBuilder::new()
    }

    /// Number of bucket rows (`l`).
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Entries per bucket row (`b`).
    #[must_use]
    pub fn entries_per_bucket(&self) -> usize {
        self.entries_per_bucket
    }

    /// Fingerprint width in bits (`f`).
    #[must_use]
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// Maximal number of kicks per insertion (`MNK`).
    #[must_use]
    pub fn max_kicks(&self) -> u32 {
        self.max_kicks
    }

    /// Security counter saturation value (`secThr`).
    #[must_use]
    pub fn security_threshold(&self) -> u8 {
        self.security_threshold
    }

    /// Seed for the filter's deterministic victim-selection randomness.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total entry capacity, `l × b`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buckets * self.entries_per_bucket
    }

    /// Bit mask selecting a bucket index (requires `l` to be a power of two).
    #[must_use]
    pub fn bucket_mask(&self) -> u64 {
        (self.buckets as u64) - 1
    }

    /// Bit mask selecting a fingerprint.
    #[must_use]
    pub fn fingerprint_mask(&self) -> u16 {
        if self.fingerprint_bits >= 16 {
            u16::MAX
        } else {
            ((1u32 << self.fingerprint_bits) - 1) as u16
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] when `l` is zero or not a power of two, `b`
    /// is zero, `f` is outside `1..=16`, or `secThr` is outside `1..=3`.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if self.buckets == 0 {
            return Err(ParamsError::ZeroBuckets);
        }
        if !self.buckets.is_power_of_two() {
            return Err(ParamsError::BucketsNotPowerOfTwo(self.buckets));
        }
        if self.entries_per_bucket == 0 {
            return Err(ParamsError::ZeroEntriesPerBucket);
        }
        if self.fingerprint_bits == 0 || self.fingerprint_bits > 16 {
            return Err(ParamsError::FingerprintWidthOutOfRange(
                self.fingerprint_bits,
            ));
        }
        if self.security_threshold == 0 || self.security_threshold > 3 {
            return Err(ParamsError::SecurityThresholdOutOfRange(
                self.security_threshold,
            ));
        }
        Ok(())
    }
}

impl Default for FilterParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`FilterParams`].
///
/// # Examples
///
/// ```
/// use auto_cuckoo::FilterParams;
///
/// # fn main() -> Result<(), auto_cuckoo::ParamsError> {
/// let p = FilterParams::builder()
///     .buckets(512)
///     .entries_per_bucket(8)
///     .fingerprint_bits(12)
///     .max_kicks(4)
///     .build()?;
/// assert_eq!(p.capacity(), 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FilterParamsBuilder {
    params: FilterParams,
}

impl FilterParamsBuilder {
    /// Creates a builder initialised to [`FilterParams::paper_default`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            params: FilterParams::paper_default(),
        }
    }

    /// Sets the number of bucket rows (`l`); must be a power of two.
    #[must_use]
    pub fn buckets(mut self, l: usize) -> Self {
        self.params.buckets = l;
        self
    }

    /// Sets the number of entries per bucket (`b`).
    #[must_use]
    pub fn entries_per_bucket(mut self, b: usize) -> Self {
        self.params.entries_per_bucket = b;
        self
    }

    /// Sets the fingerprint width in bits (`f`), `1..=16`.
    #[must_use]
    pub fn fingerprint_bits(mut self, f: u32) -> Self {
        self.params.fingerprint_bits = f;
        self
    }

    /// Sets the maximal number of kicks (`MNK`). `0` is allowed and means an
    /// insertion into two full buckets immediately evicts a victim.
    #[must_use]
    pub fn max_kicks(mut self, mnk: u32) -> Self {
        self.params.max_kicks = mnk;
        self
    }

    /// Sets the Security saturation threshold (`secThr`), `1..=3`.
    #[must_use]
    pub fn security_threshold(mut self, thr: u8) -> Self {
        self.params.security_threshold = thr;
        self
    }

    /// Sets the seed of the filter's deterministic randomness.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Validates and returns the parameter set.
    ///
    /// # Errors
    ///
    /// Propagates [`FilterParams::validate`] failures.
    pub fn build(self) -> Result<FilterParams, ParamsError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

impl Default for FilterParamsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        FilterParams::paper_default().validate().expect("valid");
    }

    #[test]
    fn paper_default_capacity_is_8192() {
        assert_eq!(FilterParams::paper_default().capacity(), 8192);
    }

    #[test]
    fn builder_round_trips_all_fields() {
        let p = FilterParams::builder()
            .buckets(2048)
            .entries_per_bucket(4)
            .fingerprint_bits(10)
            .max_kicks(2)
            .security_threshold(2)
            .seed(7)
            .build()
            .expect("valid");
        assert_eq!(p.buckets(), 2048);
        assert_eq!(p.entries_per_bucket(), 4);
        assert_eq!(p.fingerprint_bits(), 10);
        assert_eq!(p.max_kicks(), 2);
        assert_eq!(p.security_threshold(), 2);
        assert_eq!(p.seed(), 7);
    }

    #[test]
    fn rejects_non_power_of_two_buckets() {
        let err = FilterParams::builder().buckets(1000).build().unwrap_err();
        assert_eq!(err, ParamsError::BucketsNotPowerOfTwo(1000));
    }

    #[test]
    fn rejects_zero_buckets() {
        let err = FilterParams::builder().buckets(0).build().unwrap_err();
        assert_eq!(err, ParamsError::ZeroBuckets);
    }

    #[test]
    fn rejects_zero_bucket_width() {
        let err = FilterParams::builder()
            .entries_per_bucket(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ParamsError::ZeroEntriesPerBucket);
    }

    #[test]
    fn rejects_wide_fingerprints() {
        let err = FilterParams::builder()
            .fingerprint_bits(17)
            .build()
            .unwrap_err();
        assert_eq!(err, ParamsError::FingerprintWidthOutOfRange(17));
    }

    #[test]
    fn rejects_zero_fingerprint_bits() {
        let err = FilterParams::builder()
            .fingerprint_bits(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ParamsError::FingerprintWidthOutOfRange(0));
    }

    #[test]
    fn rejects_out_of_range_threshold() {
        let err = FilterParams::builder()
            .security_threshold(4)
            .build()
            .unwrap_err();
        assert_eq!(err, ParamsError::SecurityThresholdOutOfRange(4));
        let err = FilterParams::builder()
            .security_threshold(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ParamsError::SecurityThresholdOutOfRange(0));
    }

    #[test]
    fn fingerprint_mask_matches_width() {
        let p = FilterParams::builder()
            .fingerprint_bits(12)
            .build()
            .expect("valid");
        assert_eq!(p.fingerprint_mask(), 0x0fff);
        let p = FilterParams::builder()
            .fingerprint_bits(16)
            .build()
            .expect("valid");
        assert_eq!(p.fingerprint_mask(), 0xffff);
        let p = FilterParams::builder()
            .fingerprint_bits(1)
            .build()
            .expect("valid");
        assert_eq!(p.fingerprint_mask(), 0x1);
    }

    #[test]
    fn error_display_is_lowercase_and_specific() {
        let msg = ParamsError::BucketsNotPowerOfTwo(1000).to_string();
        assert!(msg.contains("1000"));
        assert!(msg.starts_with("bucket count"));
    }
}
