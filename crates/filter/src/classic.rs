//! The classic software Cuckoo filter (Fan et al., CoNEXT 2014), kept as the
//! vulnerable baseline the Auto-Cuckoo filter improves on.
//!
//! Two properties distinguish it from [`AutoCuckooFilter`](crate::AutoCuckooFilter):
//!
//! * **Insertions can fail.** When the relocation chain exceeds MNK the
//!   filter reports itself full instead of evicting a record, which is why
//!   software deployments use MNK in the hundreds.
//! * **Manual deletion exists.** `delete(x)` removes *any* record matching
//!   x's fingerprint in x's candidate buckets. Because of fingerprint
//!   collisions, an adversary that controls an address colliding with a
//!   victim record can delete the victim's record — the false-deletion
//!   attack of paper §V-A.

use std::error::Error;
use std::fmt;

use crate::entry::Entry;
use crate::hash::{alternate_bucket, candidate_buckets, fingerprint_of, DetRng, IndexPair};
use crate::params::{FilterParams, ParamsError};
use crate::stats::FilterStats;
use crate::store::QueryOutcome;

/// Error returned when a classic insertion exhausts its relocation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertError {
    /// Fingerprint left homeless when the filter declared itself full.
    pub homeless_fingerprint: u16,
    /// Relocations performed before giving up.
    pub kicks: u32,
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter full after {} kicks (homeless fingerprint {:#x})",
            self.kicks, self.homeless_fingerprint
        )
    }
}

impl Error for InsertError {}

/// Result of a [`ClassicCuckooFilter::delete`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// A matching record was removed.
    Removed,
    /// No record matched the item's fingerprint in its candidate buckets.
    NotFound,
}

/// The classic Cuckoo filter.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{ClassicCuckooFilter, DeleteOutcome, FilterParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = FilterParams::builder().max_kicks(500).build()?;
/// let mut filter = ClassicCuckooFilter::new(params)?;
/// filter.insert(0x40)?;
/// assert!(filter.contains(0x40));
/// assert_eq!(filter.delete(0x40), DeleteOutcome::Removed);
/// assert!(!filter.contains(0x40));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ClassicCuckooFilter {
    params: FilterParams,
    table: Vec<Entry>,
    rng: DetRng,
    occupied: usize,
    failed_inserts: u64,
    stats: FilterStats,
}

impl Clone for ClassicCuckooFilter {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            table: self.table.clone(),
            rng: self.rng.clone(),
            occupied: self.occupied,
            failed_inserts: self.failed_inserts,
            stats: self.stats.clone(),
        }
    }

    /// Overwrites `self` with `source` while reusing the table allocation
    /// (same contract as `AutoCuckooFilter::clone_from`; keeps epoch-engine
    /// monitor snapshots allocation-free when this backend is selected).
    fn clone_from(&mut self, source: &Self) {
        self.params = source.params;
        self.table.clone_from(&source.table);
        self.rng = source.rng.clone();
        self.occupied = source.occupied;
        self.failed_inserts = source.failed_inserts;
        self.stats = source.stats.clone();
    }
}

impl ClassicCuckooFilter {
    /// Creates an empty filter.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `params` fails validation.
    pub fn new(params: FilterParams) -> Result<Self, ParamsError> {
        params.validate()?;
        Ok(Self {
            table: vec![Entry::vacant(); params.capacity()],
            rng: DetRng::new(params.seed()),
            occupied: 0,
            failed_inserts: 0,
            stats: FilterStats::default(),
            params,
        })
    }

    /// The filter's parameters.
    #[must_use]
    pub fn params(&self) -> &FilterParams {
        &self.params
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Fraction of entries valid.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.occupied as f64 / self.params.capacity() as f64
    }

    /// Number of insertions that failed because the filter was full.
    #[must_use]
    pub fn failed_inserts(&self) -> u64 {
        self.failed_inserts
    }

    /// Cumulative operation statistics (same surface as
    /// [`AutoCuckooFilter::stats`](crate::AutoCuckooFilter::stats)).
    #[must_use]
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// Removes every record and resets statistics.
    pub fn clear(&mut self) {
        self.table.fill(Entry::vacant());
        self.occupied = 0;
        self.failed_inserts = 0;
        self.stats = FilterStats::default();
    }

    /// The query-with-promotion operation of the monitor↔store contract:
    /// increments an existing record's `Security` counter (saturating at
    /// `secThr`) or inserts a fresh record with `Security = 0`.
    ///
    /// Unlike [`AutoCuckooFilter::query`](crate::AutoCuckooFilter::query),
    /// the insertion half *can fail* when the filter is full: the outcome
    /// then reports neither `inserted` nor `merged` (the line simply goes
    /// untracked), and when the failed relocation chain displaced a resident
    /// record the lost fingerprint is surfaced in `autonomic_deletion` — the
    /// classic algorithm drops it on the floor.
    pub fn query(&mut self, item: u64) -> QueryOutcome {
        self.stats.queries += 1;
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        let thr = self.params.security_threshold();

        if let Some(slot) = self.find_match(pair, fp) {
            let entry = &mut self.table[slot];
            entry.note_collision();
            let security = entry.bump_security(thr);
            self.stats.merges += 1;
            let captured = security >= thr;
            if captured {
                self.stats.captures += 1;
            }
            return QueryOutcome {
                security,
                inserted: false,
                merged: true,
                captured,
                kicks: 0,
                autonomic_deletion: None,
            };
        }

        match self.insert_at(pair, fp) {
            Ok(kicks) => QueryOutcome {
                security: 0,
                inserted: true,
                merged: false,
                captured: false,
                kicks,
                autonomic_deletion: None,
            },
            Err(e) => QueryOutcome {
                security: 0,
                inserted: false,
                merged: false,
                captured: false,
                kicks: e.kicks,
                // kicks > 0 means a resident record was displaced and lost.
                autonomic_deletion: (e.kicks > 0).then_some(e.homeless_fingerprint),
            },
        }
    }

    /// Current `Security` value of the item's record, if present.
    #[must_use]
    pub fn security_of(&self, item: u64) -> Option<u8> {
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        self.find_match(pair, fp)
            .map(|slot| self.table[slot].security())
    }

    /// Inserts an item.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError`] when both candidate buckets are full and MNK
    /// relocations fail to free a slot; the displaced fingerprint is restored
    /// nowhere (matching the classic algorithm, which loses it — another
    /// reason hardware wants autonomic deletion instead).
    pub fn insert(&mut self, item: u64) -> Result<u32, InsertError> {
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        self.insert_at(pair, fp)
    }

    /// Insertion core shared by [`insert`](Self::insert) and
    /// [`query`](Self::query) (which already computed the hashes).
    fn insert_at(&mut self, pair: IndexPair, fp: u16) -> Result<u32, InsertError> {
        for bucket in [pair.primary, pair.alternate] {
            if let Some(slot) = self.vacant_slot(bucket) {
                self.table[slot] = Entry::occupied(fp);
                self.occupied += 1;
                self.stats.inserts += 1;
                return Ok(0);
            }
        }
        let b = self.params.entries_per_bucket();
        let mnk = self.params.max_kicks();
        let mut bucket = if self.rng.coin() {
            pair.primary
        } else {
            pair.alternate
        };
        let mut homeless = Entry::occupied(fp);
        let mut kicks = 0u32;
        while kicks < mnk {
            let victim = bucket * b + self.rng.below(b);
            std::mem::swap(&mut homeless, &mut self.table[victim]);
            kicks += 1;
            bucket = alternate_bucket(bucket, homeless.fingerprint(), &self.params);
            if let Some(slot) = self.vacant_slot(bucket) {
                self.table[slot] = homeless;
                self.occupied += 1;
                self.stats.inserts += 1;
                self.stats.kicks += u64::from(kicks);
                return Ok(kicks);
            }
        }
        if kicks > 0 {
            // A record was displaced and is now lost; occupancy shrinks by
            // one relative to before the failed insert (new fp was stored).
            self.failed_inserts += 1;
            return Err(InsertError {
                homeless_fingerprint: homeless.fingerprint(),
                kicks,
            });
        }
        self.failed_inserts += 1;
        Err(InsertError {
            homeless_fingerprint: fp,
            kicks: 0,
        })
    }

    /// Whether a record matching the item's fingerprint exists.
    #[must_use]
    pub fn contains(&self, item: u64) -> bool {
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        self.find_match(pair, fp).is_some()
    }

    /// Removes one record matching the item's fingerprint, if any.
    ///
    /// This is the operation the Auto-Cuckoo filter deliberately omits:
    /// fingerprint collisions make it a *false deletion* primitive, letting
    /// an adversary remove a victim's record via a colliding address.
    pub fn delete(&mut self, item: u64) -> DeleteOutcome {
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        match self.find_match(pair, fp) {
            Some(slot) => {
                self.table[slot].evict();
                self.occupied -= 1;
                DeleteOutcome::Removed
            }
            None => DeleteOutcome::NotFound,
        }
    }

    fn bucket_range(&self, bucket: usize) -> std::ops::Range<usize> {
        let b = self.params.entries_per_bucket();
        let start = bucket * b;
        start..start + b
    }

    fn find_match(&self, pair: IndexPair, fp: u16) -> Option<usize> {
        for bucket in [pair.primary, pair.alternate] {
            for slot in self.bucket_range(bucket) {
                if self.table[slot].matches(fp) {
                    return Some(slot);
                }
            }
            if pair.primary == pair.alternate {
                break;
            }
        }
        None
    }

    fn vacant_slot(&self, bucket: usize) -> Option<usize> {
        self.bucket_range(bucket)
            .find(|&slot| !self.table[slot].is_valid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(mnk: u32) -> FilterParams {
        FilterParams::builder()
            .buckets(16)
            .entries_per_bucket(4)
            .max_kicks(mnk)
            .build()
            .expect("valid")
    }

    #[test]
    fn insert_then_contains() {
        let mut f = ClassicCuckooFilter::new(params(8)).expect("valid");
        f.insert(0x40).expect("space available");
        assert!(f.contains(0x40));
        assert!(!f.contains(0x999_0000));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn delete_removes_record() {
        let mut f = ClassicCuckooFilter::new(params(8)).expect("valid");
        f.insert(0x40).expect("space available");
        assert_eq!(f.delete(0x40), DeleteOutcome::Removed);
        assert!(!f.contains(0x40));
        assert_eq!(f.delete(0x40), DeleteOutcome::NotFound);
        assert!(f.is_empty());
    }

    #[test]
    fn insert_eventually_fails_when_overfull() {
        let mut f = ClassicCuckooFilter::new(params(8)).expect("valid");
        let mut failures = 0;
        for i in 0..10_000u64 {
            if f.insert(crate::hash::mix64(i)).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "classic filter must eventually fail");
        assert_eq!(u64::from(failures > 0), 1);
        assert_eq!(f.failed_inserts(), failures);
        assert!(f.occupancy() <= 1.0);
    }

    #[test]
    fn large_mnk_reaches_high_occupancy_before_failing() {
        let p = FilterParams::builder()
            .buckets(64)
            .entries_per_bucket(4)
            .max_kicks(500)
            .build()
            .expect("valid");
        let mut f = ClassicCuckooFilter::new(p).expect("valid");
        let mut inserted = 0u32;
        for i in 0..(f.params().capacity() as u64 * 2) {
            if f.insert(crate::hash::mix64(i)).is_ok() {
                inserted += 1;
            }
        }
        // Fan et al. report ~95% load factors for b=4 with large MNK.
        assert!(
            f.occupancy() > 0.90,
            "classic filter with MNK=500 should pack >90%, got {}",
            f.occupancy()
        );
        assert!(inserted > 0);
    }

    #[test]
    fn false_deletion_via_colliding_address() {
        // Find two distinct items with identical fingerprint and candidate
        // buckets; deleting one removes the other's record.
        let p = FilterParams::builder()
            .buckets(8)
            .entries_per_bucket(4)
            .fingerprint_bits(4)
            .max_kicks(8)
            .build()
            .expect("valid");
        let mut f = ClassicCuckooFilter::new(p).expect("valid");
        let target = 0x40u64;
        let t_fp = fingerprint_of(target, &p);
        let t_pair = candidate_buckets(target, &p).canonical();
        let collider = (1..1_000_000u64)
            .map(|i| target + i * 64)
            .find(|&c| {
                fingerprint_of(c, &p) == t_fp && candidate_buckets(c, &p).canonical() == t_pair
            })
            .expect("a 4-bit fingerprint collides quickly");
        f.insert(target).expect("space available");
        assert!(f.contains(target));
        // The adversary deletes via its own colliding address...
        assert_eq!(f.delete(collider), DeleteOutcome::Removed);
        // ...and the victim's record is gone: the false-deletion attack.
        assert!(!f.contains(target));
    }

    #[test]
    fn failed_insert_error_displays() {
        let e = InsertError {
            homeless_fingerprint: 0xab,
            kicks: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains('7'));
        assert!(msg.contains("full"));
    }
}
