//! Partial-key cuckoo hashing: the `Hash1`, `Hash2` and `fPrint Hash` modules
//! of the hardware microarchitecture (Fig. 5 of the paper).
//!
//! The three functions satisfy the identity required by partial-key cuckoo
//! hashing:
//!
//! ```text
//! h1(x) = hash(x)
//! h2(x) = h1(x) ^ hash(fingerprint(x))
//! ```
//!
//! so that, given only a stored fingerprint and the bucket it currently
//! occupies, the alternate bucket is `bucket ^ hash(fingerprint)`.

use crate::params::FilterParams;

/// SplitMix64 finaliser: a fast, high-quality 64-bit mixer used for all
/// hashing in this crate. Deterministic across platforms.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the `f`-bit fingerprint ξ_x of an item.
///
/// The fingerprint hash is domain-separated from the index hash so that the
/// partial-key identity does not degenerate.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{fingerprint_of, FilterParams};
///
/// let p = FilterParams::paper_default();
/// let fp = fingerprint_of(0xabcd, &p);
/// assert!(fp <= p.fingerprint_mask());
/// ```
#[inline]
#[must_use]
pub fn fingerprint_of(item: u64, params: &FilterParams) -> u16 {
    let h = mix64(item ^ 0xf1f1_f1f1_0000_0000);
    (h as u16) & params.fingerprint_mask()
}

/// The two candidate bucket indices (μ_x, σ_x) of an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexPair {
    /// Primary bucket index `h1(x)`.
    pub primary: usize,
    /// Alternate bucket index `h2(x) = h1(x) ^ hash(ξ_x)`.
    pub alternate: usize,
}

impl IndexPair {
    /// Canonical (order-independent) identity of the bucket pair. Two items
    /// occupy the same logical entry slot family iff they share a fingerprint
    /// and a canonical pair.
    #[must_use]
    pub fn canonical(&self) -> (usize, usize) {
        if self.primary <= self.alternate {
            (self.primary, self.alternate)
        } else {
            (self.alternate, self.primary)
        }
    }

    /// Returns the member of the pair that is not `bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is neither member of the pair.
    #[must_use]
    pub fn other(&self, bucket: usize) -> usize {
        if bucket == self.primary {
            self.alternate
        } else if bucket == self.alternate {
            self.primary
        } else {
            panic!("bucket {bucket} is not a member of {self:?}");
        }
    }

    /// Whether `bucket` is one of the two candidates.
    #[must_use]
    pub fn contains(&self, bucket: usize) -> bool {
        bucket == self.primary || bucket == self.alternate
    }
}

/// Computes the primary bucket index `h1(x)`.
#[inline]
#[must_use]
pub fn primary_index(item: u64, params: &FilterParams) -> usize {
    (mix64(item) & params.bucket_mask()) as usize
}

/// Hash of a fingerprint, reduced to a bucket-index offset. This is the
/// `fPrint Hash` module: the XOR distance between the two candidate buckets.
#[inline]
#[must_use]
pub fn fingerprint_offset(fingerprint: u16, params: &FilterParams) -> usize {
    // Standard partial-key cuckoo hashing re-hashes the fingerprint before
    // XOR so the alternate bucket is well distributed even for small f.
    (mix64(u64::from(fingerprint) ^ 0x0f0f_5a5a_c3c3_9696) & params.bucket_mask()) as usize
}

/// Computes both candidate buckets of an item.
///
/// # Examples
///
/// The XOR identity lets either bucket derive the other from the stored
/// fingerprint alone:
///
/// ```
/// use auto_cuckoo::hash::{candidate_buckets, alternate_bucket};
/// use auto_cuckoo::{fingerprint_of, FilterParams};
///
/// let p = FilterParams::paper_default();
/// let item = 0x1234_5678;
/// let pair = candidate_buckets(item, &p);
/// let fp = fingerprint_of(item, &p);
/// assert_eq!(alternate_bucket(pair.primary, fp, &p), pair.alternate);
/// assert_eq!(alternate_bucket(pair.alternate, fp, &p), pair.primary);
/// ```
#[inline]
#[must_use]
pub fn candidate_buckets(item: u64, params: &FilterParams) -> IndexPair {
    let primary = primary_index(item, params);
    let fp = fingerprint_of(item, params);
    let alternate = primary ^ fingerprint_offset(fp, params);
    IndexPair { primary, alternate }
}

/// Given a bucket holding `fingerprint`, returns the record's other candidate
/// bucket. This is the relocation step of a kick.
#[inline]
#[must_use]
pub fn alternate_bucket(bucket: usize, fingerprint: u16, params: &FilterParams) -> usize {
    bucket ^ fingerprint_offset(fingerprint, params)
}

/// Small deterministic xorshift64* RNG used for victim selection inside the
/// filters. Hardware would use an LFSR; the statistical requirements are the
/// same (uniform-ish victim choice), and determinism keeps every experiment
/// reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates an RNG from a nonzero seed (zero is mapped to a fixed odd
    /// constant, since xorshift has a zero fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        };
        Self { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (rejection-free multiply-shift; bias is
    /// negligible for the small bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be nonzero");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Uniform boolean.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FilterParams {
        FilterParams::paper_default()
    }

    #[test]
    fn xor_identity_is_involution() {
        let p = params();
        for item in 0..10_000u64 {
            let pair = candidate_buckets(item * 64, &p);
            let fp = fingerprint_of(item * 64, &p);
            assert_eq!(alternate_bucket(pair.primary, fp, &p), pair.alternate);
            assert_eq!(alternate_bucket(pair.alternate, fp, &p), pair.primary);
        }
    }

    #[test]
    fn indices_are_in_range() {
        let p = params();
        for item in 0..10_000u64 {
            let pair = candidate_buckets(item.wrapping_mul(0x1234_5678_9abc_def1), &p);
            assert!(pair.primary < p.buckets());
            assert!(pair.alternate < p.buckets());
        }
    }

    #[test]
    fn fingerprints_respect_width() {
        for bits in 1..=16 {
            let p = FilterParams::builder()
                .fingerprint_bits(bits)
                .build()
                .expect("valid");
            for item in 0..1000u64 {
                assert!(fingerprint_of(item, &p) <= p.fingerprint_mask());
            }
        }
    }

    #[test]
    fn primary_indices_are_roughly_uniform() {
        let p = params();
        let mut counts = vec![0u32; p.buckets()];
        let n = 1_000_000u64;
        for item in 0..n {
            counts[primary_index(item * 64, &p)] += 1;
        }
        let mean = n as f64 / p.buckets() as f64;
        let max = *counts.iter().max().expect("nonempty") as f64;
        let min = *counts.iter().min().expect("nonempty") as f64;
        // ~977 expected per bucket; 4-sigma Poisson bounds with headroom.
        assert!(max < mean * 1.3, "max {max} too far above mean {mean}");
        assert!(min > mean * 0.7, "min {min} too far below mean {mean}");
    }

    #[test]
    fn index_pair_other_and_contains() {
        let pair = IndexPair {
            primary: 3,
            alternate: 9,
        };
        assert_eq!(pair.other(3), 9);
        assert_eq!(pair.other(9), 3);
        assert!(pair.contains(3));
        assert!(pair.contains(9));
        assert!(!pair.contains(4));
        assert_eq!(pair.canonical(), (3, 9));
        let flipped = IndexPair {
            primary: 9,
            alternate: 3,
        };
        assert_eq!(flipped.canonical(), (3, 9));
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn index_pair_other_panics_on_foreign_bucket() {
        let pair = IndexPair {
            primary: 1,
            alternate: 2,
        };
        let _ = pair.other(7);
    }

    #[test]
    fn det_rng_is_deterministic() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_zero_seed_is_usable() {
        let mut r = DetRng::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn det_rng_below_respects_bound() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(8) < 8);
        }
    }

    #[test]
    fn det_rng_below_is_roughly_uniform() {
        let mut r = DetRng::new(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn mix64_avalanche_differs_on_single_bit() {
        // A weak but meaningful check: flipping one input bit flips a good
        // fraction of output bits on average.
        let mut total = 0u32;
        for i in 0..64 {
            total += (mix64(0) ^ mix64(1u64 << i)).count_ones();
        }
        let avg = f64::from(total) / 64.0;
        assert!(avg > 24.0 && avg < 40.0, "average flipped bits {avg}");
    }
}
