//! Analytic models from the paper: false-positive rate (§V-B), brute-force
//! and reverse-engineering attack costs (§VI-B), and the storage-overhead
//! accounting (§VII-D).

use crate::params::FilterParams;

/// Upper bound on the false-positive rate of a query,
/// `ε = 1 − (1 − 1/2^f)^(2b) ≈ 2b / 2^f` (paper §V-B).
///
/// # Examples
///
/// The paper's configuration (b = 8, f = 12) yields ε ≈ 0.004:
///
/// ```
/// use auto_cuckoo::{false_positive_rate, FilterParams};
///
/// let eps = false_positive_rate(&FilterParams::paper_default());
/// assert!((eps - 0.0039).abs() < 0.0002);
/// ```
#[must_use]
pub fn false_positive_rate(params: &FilterParams) -> f64 {
    let f = params.fingerprint_bits();
    let b = params.entries_per_bucket() as f64;
    let p_match = 1.0 / f64::from(1u32 << f.min(31));
    1.0 - (1.0 - p_match).powf(2.0 * b)
}

/// Expected number of filter fills a brute-force adversary needs to evict one
/// specific target record: `b · l` (paper §VI-B). Each fill evicts one stored
/// record uniformly at random thanks to autonomic deletion, so the eviction
/// of a *specific* record is geometric with success probability `1/(b·l)`.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{brute_force_expected_fills, FilterParams};
///
/// assert_eq!(brute_force_expected_fills(&FilterParams::paper_default()), 8192);
/// ```
#[must_use]
pub fn brute_force_expected_fills(params: &FilterParams) -> u64 {
    (params.buckets() * params.entries_per_bucket()) as u64
}

/// Size of the eviction set a reverse-engineering adversary must construct to
/// deterministically evict a target record: `b^(MNK+1)` (paper §VI-B, Fig. 7).
///
/// Saturates at `u64::MAX` for configurations whose eviction set exceeds
/// 2^64 — at which point the attack is unambiguously impractical.
///
/// # Examples
///
/// The paper's configuration (b = 8, MNK = 4) needs 8^5 = 32768 addresses:
///
/// ```
/// use auto_cuckoo::{reverse_eviction_set_size, FilterParams};
///
/// assert_eq!(reverse_eviction_set_size(&FilterParams::paper_default()), 32768);
/// ```
#[must_use]
pub fn reverse_eviction_set_size(params: &FilterParams) -> u64 {
    let b = params.entries_per_bucket() as u64;
    let mut size: u64 = 1;
    for _ in 0..=params.max_kicks() {
        size = match size.checked_mul(b) {
            Some(s) => s,
            None => return u64::MAX,
        };
    }
    size
}

/// Storage-overhead accounting for a PiPoMonitor deployment (paper §VII-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageOverhead {
    /// Bits per filter entry (valid + fingerprint + Security).
    pub bits_per_entry: u64,
    /// Total filter entries (`l × b`).
    pub entries: u64,
    /// Total filter storage in bits.
    pub total_bits: u64,
    /// Total filter storage in KiB.
    pub total_kib: f64,
    /// Overhead relative to the protected LLC capacity, as a fraction.
    pub relative_to_llc: f64,
}

impl StorageOverhead {
    /// Computes the overhead of a filter protecting an LLC of
    /// `llc_bytes` bytes.
    ///
    /// Entry layout follows the paper: 1 valid bit + `f` fingerprint bits +
    /// 2 Security bits.
    ///
    /// # Examples
    ///
    /// The paper's 1024×8, f = 12 filter over a 4 MiB LLC costs 15 KiB,
    /// i.e. 0.37 %:
    ///
    /// ```
    /// use auto_cuckoo::{FilterParams, StorageOverhead};
    ///
    /// let o = StorageOverhead::for_filter(&FilterParams::paper_default(), 4 << 20);
    /// assert_eq!(o.bits_per_entry, 15);
    /// assert_eq!(o.entries, 8192);
    /// assert!((o.total_kib - 15.0).abs() < 1e-9);
    /// assert!((o.relative_to_llc - 0.00366).abs() < 0.0002);
    /// ```
    #[must_use]
    pub fn for_filter(params: &FilterParams, llc_bytes: u64) -> Self {
        let bits_per_entry = 1 + u64::from(params.fingerprint_bits()) + 2;
        let entries = params.capacity() as u64;
        let total_bits = bits_per_entry * entries;
        let total_kib = total_bits as f64 / 8.0 / 1024.0;
        let relative_to_llc = total_bits as f64 / (llc_bytes as f64 * 8.0);
        Self {
            bits_per_entry,
            entries,
            total_bits,
            total_kib,
            relative_to_llc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FilterParams;

    #[test]
    fn fp_rate_halves_per_fingerprint_bit() {
        let rate = |f| {
            false_positive_rate(
                &FilterParams::builder()
                    .fingerprint_bits(f)
                    .build()
                    .expect("valid"),
            )
        };
        for f in 8..=15 {
            let ratio = rate(f) / rate(f + 1);
            assert!(
                (ratio - 2.0).abs() < 0.05,
                "f={f}: ratio {ratio} should be ~2"
            );
        }
    }

    #[test]
    fn fp_rate_matches_paper_configuration() {
        let eps = false_positive_rate(&FilterParams::paper_default());
        // 2b/2^f = 16/4096 = 0.0039..., the paper reports ε = 0.004.
        assert!((eps - 16.0 / 4096.0).abs() < 1e-4, "eps = {eps}");
    }

    #[test]
    fn brute_force_matches_paper() {
        assert_eq!(
            brute_force_expected_fills(&FilterParams::paper_default()),
            8192
        );
    }

    #[test]
    fn reverse_eviction_set_grows_exponentially_with_mnk() {
        let size = |mnk| {
            reverse_eviction_set_size(
                &FilterParams::builder()
                    .max_kicks(mnk)
                    .build()
                    .expect("valid"),
            )
        };
        assert_eq!(size(0), 8);
        assert_eq!(size(1), 64);
        assert_eq!(size(2), 512);
        assert_eq!(size(3), 4096);
        assert_eq!(size(4), 32768);
    }

    #[test]
    fn reverse_eviction_set_saturates_instead_of_overflowing() {
        let p = FilterParams::builder()
            .max_kicks(100)
            .build()
            .expect("valid");
        assert_eq!(reverse_eviction_set_size(&p), u64::MAX);
    }

    #[test]
    fn storage_overhead_matches_paper_table() {
        let o = StorageOverhead::for_filter(&FilterParams::paper_default(), 4 << 20);
        assert_eq!(o.bits_per_entry, 15);
        assert_eq!(o.entries, 8192);
        assert_eq!(o.total_bits, 122_880);
        assert!((o.total_kib - 15.0).abs() < 1e-9);
        // 15 KiB / 4 MiB = 0.366%; the paper rounds to 0.37%.
        assert!((o.relative_to_llc * 100.0 - 0.37).abs() < 0.01);
    }

    #[test]
    fn storage_overhead_scales_with_filter_size() {
        let small = StorageOverhead::for_filter(
            &FilterParams::builder().buckets(512).build().expect("valid"),
            4 << 20,
        );
        let big = StorageOverhead::for_filter(
            &FilterParams::builder()
                .buckets(2048)
                .build()
                .expect("valid"),
            4 << 20,
        );
        assert!((big.total_bits as f64 / small.total_bits as f64 - 4.0).abs() < 1e-9);
    }
}
