//! The pluggable pattern-store boundary between the monitor and its filter.
//!
//! PiPoMonitor's defense quality is decided by one structure: the pattern
//! store that remembers which lines were fetched from memory and how often
//! they were re-fetched. The paper evaluates a single design (the
//! Auto-Cuckoo filter); [`PatternStore`] opens that axis up so the monitor
//! can run on any backend that implements the paper's *query-with-promotion*
//! contract:
//!
//! * [`query`](PatternStore::query) — the combined lookup/insert/count
//!   operation of §IV: look the item up, create a record when absent, and
//!   *promote* (increment the saturating `Security` counter of) an existing
//!   record. The outcome reports whether the item's counter reached `secThr`
//!   (a Ping-Pong capture).
//! * [`contains`](PatternStore::contains) /
//!   [`security_of`](PatternStore::security_of) — read-only probes, subject
//!   to each backend's false-positive behaviour.
//! * [`stats_snapshot`](PatternStore::stats_snapshot) /
//!   [`memory_bytes`](PatternStore::memory_bytes) — uniform observability so
//!   harnesses can compare backends on false alarms vs. memory vs. speed.
//! * [`clone_box`](PatternStore::clone_box) /
//!   [`clone_from_store`](PatternStore::clone_from_store) — snapshot support
//!   for the epoch-parallel engine, which copies the whole monitor once per
//!   committing epoch and must stay allocation-free in steady state.
//!
//! Four backends implement the trait: the paper's [`AutoCuckooFilter`], the
//! vulnerable [`ClassicCuckooFilter`] baseline, a blocked spectral Bloom
//! store ([`BloomPatternStore`](crate::BloomPatternStore)), and a xor-filter
//! store with periodic rebuild ([`XorPatternStore`](crate::XorPatternStore)).
//! [`build_store`] constructs any of them from a [`FilterBackend`] tag plus
//! the shared [`FilterParams`] geometry.

use std::any::Any;
use std::fmt;
use std::str::FromStr;

use crate::auto::AutoCuckooFilter;
use crate::classic::ClassicCuckooFilter;
use crate::params::{FilterParams, ParamsError};
use crate::stats::FilterStats;

/// Result of a single [`PatternStore::query`].
///
/// `Response` in the paper's terms is the [`security`](Self::security) field;
/// the monitor treats `security == secThr` (i.e. [`captured`](Self::captured))
/// as "this line behaves in a Ping-Pong pattern".
///
/// The [`kicks`](Self::kicks) and
/// [`autonomic_deletion`](Self::autonomic_deletion) fields describe cuckoo
/// relocation mechanics; backends without relocation (Bloom, xor) report
/// `0` / `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// `Security` value of the record after this query.
    pub security: u8,
    /// Whether the query found no record and inserted a fresh one.
    pub inserted: bool,
    /// Whether the query found an existing record (a re-access, or a
    /// false-positive collision with another address).
    pub merged: bool,
    /// Whether `security` has reached `secThr`: the line is captured as a
    /// Ping-Pong line.
    pub captured: bool,
    /// Number of relocations performed to make room for an insertion.
    pub kicks: u32,
    /// Fingerprint removed by autonomic deletion, if the relocation chain hit
    /// MNK.
    pub autonomic_deletion: Option<u16>,
}

/// Identifies a [`PatternStore`] implementation; the `--filter` CLI value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FilterBackend {
    /// The paper's Auto-Cuckoo filter (insertion never fails).
    Auto,
    /// The classic software Cuckoo filter (insertions can fail when full).
    Classic,
    /// Blocked spectral Bloom store (per-line counters, no deletion).
    Bloom,
    /// Xor-filter store: exact recent window + periodically rebuilt
    /// xor-compressed history.
    Xor,
}

impl FilterBackend {
    /// All selectable backends, in CLI enumeration order.
    pub const ALL: [FilterBackend; 4] = [
        FilterBackend::Auto,
        FilterBackend::Classic,
        FilterBackend::Bloom,
        FilterBackend::Xor,
    ];

    /// The backend's CLI name (`auto`, `classic`, `bloom`, `xor`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FilterBackend::Auto => "auto",
            FilterBackend::Classic => "classic",
            FilterBackend::Bloom => "bloom",
            FilterBackend::Xor => "xor",
        }
    }
}

impl fmt::Display for FilterBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`FilterBackend`] from its CLI name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown filter backend {:?} (expected auto, classic, bloom or xor)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for FilterBackend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(FilterBackend::Auto),
            "classic" => Ok(FilterBackend::Classic),
            "bloom" => Ok(FilterBackend::Bloom),
            "xor" => Ok(FilterBackend::Xor),
            other => Err(ParseBackendError {
                input: other.to_string(),
            }),
        }
    }
}

/// The query-with-promotion pattern store behind [`PiPoMonitor`].
///
/// Implementations must keep the *query path* — [`query`](Self::query),
/// [`contains`](Self::contains) — free of heap allocations, including any
/// periodic internal maintenance (the xor backend's rebuild runs entirely out
/// of buffers preallocated at construction); `tests/no_alloc_hot_path.rs` at
/// the workspace root pins this for every backend.
///
/// [`PiPoMonitor`]: https://docs.rs/pipomonitor
pub trait PatternStore: fmt::Debug + Send {
    /// The combined lookup/insert/promote operation (paper §IV): increments
    /// an existing record's `Security` counter (saturating at `secThr`) or
    /// inserts a fresh record with `Security = 0`.
    fn query(&mut self, item: u64) -> QueryOutcome;

    /// Whether a record matching the item is present. Subject to the
    /// backend's false-positive rate; a `true` may be a collision.
    fn contains(&self, item: u64) -> bool;

    /// Current `Security` value of the item's record, if present. Backends
    /// whose counters saturate below the query count report the saturated
    /// value.
    fn security_of(&self, item: u64) -> Option<u8>;

    /// The `secThr` capture threshold this store promotes toward.
    fn security_threshold(&self) -> u8;

    /// Number of records (or, for counter-based backends, distinct inserts)
    /// currently tracked.
    fn len(&self) -> usize;

    /// Whether no records are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of the store's capacity in use, in `0.0..=1.0`.
    fn occupancy(&self) -> f64;

    /// Bytes of state a hardware implementation of this backend would hold
    /// (tables and filters only; not Rust bookkeeping or scratch).
    fn memory_bytes(&self) -> usize;

    /// Snapshot of the cumulative operation statistics.
    fn stats_snapshot(&self) -> FilterStats;

    /// Removes every record and resets statistics.
    fn clear(&mut self);

    /// Which backend this store is.
    fn backend(&self) -> FilterBackend;

    /// The shared geometry/policy parameters the store was built from.
    fn params(&self) -> &FilterParams;

    /// Allocating clone behind the trait object (`Clone` is not
    /// object-safe).
    fn clone_box(&self) -> Box<dyn PatternStore>;

    /// Overwrites `self` with `source` while reusing `self`'s allocations —
    /// the epoch-parallel engine snapshots the monitor once per committing
    /// epoch and must not allocate in steady state.
    ///
    /// # Panics
    ///
    /// Panics when `source` is a different backend; callers that can face a
    /// backend change (none inside an epoch run) must compare
    /// [`backend`](Self::backend) first and fall back to
    /// [`clone_box`](Self::clone_box).
    fn clone_from_store(&mut self, source: &dyn PatternStore);

    /// Upcast for backend-specific downcasting (e.g. the deprecated
    /// `PiPoMonitor::filter()` shim).
    fn as_any(&self) -> &dyn Any;
}

/// Builds a boxed store of the requested backend from the shared parameters.
///
/// # Errors
///
/// Returns [`ParamsError`] when `params` fails validation.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{build_store, FilterBackend, FilterParams};
///
/// # fn main() -> Result<(), auto_cuckoo::ParamsError> {
/// for backend in FilterBackend::ALL {
///     let mut store = build_store(backend, FilterParams::paper_default())?;
///     assert!(store.query(0x40).inserted);
///     assert!(store.contains(0x40));
///     assert_eq!(store.backend(), backend);
/// }
/// # Ok(())
/// # }
/// ```
pub fn build_store(
    backend: FilterBackend,
    params: FilterParams,
) -> Result<Box<dyn PatternStore>, ParamsError> {
    Ok(match backend {
        FilterBackend::Auto => Box::new(AutoCuckooFilter::new(params)?),
        FilterBackend::Classic => Box::new(ClassicCuckooFilter::new(params)?),
        FilterBackend::Bloom => Box::new(crate::bloom::BloomPatternStore::new(params)?),
        FilterBackend::Xor => Box::new(crate::xor::XorPatternStore::new(params)?),
    })
}

/// Downcasts `source` to the implementing type or panics with a
/// backend-mismatch message (shared by every `clone_from_store` impl).
pub(crate) fn downcast_same_backend<T: PatternStore + 'static>(
    target_backend: FilterBackend,
    source: &dyn PatternStore,
) -> &T {
    source.as_any().downcast_ref::<T>().unwrap_or_else(|| {
        panic!(
            "clone_from_store backend mismatch: target is {target_backend}, source is {}",
            source.backend()
        )
    })
}

impl PatternStore for AutoCuckooFilter {
    fn query(&mut self, item: u64) -> QueryOutcome {
        AutoCuckooFilter::query(self, item)
    }

    fn contains(&self, item: u64) -> bool {
        AutoCuckooFilter::contains(self, item)
    }

    fn security_of(&self, item: u64) -> Option<u8> {
        AutoCuckooFilter::security_of(self, item)
    }

    fn security_threshold(&self) -> u8 {
        self.params().security_threshold()
    }

    fn len(&self) -> usize {
        AutoCuckooFilter::len(self)
    }

    fn occupancy(&self) -> f64 {
        AutoCuckooFilter::occupancy(self)
    }

    fn memory_bytes(&self) -> usize {
        cuckoo_table_bytes(self.params())
    }

    fn stats_snapshot(&self) -> FilterStats {
        AutoCuckooFilter::stats(self).clone()
    }

    fn clear(&mut self) {
        AutoCuckooFilter::clear(self);
    }

    fn backend(&self) -> FilterBackend {
        FilterBackend::Auto
    }

    fn params(&self) -> &FilterParams {
        AutoCuckooFilter::params(self)
    }

    fn clone_box(&self) -> Box<dyn PatternStore> {
        Box::new(self.clone())
    }

    fn clone_from_store(&mut self, source: &dyn PatternStore) {
        self.clone_from(downcast_same_backend::<Self>(FilterBackend::Auto, source));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl PatternStore for ClassicCuckooFilter {
    fn query(&mut self, item: u64) -> QueryOutcome {
        ClassicCuckooFilter::query(self, item)
    }

    fn contains(&self, item: u64) -> bool {
        ClassicCuckooFilter::contains(self, item)
    }

    fn security_of(&self, item: u64) -> Option<u8> {
        ClassicCuckooFilter::security_of(self, item)
    }

    fn security_threshold(&self) -> u8 {
        self.params().security_threshold()
    }

    fn len(&self) -> usize {
        ClassicCuckooFilter::len(self)
    }

    fn occupancy(&self) -> f64 {
        ClassicCuckooFilter::occupancy(self)
    }

    fn memory_bytes(&self) -> usize {
        cuckoo_table_bytes(self.params())
    }

    fn stats_snapshot(&self) -> FilterStats {
        ClassicCuckooFilter::stats(self).clone()
    }

    fn clear(&mut self) {
        ClassicCuckooFilter::clear(self);
    }

    fn backend(&self) -> FilterBackend {
        FilterBackend::Classic
    }

    fn params(&self) -> &FilterParams {
        ClassicCuckooFilter::params(self)
    }

    fn clone_box(&self) -> Box<dyn PatternStore> {
        Box::new(self.clone())
    }

    fn clone_from_store(&mut self, source: &dyn PatternStore) {
        self.clone_from(downcast_same_backend::<Self>(
            FilterBackend::Classic,
            source,
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl PatternStore for crate::bloom::BloomPatternStore {
    fn query(&mut self, item: u64) -> QueryOutcome {
        crate::bloom::BloomPatternStore::query(self, item)
    }

    fn contains(&self, item: u64) -> bool {
        crate::bloom::BloomPatternStore::contains(self, item)
    }

    fn security_of(&self, item: u64) -> Option<u8> {
        crate::bloom::BloomPatternStore::security_of(self, item)
    }

    fn security_threshold(&self) -> u8 {
        self.params().security_threshold()
    }

    fn len(&self) -> usize {
        crate::bloom::BloomPatternStore::len(self)
    }

    fn occupancy(&self) -> f64 {
        crate::bloom::BloomPatternStore::occupancy(self)
    }

    fn memory_bytes(&self) -> usize {
        crate::bloom::BloomPatternStore::memory_bytes(self)
    }

    fn stats_snapshot(&self) -> FilterStats {
        crate::bloom::BloomPatternStore::stats(self).clone()
    }

    fn clear(&mut self) {
        crate::bloom::BloomPatternStore::clear(self);
    }

    fn backend(&self) -> FilterBackend {
        FilterBackend::Bloom
    }

    fn params(&self) -> &FilterParams {
        crate::bloom::BloomPatternStore::params(self)
    }

    fn clone_box(&self) -> Box<dyn PatternStore> {
        Box::new(self.clone())
    }

    fn clone_from_store(&mut self, source: &dyn PatternStore) {
        self.clone_from(downcast_same_backend::<Self>(FilterBackend::Bloom, source));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl PatternStore for crate::xor::XorPatternStore {
    fn query(&mut self, item: u64) -> QueryOutcome {
        crate::xor::XorPatternStore::query(self, item)
    }

    fn contains(&self, item: u64) -> bool {
        crate::xor::XorPatternStore::contains(self, item)
    }

    fn security_of(&self, item: u64) -> Option<u8> {
        crate::xor::XorPatternStore::security_of(self, item)
    }

    fn security_threshold(&self) -> u8 {
        self.params().security_threshold()
    }

    fn len(&self) -> usize {
        crate::xor::XorPatternStore::len(self)
    }

    fn occupancy(&self) -> f64 {
        crate::xor::XorPatternStore::occupancy(self)
    }

    fn memory_bytes(&self) -> usize {
        crate::xor::XorPatternStore::memory_bytes(self)
    }

    fn stats_snapshot(&self) -> FilterStats {
        crate::xor::XorPatternStore::stats(self).clone()
    }

    fn clear(&mut self) {
        crate::xor::XorPatternStore::clear(self);
    }

    fn backend(&self) -> FilterBackend {
        FilterBackend::Xor
    }

    fn params(&self) -> &FilterParams {
        crate::xor::XorPatternStore::params(self)
    }

    fn clone_box(&self) -> Box<dyn PatternStore> {
        Box::new(self.clone())
    }

    fn clone_from_store(&mut self, source: &dyn PatternStore) {
        self.clone_from(downcast_same_backend::<Self>(FilterBackend::Xor, source));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Hardware bytes of an `l × b` cuckoo table: per entry 1 valid bit, `f`
/// fingerprint bits and a 2-bit `Security` counter (paper §VII-D).
fn cuckoo_table_bytes(params: &FilterParams) -> usize {
    let bits = params.capacity() * (1 + params.fingerprint_bits() as usize + 2);
    bits.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for backend in FilterBackend::ALL {
            assert_eq!(backend.name().parse::<FilterBackend>(), Ok(backend));
            assert_eq!(backend.to_string(), backend.name());
        }
        let err = "blom".parse::<FilterBackend>().unwrap_err();
        assert!(err.to_string().contains("blom"));
        assert!(err.to_string().contains("bloom"));
    }

    #[test]
    fn build_store_constructs_every_backend() {
        for backend in FilterBackend::ALL {
            let mut store =
                build_store(backend, FilterParams::paper_default()).expect("valid params");
            assert_eq!(store.backend(), backend);
            assert!(store.is_empty());
            let out = store.query(0x40);
            assert!(out.inserted && !out.merged && !out.captured);
            assert!(store.contains(0x40));
            assert!(!store.is_empty());
            assert!(store.memory_bytes() > 0);
            assert_eq!(store.stats_snapshot().queries, 1);
            store.clear();
            assert!(store.is_empty());
            assert_eq!(store.stats_snapshot().queries, 0);
        }
    }

    #[test]
    fn promotion_reaches_capture_on_every_backend() {
        for backend in FilterBackend::ALL {
            let mut store =
                build_store(backend, FilterParams::paper_default()).expect("valid params");
            let thr = store.security_threshold();
            let mut captured_at = None;
            for n in 1..=8u32 {
                if store.query(0x1234_5678).captured {
                    captured_at = Some(n);
                    break;
                }
            }
            // thr re-accesses after the insert: capture on query thr + 1.
            assert_eq!(
                captured_at,
                Some(u32::from(thr) + 1),
                "backend {backend} capture latency"
            );
        }
    }

    #[test]
    fn clone_box_and_clone_from_store_preserve_state() {
        for backend in FilterBackend::ALL {
            let mut store =
                build_store(backend, FilterParams::paper_default()).expect("valid params");
            for i in 0..200u64 {
                store.query(i * 64);
            }
            store.query(42 * 64);
            let boxed = store.clone_box();
            assert_eq!(boxed.len(), store.len());
            assert_eq!(boxed.security_of(42 * 64), store.security_of(42 * 64));
            assert_eq!(boxed.stats_snapshot(), store.stats_snapshot());

            let mut fresh =
                build_store(backend, FilterParams::paper_default()).expect("valid params");
            fresh.clone_from_store(&*store);
            assert_eq!(fresh.len(), store.len());
            assert_eq!(fresh.stats_snapshot(), store.stats_snapshot());
            // And the copy diverges independently afterwards.
            let a = fresh.query(0x9999_0000);
            let b = store.query(0x9999_0000);
            assert_eq!(a, b, "same state must produce the same outcome");
        }
    }

    #[test]
    #[should_panic(expected = "backend mismatch")]
    fn clone_from_store_panics_across_backends() {
        let auto = build_store(FilterBackend::Auto, FilterParams::paper_default()).expect("valid");
        let mut bloom =
            build_store(FilterBackend::Bloom, FilterParams::paper_default()).expect("valid");
        bloom.clone_from_store(&*auto);
    }
}
