//! Classic and Auto-Cuckoo filters, modelled after the hardware structure in
//! *PiPoMonitor: Mitigating Cross-core Cache Attacks Using the Auto-Cuckoo
//! Filter* (DATE 2021).
//!
//! A Cuckoo filter stores short *fingerprints* of items in an `l × b` matrix
//! of buckets. Each item has two candidate buckets related by the partial-key
//! cuckoo-hashing identity `h2 = h1 ^ hash(fingerprint)`, so a stored
//! fingerprint is enough to relocate a record to its alternate bucket.
//!
//! This crate provides two variants:
//!
//! * [`ClassicCuckooFilter`] — the software structure of Fan et al. (CoNEXT
//!   2014): insertions may fail once the maximal number of kicks (MNK) is
//!   exceeded, and records can be deleted manually. The manual delete is the
//!   vulnerability PiPoMonitor's adversary exploits.
//! * [`AutoCuckooFilter`] — the paper's hardware structure: insertion never
//!   fails because reaching MNK triggers an *autonomic deletion* of the last
//!   fingerprint that would need relocation, and each entry carries a
//!   saturating `Security` re-access counter used to detect Ping-Pong
//!   patterns.
//!
//! # Examples
//!
//! Detecting a Ping-Pong pattern (a line re-accessed from memory `secThr`
//! times):
//!
//! ```
//! use auto_cuckoo::{AutoCuckooFilter, FilterParams};
//!
//! # fn main() -> Result<(), auto_cuckoo::ParamsError> {
//! let params = FilterParams::paper_default(); // l=1024, b=8, f=12, MNK=4, secThr=3
//! let mut filter = AutoCuckooFilter::new(params)?;
//!
//! let line = 0xdead_beef_00;
//! assert!(!filter.query(line).captured); // first access: inserted, Security = 0
//! filter.query(line);                    // Security = 1
//! filter.query(line);                    // Security = 2
//! assert!(filter.query(line).captured);  // Security = 3 == secThr: Ping-Pong!
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod auto;
pub mod bloom;
pub mod classic;
pub mod entry;
pub mod hash;
pub mod params;
pub mod stats;
pub mod store;
pub mod xor;

pub use analysis::{
    brute_force_expected_fills, false_positive_rate, reverse_eviction_set_size, StorageOverhead,
};
pub use auto::AutoCuckooFilter;
pub use bloom::BloomPatternStore;
pub use classic::{ClassicCuckooFilter, DeleteOutcome, InsertError};
pub use entry::Entry;
pub use hash::{fingerprint_of, DetRng, IndexPair};
pub use params::{FilterParams, FilterParamsBuilder, ParamsError};
pub use stats::{CollisionCensus, FilterStats, OccupancySample};
pub use store::{build_store, FilterBackend, ParseBackendError, PatternStore, QueryOutcome};
pub use xor::XorPatternStore;
