//! The Auto-Cuckoo filter: a Cuckoo filter whose insertions never fail.
//!
//! When an insertion's relocation chain reaches the maximal number of kicks
//! (MNK), the classic filter reports failure; the Auto-Cuckoo filter instead
//! performs an *autonomic deletion*: the last fingerprint that would need to
//! be relocated is evicted. Because kick victims are selected at random and
//! every fingerprint has a different alternate bucket, the eventually evicted
//! record is highly unpredictable, which is what defeats reverse-engineering
//! attacks (paper §V-A, §VI-B).

use crate::entry::Entry;
use crate::hash::{alternate_bucket, candidate_buckets, fingerprint_of, DetRng, IndexPair};
use crate::params::{FilterParams, ParamsError};
use crate::stats::{CollisionCensus, FilterStats};
pub use crate::store::QueryOutcome;

/// The Auto-Cuckoo filter (paper Fig. 5).
///
/// The filter is addressed with 64-bit items; PiPoMonitor feeds it cache-line
/// addresses. All randomness (victim selection, initial bucket choice) comes
/// from a deterministic seeded generator so experiments are reproducible.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{AutoCuckooFilter, FilterParams};
///
/// # fn main() -> Result<(), auto_cuckoo::ParamsError> {
/// let mut filter = AutoCuckooFilter::new(FilterParams::paper_default())?;
/// let outcome = filter.query(0x40);
/// assert!(outcome.inserted);
/// assert_eq!(outcome.security, 0);
/// assert!(filter.contains(0x40));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AutoCuckooFilter {
    params: FilterParams,
    table: Vec<Entry>,
    rng: DetRng,
    stats: FilterStats,
    occupied: usize,
}

impl Clone for AutoCuckooFilter {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            table: self.table.clone(),
            rng: self.rng.clone(),
            stats: self.stats.clone(),
            occupied: self.occupied,
        }
    }

    /// Overwrites `self` with `source` while reusing the table allocation.
    ///
    /// The epoch-parallel engine snapshots the whole monitor once per
    /// committing epoch; forwarding to `Vec::clone_from` keeps that
    /// snapshot allocation-free in steady state (the derived impl would
    /// reallocate the table every time).
    fn clone_from(&mut self, source: &Self) {
        self.params = source.params;
        self.table.clone_from(&source.table);
        self.rng = source.rng.clone();
        self.stats = source.stats.clone();
        self.occupied = source.occupied;
    }
}

impl AutoCuckooFilter {
    /// Creates an empty filter.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `params` fails validation.
    pub fn new(params: FilterParams) -> Result<Self, ParamsError> {
        params.validate()?;
        Ok(Self {
            table: vec![Entry::vacant(); params.capacity()],
            rng: DetRng::new(params.seed()),
            stats: FilterStats::default(),
            occupied: 0,
            params,
        })
    }

    /// The filter's parameters.
    #[must_use]
    pub fn params(&self) -> &FilterParams {
        &self.params
    }

    /// Cumulative operation statistics.
    #[must_use]
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// Number of valid entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Fraction of entries currently valid, in `0.0..=1.0`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.occupied as f64 / self.params.capacity() as f64
    }

    /// Removes every record and resets statistics.
    pub fn clear(&mut self) {
        self.table.fill(Entry::vacant());
        self.occupied = 0;
        self.stats = FilterStats::default();
    }

    /// The paper's combined lookup/insert/count operation (§IV, "Capturing
    /// Ping-Pong lines").
    ///
    /// * If a valid entry with the item's fingerprint exists in either
    ///   candidate bucket, its `Security` counter is incremented (saturating
    ///   at `secThr`) and returned.
    /// * Otherwise a fresh record with `Security = 0` is inserted. If both
    ///   candidate buckets are full, random kicks relocate records; when the
    ///   chain reaches MNK, the last displaced record is evicted
    ///   (autonomic deletion) so the insertion still succeeds.
    pub fn query(&mut self, item: u64) -> QueryOutcome {
        self.stats.queries += 1;
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        let thr = self.params.security_threshold();

        if let Some(slot) = self.find_match(pair, fp) {
            let entry = &mut self.table[slot];
            entry.note_collision();
            let security = entry.bump_security(thr);
            self.stats.merges += 1;
            let captured = security >= thr;
            if captured {
                self.stats.captures += 1;
            }
            return QueryOutcome {
                security,
                inserted: false,
                merged: true,
                captured,
                kicks: 0,
                autonomic_deletion: None,
            };
        }

        let (kicks, deleted) = self.insert_new(pair, fp);
        self.stats.inserts += 1;
        self.stats.kicks += u64::from(kicks);
        if deleted.is_some() {
            self.stats.autonomic_deletions += 1;
        }
        QueryOutcome {
            security: 0,
            inserted: true,
            merged: false,
            captured: false,
            kicks,
            autonomic_deletion: deleted,
        }
    }

    /// Whether a record matching the item's fingerprint is present in either
    /// candidate bucket. Subject to the filter's false-positive rate.
    #[must_use]
    pub fn contains(&self, item: u64) -> bool {
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        self.find_match(pair, fp).is_some()
    }

    /// Current `Security` value of the item's record, if present.
    #[must_use]
    pub fn security_of(&self, item: u64) -> Option<u8> {
        let fp = fingerprint_of(item, &self.params);
        let pair = candidate_buckets(item, &self.params);
        self.find_match(pair, fp)
            .map(|slot| self.table[slot].security())
    }

    /// Builds a census of fingerprint collisions over the currently valid
    /// entries (Fig. 4). The per-entry address tallies assume the inserted
    /// items were distinct, which holds w.h.p. for random sampling from a
    /// large address space.
    #[must_use]
    pub fn census(&self) -> CollisionCensus {
        CollisionCensus::from_entries(self.table.iter().filter(|e| e.is_valid()))
    }

    /// Iterates over the valid entries (bucket-major order).
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.table.iter().filter(|e| e.is_valid())
    }

    fn bucket_range(&self, bucket: usize) -> std::ops::Range<usize> {
        let b = self.params.entries_per_bucket();
        let start = bucket * b;
        start..start + b
    }

    fn find_match(&self, pair: IndexPair, fp: u16) -> Option<usize> {
        for bucket in [pair.primary, pair.alternate] {
            for slot in self.bucket_range(bucket) {
                if self.table[slot].matches(fp) {
                    return Some(slot);
                }
            }
            if pair.primary == pair.alternate {
                break;
            }
        }
        None
    }

    fn vacant_slot(&self, bucket: usize) -> Option<usize> {
        self.bucket_range(bucket)
            .find(|&slot| !self.table[slot].is_valid())
    }

    /// Inserts a fresh record, returning `(kicks, autonomic_deletion)`.
    fn insert_new(&mut self, pair: IndexPair, fp: u16) -> (u32, Option<u16>) {
        // Fast path: a vacancy in either candidate bucket.
        for bucket in [pair.primary, pair.alternate] {
            if let Some(slot) = self.vacant_slot(bucket) {
                self.table[slot] = Entry::occupied(fp);
                self.occupied += 1;
                return (0, None);
            }
        }

        // Both candidate buckets full: displace a random victim, then walk
        // the relocation chain. The new record always lands; the record that
        // is still homeless after MNK relocations is autonomically deleted.
        let b = self.params.entries_per_bucket();
        let mnk = self.params.max_kicks();
        let mut bucket = if self.rng.coin() {
            pair.primary
        } else {
            pair.alternate
        };
        let mut homeless = Entry::occupied(fp);
        let mut kicks = 0u32;
        loop {
            let victim = bucket * b + self.rng.below(b);
            std::mem::swap(&mut homeless, &mut self.table[victim]);
            // `homeless` is now the displaced record and must be relocated.
            if kicks == mnk {
                // Autonomic deletion: drop the last record needing relocation.
                let dropped = homeless.fingerprint();
                return (kicks, Some(dropped));
            }
            kicks += 1;
            bucket = alternate_bucket(bucket, homeless.fingerprint(), &self.params);
            if let Some(slot) = self.vacant_slot(bucket) {
                self.table[slot] = homeless;
                self.occupied += 1;
                return (kicks, None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::FilterParams;

    fn small_params() -> FilterParams {
        FilterParams::builder()
            .buckets(16)
            .entries_per_bucket(4)
            .fingerprint_bits(12)
            .max_kicks(4)
            .build()
            .expect("valid")
    }

    #[test]
    fn fresh_filter_is_empty() {
        let f = AutoCuckooFilter::new(small_params()).expect("valid");
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.occupancy(), 0.0);
    }

    #[test]
    fn first_query_inserts_with_zero_security() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        let out = f.query(0x1000);
        assert!(out.inserted);
        assert!(!out.merged);
        assert!(!out.captured);
        assert_eq!(out.security, 0);
        assert_eq!(f.len(), 1);
        assert!(f.contains(0x1000));
    }

    #[test]
    fn reaccesses_count_up_to_threshold_and_capture() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        f.query(0x40);
        assert_eq!(f.query(0x40).security, 1);
        assert_eq!(f.query(0x40).security, 2);
        let out = f.query(0x40);
        assert_eq!(out.security, 3);
        assert!(out.captured);
        // Saturation: stays at threshold and keeps reporting captured.
        let out = f.query(0x40);
        assert_eq!(out.security, 3);
        assert!(out.captured);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn security_of_tracks_counter() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        assert_eq!(f.security_of(0x40), None);
        f.query(0x40);
        assert_eq!(f.security_of(0x40), Some(0));
        f.query(0x40);
        assert_eq!(f.security_of(0x40), Some(1));
    }

    #[test]
    fn insertion_never_fails_even_when_overfull() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        let capacity = f.params().capacity();
        // Insert 10x capacity distinct items; every query must succeed.
        for i in 0..(capacity as u64 * 10) {
            let out = f.query(i * 64 + 7);
            assert!(out.inserted || out.merged);
        }
        assert!(f.len() <= capacity);
        // After massive over-insertion the filter should be essentially full.
        assert!(f.occupancy() > 0.95, "occupancy {}", f.occupancy());
    }

    #[test]
    fn occupancy_reaches_one_for_paper_config() {
        let mut f = AutoCuckooFilter::new(FilterParams::paper_default()).expect("valid");
        for i in 0..20_000u64 {
            f.query(crate::hash::mix64(i) | 1);
        }
        assert!(
            (f.occupancy() - 1.0).abs() < 1e-9,
            "expected full filter, occupancy {}",
            f.occupancy()
        );
    }

    #[test]
    fn autonomic_deletion_reported_when_chain_exhausts() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        let mut saw_deletion = false;
        for i in 0..10_000u64 {
            if f.query(i * 64).autonomic_deletion.is_some() {
                saw_deletion = true;
            }
        }
        assert!(
            saw_deletion,
            "over-insertion must trigger autonomic deletion"
        );
        assert!(f.stats().autonomic_deletions > 0);
    }

    #[test]
    fn mnk_zero_still_inserts_new_record() {
        let p = FilterParams::builder()
            .buckets(4)
            .entries_per_bucket(2)
            .max_kicks(0)
            .build()
            .expect("valid");
        let mut f = AutoCuckooFilter::new(p).expect("valid");
        for i in 0..1000u64 {
            let item = i * 64;
            let out = f.query(item);
            if out.inserted {
                assert!(
                    f.contains(item),
                    "newly inserted item {item:#x} must be resident"
                );
            }
        }
    }

    #[test]
    fn occupancy_monotone_nondecreasing_during_fill() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        let mut last = 0.0;
        for i in 0..5_000u64 {
            f.query(crate::hash::mix64(i));
            let occ = f.occupancy();
            assert!(occ + 1e-12 >= last, "occupancy dropped: {last} -> {occ}");
            last = occ;
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        for i in 0..100u64 {
            f.query(i * 64);
        }
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.stats().queries, 0);
        assert!(!f.contains(0));
    }

    #[test]
    fn stats_account_queries_inserts_merges() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        f.query(0x40);
        f.query(0x40);
        f.query(0x80);
        let s = f.stats();
        assert_eq!(s.queries, 3);
        assert_eq!(s.inserts, 2);
        assert_eq!(s.merges, 1);
    }

    #[test]
    fn same_seed_same_behaviour() {
        let run = || {
            let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
            for i in 0..5_000u64 {
                f.query(crate::hash::mix64(i));
            }
            (f.len(), f.stats().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn entries_iterator_counts_match_len() {
        let mut f = AutoCuckooFilter::new(small_params()).expect("valid");
        for i in 0..40u64 {
            f.query(i * 64);
        }
        assert_eq!(f.entries().count(), f.len());
    }
}
