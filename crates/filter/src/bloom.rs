//! Blocked spectral Bloom pattern store.
//!
//! A cache-conscious Bloom-filter variant of the monitor's pattern store:
//! instead of storing fingerprints in relocatable cuckoo entries, the store
//! keeps a flat array of 4-bit saturating counters grouped into 64-byte
//! *blocks* (one hardware cache line / SRAM row each). An item hashes to one
//! block and to `K = 4` counter slots inside it, so every query touches a
//! single line — the classic blocked-bloom trade: slightly worse
//! false-positive behaviour than an unblocked filter for strictly better
//! locality and constant probe cost.
//!
//! Promotion uses the *conservative update* rule of spectral Bloom filters:
//! an item's `Security` level is the minimum of its `K` counters, and a query
//! increments only the counters equal to that minimum. False positives are
//! therefore *inflationary only*: counter sharing can make a line look hotter
//! than it is (raising false alarms), never colder — the store has no
//! deletions of any kind, so a real Ping-Pong pattern is never missed.
//!
//! Geometry derives from the shared [`FilterParams`]: a store sized for
//! `l × b` tracked lines uses `4 × l × b` counters (rounded up to a power of
//! two), i.e. 2 bytes per tracked line — comparable to the cuckoo table's
//! `(1 + f + 2)`-bit entries at `f = 12`.

use std::fmt;

use crate::hash::mix64;
use crate::params::{FilterParams, ParamsError};
use crate::stats::FilterStats;
use crate::store::QueryOutcome;

/// Counters per item (the `K` probes of a query).
const K: usize = 4;
/// Counters per 64-byte block (4-bit counters).
const BLOCK_COUNTERS: usize = 128;
/// Counter slots allocated per tracked item of the nominal capacity.
const COUNTERS_PER_ITEM: usize = 4;
/// Saturation value of a 4-bit counter.
const COUNTER_MAX: u8 = 15;
/// Domain separation for the block hash.
const BLOOM_SALT: u64 = 0xb10c_b100_f11e_ca5e;

/// The blocked spectral Bloom pattern store.
///
/// # Examples
///
/// ```
/// use auto_cuckoo::{BloomPatternStore, FilterParams};
///
/// # fn main() -> Result<(), auto_cuckoo::ParamsError> {
/// let mut store = BloomPatternStore::new(FilterParams::paper_default())?;
/// assert!(store.query(0x40).inserted); // Security = 0
/// store.query(0x40);                   // Security = 1
/// store.query(0x40);                   // Security = 2
/// assert!(store.query(0x40).captured); // Security = 3 == secThr
/// # Ok(())
/// # }
/// ```
pub struct BloomPatternStore {
    params: FilterParams,
    /// Nibble-packed 4-bit counters, two per byte.
    data: Vec<u8>,
    /// Total counter slots (power of two, multiple of [`BLOCK_COUNTERS`]).
    counters: usize,
    /// Block count (power of two); block index mask is `blocks - 1`.
    blocks: usize,
    /// Counters currently nonzero (for occupancy).
    set_counters: usize,
    /// Distinct inserts observed (queries that found minimum 0).
    inserted_items: usize,
    stats: FilterStats,
}

impl fmt::Debug for BloomPatternStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomPatternStore")
            .field("params", &self.params)
            .field("counters", &self.counters)
            .field("blocks", &self.blocks)
            .field("set_counters", &self.set_counters)
            .field("inserted_items", &self.inserted_items)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Clone for BloomPatternStore {
    fn clone(&self) -> Self {
        Self {
            params: self.params,
            data: self.data.clone(),
            counters: self.counters,
            blocks: self.blocks,
            set_counters: self.set_counters,
            inserted_items: self.inserted_items,
            stats: self.stats.clone(),
        }
    }

    /// Overwrites `self` with `source` while reusing the counter-array
    /// allocation (epoch-engine snapshot contract).
    fn clone_from(&mut self, source: &Self) {
        self.params = source.params;
        self.data.clone_from(&source.data);
        self.counters = source.counters;
        self.blocks = source.blocks;
        self.set_counters = source.set_counters;
        self.inserted_items = source.inserted_items;
        self.stats = source.stats.clone();
    }
}

impl BloomPatternStore {
    /// Creates an empty store sized for `params.capacity()` tracked lines.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError`] if `params` fails validation.
    pub fn new(params: FilterParams) -> Result<Self, ParamsError> {
        params.validate()?;
        let counters = (params.capacity() * COUNTERS_PER_ITEM)
            .next_power_of_two()
            .max(BLOCK_COUNTERS);
        Ok(Self {
            data: vec![0u8; counters / 2],
            counters,
            blocks: counters / BLOCK_COUNTERS,
            set_counters: 0,
            inserted_items: 0,
            stats: FilterStats::default(),
            params,
        })
    }

    /// The store's parameters.
    #[must_use]
    pub fn params(&self) -> &FilterParams {
        &self.params
    }

    /// Cumulative operation statistics.
    #[must_use]
    pub fn stats(&self) -> &FilterStats {
        &self.stats
    }

    /// Distinct inserts observed (queries whose counter minimum was zero).
    /// Counter sharing can merge distinct lines, so this undercounts the
    /// lines that contributed traffic, never overcounts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserted_items
    }

    /// Whether no counters are set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set_counters == 0
    }

    /// Fraction of counter slots currently nonzero, in `0.0..=1.0`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.set_counters as f64 / self.counters as f64
    }

    /// Bytes of counter storage.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.data.len()
    }

    /// Zeroes every counter and resets statistics.
    pub fn clear(&mut self) {
        self.data.fill(0);
        self.set_counters = 0;
        self.inserted_items = 0;
        self.stats = FilterStats::default();
    }

    /// The `K` counter indices of an item (all within one block).
    #[inline]
    fn probes(&self, item: u64) -> [usize; K] {
        let h = mix64(item ^ BLOOM_SALT);
        let base = (h as usize & (self.blocks - 1)) * BLOCK_COUNTERS;
        // 4 × 7 bits of in-block slot index from an independent mix.
        let g = mix64(h);
        let mut probes = [0usize; K];
        for (i, probe) in probes.iter_mut().enumerate() {
            *probe = base + ((g >> (7 * i)) as usize & (BLOCK_COUNTERS - 1));
        }
        probes
    }

    #[inline]
    fn counter(&self, idx: usize) -> u8 {
        let byte = self.data[idx / 2];
        if idx & 1 == 0 {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    #[inline]
    fn set_counter(&mut self, idx: usize, value: u8) {
        debug_assert!(value <= COUNTER_MAX);
        let byte = &mut self.data[idx / 2];
        if idx & 1 == 0 {
            *byte = (*byte & 0xf0) | value;
        } else {
            *byte = (*byte & 0x0f) | (value << 4);
        }
    }

    /// The query-with-promotion operation: reads the item's counter minimum,
    /// conservatively increments it, and reports the resulting `Security`.
    pub fn query(&mut self, item: u64) -> QueryOutcome {
        self.stats.queries += 1;
        let thr = self.params.security_threshold();
        let probes = self.probes(item);
        let mut min = COUNTER_MAX;
        for &p in &probes {
            min = min.min(self.counter(p));
        }
        // Conservative update: only counters at the minimum move, so shared
        // counters are inflated as little as possible.
        if min < COUNTER_MAX {
            for &p in &probes {
                if self.counter(p) == min {
                    if min == 0 {
                        self.set_counters += 1;
                    }
                    self.set_counter(p, min + 1);
                }
            }
        }
        if min == 0 {
            self.inserted_items += 1;
            self.stats.inserts += 1;
            return QueryOutcome {
                security: 0,
                inserted: true,
                merged: false,
                captured: false,
                kicks: 0,
                autonomic_deletion: None,
            };
        }
        let security = min.min(thr);
        let captured = security >= thr;
        self.stats.merges += 1;
        if captured {
            self.stats.captures += 1;
        }
        QueryOutcome {
            security,
            inserted: false,
            merged: true,
            captured,
            kicks: 0,
            autonomic_deletion: None,
        }
    }

    /// Whether the item's counter minimum is nonzero. Subject to
    /// counter-sharing false positives.
    #[must_use]
    pub fn contains(&self, item: u64) -> bool {
        self.probes(item).iter().all(|&p| self.counter(p) > 0)
    }

    /// Current `Security` of the item, if its counter minimum is nonzero.
    /// A counter minimum of `m` means the line was seen `m` times
    /// (saturating), i.e. `Security = min(m - 1, secThr)`.
    #[must_use]
    pub fn security_of(&self, item: u64) -> Option<u8> {
        let thr = self.params.security_threshold();
        let min = self
            .probes(item)
            .iter()
            .map(|&p| self.counter(p))
            .min()
            .expect("K > 0");
        (min > 0).then(|| (min - 1).min(thr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BloomPatternStore {
        BloomPatternStore::new(FilterParams::paper_default()).expect("valid")
    }

    #[test]
    fn fresh_store_is_empty() {
        let s = store();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.occupancy(), 0.0);
        assert!(!s.contains(0x40));
        assert_eq!(s.security_of(0x40), None);
        // 4 counters × 8192 capacity × 4 bits = 16 KiB.
        assert_eq!(s.memory_bytes(), 16 * 1024);
    }

    #[test]
    fn promotion_matches_cuckoo_latency() {
        let mut s = store();
        let out = s.query(0x40);
        assert!(out.inserted && !out.merged && out.security == 0);
        assert_eq!(s.security_of(0x40), Some(0));
        assert_eq!(s.query(0x40).security, 1);
        assert_eq!(s.query(0x40).security, 2);
        let out = s.query(0x40);
        assert_eq!(out.security, 3);
        assert!(out.captured);
        // Saturation: stays captured at the threshold.
        let out = s.query(0x40);
        assert_eq!(out.security, 3);
        assert!(out.captured);
        assert_eq!(s.security_of(0x40), Some(3));
    }

    #[test]
    fn distinct_lines_rarely_capture_below_load() {
        let mut s = store();
        let mut captures = 0u32;
        for i in 0..4000u64 {
            if s.query(mix64(i) | 1).captured {
                captures += 1;
            }
        }
        // Single-visit lines at <50% counter load: capture needs a 4-way
        // counter pileup; a handful at most.
        assert!(captures < 5, "unexpected capture storm: {captures}");
        assert_eq!(s.stats().queries, 4000);
    }

    #[test]
    fn false_positives_only_inflate() {
        let mut s = store();
        // Saturate the store with traffic, then a fresh line's security can
        // be inflated but a seen line's can never be reduced.
        for i in 0..100_000u64 {
            s.query(mix64(i));
        }
        s.query(0xdead_beef);
        let first = s.security_of(0xdead_beef).expect("just inserted");
        s.query(0xdead_beef);
        let second = s.security_of(0xdead_beef).expect("still present");
        assert!(
            second >= first,
            "promotion must be monotone: {first}->{second}"
        );
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = store();
        for i in 0..100u64 {
            s.query(i * 64);
        }
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats().queries, 0);
        assert!(!s.contains(0));
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn occupancy_counts_nonzero_counters() {
        let mut s = store();
        s.query(0x40);
        let occ = s.occupancy();
        assert!(occ > 0.0 && occ <= K as f64 / s.counters as f64);
        // Re-querying the same item sets no new counters.
        s.query(0x40);
        assert_eq!(s.occupancy(), occ);
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut a = store();
        for i in 0..500u64 {
            a.query(mix64(i));
        }
        let mut b = store();
        b.clone_from(&a);
        assert_eq!(b.len(), a.len());
        assert_eq!(b.stats(), a.stats());
        assert_eq!(b.security_of(mix64(7)), a.security_of(mix64(7)));
    }
}
