//! `pipo-trace v2`: a compressed binary trace format.
//!
//! The v1 text format (`trace.rs`) is convenient to read and diff, but at
//! ~11–18 bytes per access it makes large corpora impractical to bundle.
//! v2 stores the same access stream (losslessly, bit for bit) in a
//! delta + LEB128-varint encoding at typically 2–4 bytes per access:
//!
//! ```text
//! [8]    magic  "PIPOTRC2"
//! varint total access count
//! frames until end of input, each:
//!   varint count        accesses in this frame (1..=FRAME_LEN)
//!   u8     shift        common power-of-two address alignment (0..=63)
//!   varint dict_len     distinct (kind, think) ops in the frame (1..=count)
//!   dict_len × op:      u8 kind (0 = read, 1 = write), varint think_cycles
//!   count × access:
//!     varint op_idx     index into the frame's op dictionary
//!                       (omitted entirely when dict_len == 1)
//!     varint addr       first access: absolute (addr >> shift);
//!                       later: zigzag((addr >> shift) − (prev >> shift))
//! ```
//!
//! Frames are self-contained (the delta chain restarts per frame), so a
//! reader streams one frame at a time out of a reusable buffer — replay
//! through [`V2Replay`] is allocation-free in steady state, which
//! `tests/no_alloc_hot_path.rs` pins. All varints are unsigned LEB128
//! (7 payload bits per byte, most significant continuation bit, at most
//! 10 bytes). Signed deltas use zigzag (`(v << 1) ^ (v >> 63)`) so small
//! negative strides stay short.
//!
//! The v1 reader is untouched: [`load_trace`] sniffs the magic and falls
//! back to the v1 text parser, so both formats coexist in one corpus.
//!
//! # Examples
//!
//! ```
//! use pipo_workloads::{StrideSource, Trace};
//!
//! let trace = Trace::record(&mut StrideSource::new(0, 64, 2), 500);
//! let bytes = trace.to_v2();
//! assert!(bytes.len() * 4 < trace.to_text().len(), "v2 compresses 4x+");
//! let restored = Trace::from_v2(&bytes).expect("round trip");
//! assert_eq!(restored, trace);
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use cache_sim::{Access, AccessKind, AccessSource, Addr};

use crate::trace::{ParseTraceError, Trace};

/// The 8-byte magic prefix of every v2 trace.
pub const TRACE_V2_MAGIC: [u8; 8] = *b"PIPOTRC2";

/// Accesses per frame. Large enough to amortise the frame header, small
/// enough that the reusable decode buffer stays cache-friendly.
const FRAME_LEN: usize = 1024;

/// Error decoding a v2 trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeTraceError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace byte {}: {}", self.offset, self.reason)
    }
}

impl Error for DecodeTraceError {}

/// Error loading a trace of either format (see [`load_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadTraceError {
    /// The input carried the v2 magic but the body was malformed.
    V2(DecodeTraceError),
    /// The input was treated as v1 text but failed to parse.
    V1(ParseTraceError),
    /// The input was neither v2 binary nor valid UTF-8 text.
    NotText,
}

impl fmt::Display for LoadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadTraceError::V2(e) => write!(f, "pipo-trace v2: {e}"),
            LoadTraceError::V1(e) => write!(f, "pipo-trace v1: {e}"),
            LoadTraceError::NotText => {
                write!(f, "not a pipo-trace: no v2 magic and not UTF-8 text")
            }
        }
    }
}

impl Error for LoadTraceError {}

fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// A cursor over encoded bytes with positioned error reporting.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], pos: usize) -> Self {
        Self { bytes, pos }
    }

    fn err(&self, reason: impl Into<String>) -> DecodeTraceError {
        DecodeTraceError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeTraceError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, DecodeTraceError> {
        let mut v = 0u64;
        for i in 0..10 {
            let b = self.u8()?;
            let payload = u64::from(b & 0x7f);
            if i == 9 && payload > 1 {
                return Err(self.err("varint overflows 64 bits"));
            }
            v |= payload << (7 * i);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint longer than 10 bytes"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Encodes one frame of accesses onto `body`, reusing `dict` as scratch.
fn encode_frame(body: &mut Vec<u8>, dict: &mut Vec<(AccessKind, u64)>, frame: &[Access]) {
    debug_assert!(!frame.is_empty() && frame.len() <= FRAME_LEN);
    // Common alignment: every address in the frame is a multiple of
    // 2^shift, so shifted values (and their deltas) are exact.
    let or = frame.iter().fold(0u64, |acc, a| acc | a.addr.0);
    let shift = if or == 0 { 0 } else { or.trailing_zeros() };
    // Frame-local op dictionary, in order of first appearance.
    dict.clear();
    for a in frame {
        let op = (a.kind, a.think_cycles);
        if !dict.contains(&op) {
            dict.push(op);
        }
    }

    write_varint(body, frame.len() as u64);
    body.push(shift as u8);
    write_varint(body, dict.len() as u64);
    for &(kind, think) in dict.iter() {
        body.push(u8::from(kind.is_write()));
        write_varint(body, think);
    }
    let mut prev = 0u64;
    for (i, a) in frame.iter().enumerate() {
        if dict.len() > 1 {
            let op_idx = dict
                .iter()
                .position(|&op| op == (a.kind, a.think_cycles))
                .expect("op was inserted above");
            write_varint(body, op_idx as u64);
        }
        let shifted = a.addr.0 >> shift;
        if i == 0 {
            write_varint(body, shifted);
        } else {
            write_varint(body, zigzag(shifted.wrapping_sub(prev) as i64));
        }
        prev = shifted;
    }
}

/// Decodes one frame from `r` into `out`, reusing `dict` as scratch.
/// Returns the number of accesses appended.
fn decode_frame(
    r: &mut Reader<'_>,
    dict: &mut Vec<(AccessKind, u64)>,
    out: &mut Vec<Access>,
) -> Result<usize, DecodeTraceError> {
    let count = r.varint()? as usize;
    if count == 0 {
        return Err(r.err("empty frame"));
    }
    // Every access costs at least one byte, so a count exceeding the
    // remaining input is corrupt — reject before reserving any memory.
    if count > r.bytes.len() - r.pos {
        return Err(r.err(format!("frame claims {count} accesses beyond end of input")));
    }
    let shift = u32::from(r.u8()?);
    if shift > 63 {
        return Err(r.err(format!("address shift {shift} out of range")));
    }
    let dict_len = r.varint()? as usize;
    if dict_len == 0 || dict_len > count {
        return Err(r.err(format!(
            "op dictionary length {dict_len} vs {count} accesses"
        )));
    }
    dict.clear();
    for _ in 0..dict_len {
        let kind = match r.u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => return Err(r.err(format!("unknown access kind {other}"))),
        };
        let think = r.varint()?;
        dict.push((kind, think));
    }
    let mut prev = 0u64;
    for i in 0..count {
        let op_idx = if dict_len > 1 {
            r.varint()? as usize
        } else {
            0
        };
        let Some(&(kind, think)) = dict.get(op_idx) else {
            return Err(r.err(format!("op index {op_idx} out of dictionary ({dict_len})")));
        };
        let raw = r.varint()?;
        let shifted = if i == 0 {
            raw
        } else {
            prev.wrapping_add(unzigzag(raw) as u64)
        };
        if shift > 0 && (shifted << shift) >> shift != shifted {
            return Err(r.err("address overflows its frame shift"));
        }
        prev = shifted;
        out.push(Access {
            addr: Addr(shifted << shift),
            kind,
            think_cycles: think,
        });
    }
    Ok(count)
}

/// Streaming v2 encoder: push accesses one at a time (e.g. while recording
/// a live source), then [`finish`](Self::finish) into the encoded bytes.
///
/// # Examples
///
/// ```
/// use cache_sim::{Access, Addr};
/// use pipo_workloads::{Trace, V2Writer};
///
/// let mut w = V2Writer::new();
/// for i in 0..3u64 {
///     w.push(Access::read(Addr(i * 64)));
/// }
/// let trace = Trace::from_v2(&w.finish()).expect("valid");
/// assert_eq!(trace.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct V2Writer {
    body: Vec<u8>,
    frame: Vec<Access>,
    dict: Vec<(AccessKind, u64)>,
    count: u64,
}

impl V2Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            body: Vec::new(),
            frame: Vec::with_capacity(FRAME_LEN),
            dict: Vec::new(),
            count: 0,
        }
    }

    /// Appends one access to the stream.
    pub fn push(&mut self, access: Access) {
        self.frame.push(access);
        self.count += 1;
        if self.frame.len() == FRAME_LEN {
            encode_frame(&mut self.body, &mut self.dict, &self.frame);
            self.frame.clear();
        }
    }

    /// Number of accesses pushed so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Flushes the trailing partial frame and returns the encoded bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        if !self.frame.is_empty() {
            encode_frame(&mut self.body, &mut self.dict, &self.frame);
        }
        let mut out = Vec::with_capacity(8 + 10 + self.body.len());
        out.extend_from_slice(&TRACE_V2_MAGIC);
        write_varint(&mut out, self.count);
        out.extend_from_slice(&self.body);
        out
    }
}

/// Encodes a whole [`Trace`] into v2 bytes (one-shot [`V2Writer`]).
#[must_use]
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut w = V2Writer::new();
    for &a in trace.accesses() {
        w.push(a);
    }
    w.finish()
}

/// Decodes v2 bytes into a [`Trace`].
///
/// # Errors
///
/// Rejects a missing/wrong magic, truncated input (including input cut at
/// a frame boundary — the header's total count would not be reached),
/// trailing garbage, and any malformed frame.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, DecodeTraceError> {
    let mut r = header_reader(bytes)?;
    let total = r.varint()?;
    let mut dict = Vec::new();
    let mut accesses = Vec::with_capacity((total as usize).min(bytes.len()));
    let mut decoded = 0u64;
    while !r.done() {
        decoded += decode_frame(&mut r, &mut dict, &mut accesses)? as u64;
        if decoded > total {
            return Err(r.err(format!("more accesses than the declared {total}")));
        }
    }
    if decoded != total {
        return Err(r.err(format!(
            "truncated trace: header declares {total} accesses, found {decoded}"
        )));
    }
    Ok(accesses.into_iter().collect())
}

/// Checks the magic and returns a reader positioned after it.
fn header_reader(bytes: &[u8]) -> Result<Reader<'_>, DecodeTraceError> {
    if bytes.len() < TRACE_V2_MAGIC.len() || bytes[..TRACE_V2_MAGIC.len()] != TRACE_V2_MAGIC {
        return Err(DecodeTraceError {
            offset: 0,
            reason: "missing pipo-trace v2 magic".into(),
        });
    }
    Ok(Reader::new(bytes, TRACE_V2_MAGIC.len()))
}

/// Whether `bytes` carry the v2 magic (cheap format sniff).
#[must_use]
pub fn is_v2(bytes: &[u8]) -> bool {
    bytes.len() >= TRACE_V2_MAGIC.len() && bytes[..TRACE_V2_MAGIC.len()] == TRACE_V2_MAGIC
}

/// Loads a trace of either format: v2 binary when the magic matches,
/// otherwise v1 text.
///
/// # Errors
///
/// Returns the format-specific error ([`LoadTraceError`]).
pub fn load_trace(bytes: &[u8]) -> Result<Trace, LoadTraceError> {
    if is_v2(bytes) {
        return decode_trace(bytes).map_err(LoadTraceError::V2);
    }
    let text = std::str::from_utf8(bytes).map_err(|_| LoadTraceError::NotText)?;
    text.parse().map_err(LoadTraceError::V1)
}

impl Trace {
    /// Serialises to the v2 binary format (see [`encode_trace`]).
    #[must_use]
    pub fn to_v2(&self) -> Vec<u8> {
        encode_trace(self)
    }

    /// Parses the v2 binary format (see [`decode_trace`]).
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeTraceError`] for malformed input.
    pub fn from_v2(bytes: &[u8]) -> Result<Self, DecodeTraceError> {
        decode_trace(bytes)
    }

    /// Loads either format, sniffing the v2 magic (see [`load_trace`]).
    ///
    /// # Errors
    ///
    /// Propagates [`LoadTraceError`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadTraceError> {
        load_trace(bytes)
    }
}

/// A streaming, allocation-free replay of an encoded v2 trace.
///
/// The encoded bytes are shared (`Arc<[u8]>`), so cloning a replay for
/// another simulation cell is cheap. Construction validates the whole
/// stream once; after that, frames decode on demand into a reusable buffer
/// sized by the validation pass, so the steady-state replay hot path
/// performs **zero** heap allocations (`tests/no_alloc_hot_path.rs`).
///
/// # Examples
///
/// ```
/// use cache_sim::AccessSource;
/// use pipo_workloads::{StrideSource, Trace, V2Replay};
///
/// let trace = Trace::record(&mut StrideSource::new(0, 64, 1), 10);
/// let mut replay = V2Replay::new(trace.to_v2()).expect("valid");
/// assert_eq!(replay.len(), 10);
/// let mut expected = trace.replay();
/// for _ in 0..10 {
///     assert_eq!(replay.next_access(), expected.next_access());
/// }
/// assert!(replay.next_access().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct V2Replay {
    bytes: Arc<[u8]>,
    /// Cursor into `bytes` at the next undecoded frame.
    pos: usize,
    /// Total accesses declared by the header.
    total: u64,
    /// Reusable frame decode buffer and cursor into it.
    frame: Vec<Access>,
    frame_pos: usize,
    /// Reusable per-frame op dictionary.
    dict: Vec<(AccessKind, u64)>,
}

impl V2Replay {
    /// Validates `bytes` as a complete v2 stream and prepares a replay.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeTraceError`] for malformed input; a valid replay
    /// can then never fail mid-stream.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Result<Self, DecodeTraceError> {
        let bytes: Arc<[u8]> = bytes.into();
        let mut r = header_reader(&bytes)?;
        let total = r.varint()?;
        let body_start = r.pos;
        // Validation pass: decode every frame once. The scratch vectors
        // end up at the stream's maximum frame/dictionary size and are then
        // kept as the replay buffers, so replay never reallocates them.
        let mut dict = Vec::new();
        let mut frame = Vec::new();
        let mut decoded = 0u64;
        while !r.done() {
            frame.clear();
            decoded += decode_frame(&mut r, &mut dict, &mut frame)? as u64;
            if decoded > total {
                return Err(r.err(format!("more accesses than the declared {total}")));
            }
        }
        if decoded != total {
            return Err(r.err(format!(
                "truncated trace: header declares {total} accesses, found {decoded}"
            )));
        }
        frame.clear();
        Ok(Self {
            bytes,
            pos: body_start,
            total,
            frame,
            frame_pos: 0,
            dict,
        })
    }

    /// Total accesses in the trace.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the trace holds no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Decodes the next frame into the reusable buffer. Returns `false` at
    /// end of stream.
    fn load_frame(&mut self) -> bool {
        if self.pos == self.bytes.len() {
            return false;
        }
        self.frame.clear();
        self.frame_pos = 0;
        let mut r = Reader::new(&self.bytes, self.pos);
        decode_frame(&mut r, &mut self.dict, &mut self.frame)
            .expect("stream was validated at construction");
        self.pos = r.pos;
        true
    }
}

impl AccessSource for V2Replay {
    fn next_access(&mut self) -> Option<Access> {
        if self.frame_pos == self.frame.len() && !self.load_frame() {
            return None;
        }
        let a = self.frame[self.frame_pos];
        self.frame_pos += 1;
        Some(a)
    }

    /// Copies whole runs out of the decoded frame buffer (identical stream
    /// to repeated [`next_access`](AccessSource::next_access) — the decoded
    /// frames *are* the stream).
    fn refill(&mut self, buf: &mut Vec<Access>, max: usize) {
        let mut remaining = max;
        while remaining > 0 {
            if self.frame_pos == self.frame.len() && !self.load_frame() {
                return;
            }
            let take = remaining.min(self.frame.len() - self.frame_pos);
            buf.extend_from_slice(&self.frame[self.frame_pos..self.frame_pos + take]);
            self.frame_pos += take;
            remaining -= take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{PointerChaseSource, StrideSource};

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = Reader::new(&buf, 0);
            assert_eq!(r.varint().expect("valid"), v);
            assert!(r.done());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small: |v| <= 63 fits one varint byte.
        assert!(zigzag(-64) < 128);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new();
        let bytes = trace.to_v2();
        assert_eq!(bytes.len(), TRACE_V2_MAGIC.len() + 1);
        assert_eq!(Trace::from_v2(&bytes).expect("valid"), trace);
        let mut replay = V2Replay::new(bytes).expect("valid");
        assert!(replay.is_empty());
        assert!(replay.next_access().is_none());
    }

    #[test]
    fn multi_frame_trace_round_trips() {
        // 2.5 frames, mixed kinds and think values.
        let mut src = PointerChaseSource::new(1 << 20, 512, 5, 11);
        let trace = Trace::record(&mut src, FRAME_LEN * 2 + FRAME_LEN / 2);
        let bytes = trace.to_v2();
        assert_eq!(Trace::from_v2(&bytes).expect("valid"), trace);
        // And the streaming replay yields the identical stream.
        let mut replay = V2Replay::new(bytes).expect("valid");
        let mut expected = trace.replay();
        loop {
            let (a, b) = (replay.next_access(), expected.next_access());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn compresses_stride_traces_hard() {
        let trace = Trace::record(&mut StrideSource::new(0x4000, 64, 3), 1000);
        let v1 = trace.to_text().len();
        let v2 = trace.to_v2().len();
        // Single-op frames omit op indices: ~1 byte per access.
        assert!(
            v2 * 8 < v1,
            "stride should compress 8x+: v1 {v1} bytes, v2 {v2} bytes"
        );
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let err = Trace::from_v2(b"not a trace").unwrap_err();
        assert!(err.reason.contains("magic"), "{err}");
        assert_eq!(err.offset, 0);

        let trace = Trace::record(&mut StrideSource::new(0, 64, 1), 300);
        let bytes = trace.to_v2();
        // Truncation anywhere — mid-frame or at the frame boundary — must
        // be rejected (the declared total no longer matches).
        for cut in [bytes.len() - 1, bytes.len() / 2, TRACE_V2_MAGIC.len() + 2] {
            assert!(
                Trace::from_v2(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
            assert!(V2Replay::new(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_fields() {
        let trace = Trace::record(&mut StrideSource::new(0, 64, 1), 10);
        let mut bytes = trace.to_v2();
        bytes.push(0x00);
        // One trailing byte parses as the start of a frame: count 0.
        assert!(Trace::from_v2(&bytes).is_err(), "trailing garbage accepted");

        // A corrupt shift byte (> 63) is rejected with its offset.
        let mut bytes = trace.to_v2();
        // Layout: magic(8) + count varint(1) + frame count varint(1) + shift.
        let shift_at = TRACE_V2_MAGIC.len() + 2;
        bytes[shift_at] = 77;
        let err = Trace::from_v2(&bytes).unwrap_err();
        assert!(err.reason.contains("shift"), "{err}");
    }

    #[test]
    fn load_trace_sniffs_both_formats() {
        let trace = Trace::record(&mut StrideSource::new(0x100, 64, 2), 20);
        assert_eq!(load_trace(&trace.to_v2()).expect("v2"), trace);
        assert_eq!(load_trace(trace.to_text().as_bytes()).expect("v1"), trace);
        assert!(matches!(
            load_trace(&[0xff, 0xfe, 0x00, 0x01]),
            Err(LoadTraceError::NotText)
        ));
        assert!(matches!(
            load_trace(b"X 0x40 1"),
            Err(LoadTraceError::V1(_))
        ));
        let mut corrupt = trace.to_v2();
        corrupt.truncate(corrupt.len() - 1);
        assert!(matches!(load_trace(&corrupt), Err(LoadTraceError::V2(_))));
    }

    #[test]
    fn writer_matches_one_shot_encoder_across_frame_boundaries() {
        let mut src = PointerChaseSource::new(0, 256, 2, 3);
        let trace = Trace::record(&mut src, FRAME_LEN + 7);
        let mut w = V2Writer::new();
        assert!(w.is_empty());
        for &a in trace.accesses() {
            w.push(a);
        }
        assert_eq!(w.len(), trace.len() as u64);
        assert_eq!(w.finish(), trace.to_v2());
    }

    #[test]
    fn refill_matches_next_access() {
        let trace = Trace::record(&mut PointerChaseSource::new(0, 300, 1, 9), 2000);
        let bytes: Arc<[u8]> = trace.to_v2().into();
        let mut scalar = V2Replay::new(Arc::clone(&bytes)).expect("valid");
        let mut batched = V2Replay::new(bytes).expect("valid");
        let mut buf = Vec::new();
        loop {
            buf.clear();
            batched.refill(&mut buf, 97);
            for &a in &buf {
                assert_eq!(Some(a), scalar.next_access());
            }
            if buf.len() < 97 {
                break;
            }
            // Interleave scalar pulls on the batched source too.
            assert_eq!(batched.next_access(), scalar.next_access());
        }
        assert_eq!(scalar.next_access(), None);
        assert_eq!(batched.next_access(), None);
    }

    #[test]
    fn error_display_carries_offset() {
        let e = DecodeTraceError {
            offset: 12,
            reason: "bad".into(),
        };
        assert_eq!(e.to_string(), "trace byte 12: bad");
        assert_eq!(
            LoadTraceError::V2(e).to_string(),
            "pipo-trace v2: trace byte 12: bad"
        );
        assert!(LoadTraceError::NotText.to_string().contains("UTF-8"));
    }
}
