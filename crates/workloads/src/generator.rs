//! Turns a [`BenchProfile`] into a deterministic infinite access stream.

use cache_sim::{Access, AccessKind, AccessSource, Addr};
use rand::distributions::Uniform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::BenchProfile;

const LINE_SIZE: u64 = 64;
/// Line-number stride separating per-core address regions (2^36 lines
/// = 4 TiB of byte address space per core: regions can never overlap).
const CORE_REGION_LINES: u64 = 1 << 36;
/// Offset of the churn tier inside a core region, in lines.
const CHURN_OFFSET_LINES: u64 = 1 << 24;
/// Offset of the thrash tier inside a core region, in lines.
const THRASH_OFFSET_LINES: u64 = 1 << 26;
/// Offset of the stream tier inside a core region, in lines.
const STREAM_OFFSET_LINES: u64 = 1 << 28;
/// LLC set count of the paper's Table II configuration; thrash-tier lines
/// are spaced by this so they collide in a single LLC set.
const DEFAULT_LLC_SETS: u64 = 4096;

/// A deterministic stochastic address stream for one benchmark on one core.
///
/// Each core gets a disjoint address region, so mixes share only the LLC
/// capacity (no accidental data sharing), matching independent SPEC processes
/// under a non-shared-memory OS model.
///
/// # Examples
///
/// ```
/// use cache_sim::AccessSource;
/// use pipo_workloads::{benchmark, ProfileSource};
///
/// let p = benchmark("gcc").expect("known");
/// let mut a = ProfileSource::new(p, 0, 1);
/// let mut b = ProfileSource::new(p, 0, 1);
/// // Same profile, core and seed: identical streams.
/// for _ in 0..100 {
///     assert_eq!(a.next_access(), b.next_access());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ProfileSource {
    profile: BenchProfile,
    rng: StdRng,
    hot_base: u64,
    churn_base: u64,
    thrash_base: u64,
    stream_base: u64,
    churn_pos: u64,
    thrash_pos: u64,
    stream_pos: u64,
    llc_sets: u64,
    /// Precomputed hot-tier line distribution (`0..hot_lines`); drawn on
    /// ~90% of accesses, so the division is strength-reduced once here
    /// instead of per draw.
    hot_dist: Uniform,
    /// Precomputed think-gap distribution (`0..=2 * think_mean`); drawn on
    /// every access.
    think_dist: Uniform,
}

impl ProfileSource {
    /// Creates the stream for `profile` running on core `core_index` with a
    /// deterministic `seed`, assuming the paper's 4096-set LLC for the
    /// thrash tier.
    #[must_use]
    pub fn new(profile: &BenchProfile, core_index: usize, seed: u64) -> Self {
        Self::with_llc_sets(profile, core_index, seed, DEFAULT_LLC_SETS)
    }

    /// Like [`new`](Self::new) but for an LLC with `llc_sets` sets, so the
    /// thrash tier conflicts in one set on scaled-down configurations.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid or `llc_sets` is not a power of two.
    #[must_use]
    pub fn with_llc_sets(
        profile: &BenchProfile,
        core_index: usize,
        seed: u64,
        llc_sets: u64,
    ) -> Self {
        profile.assert_valid();
        assert!(
            llc_sets.is_power_of_two(),
            "LLC set count must be a power of two"
        );
        let region = (core_index as u64 + 1) * CORE_REGION_LINES;
        Self {
            profile: *profile,
            rng: StdRng::seed_from_u64(seed ^ ((core_index as u64) << 32)),
            hot_base: region,
            churn_base: region + CHURN_OFFSET_LINES,
            thrash_base: region + THRASH_OFFSET_LINES,
            stream_base: region + STREAM_OFFSET_LINES,
            churn_pos: 0,
            thrash_pos: 0,
            stream_pos: 0,
            llc_sets,
            hot_dist: Uniform::new(0, profile.hot_lines),
            think_dist: Uniform::new_inclusive(0, profile.think_mean * 2),
        }
    }

    /// The profile driving this stream.
    #[must_use]
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    fn pick_line(&mut self) -> u64 {
        let r: f64 = self.rng.gen();
        let p = &self.profile;
        if r < p.p_hot {
            // Uniform re-reference within the private-cache-resident set.
            self.hot_base + self.hot_dist.sample(&mut self.rng)
        } else if r < p.p_hot + p.p_churn {
            // Sequential sweep over the LLC-scale set: every line is
            // periodically evicted and re-fetched (array-sweep behaviour).
            self.churn_pos = wrap_incr(self.churn_pos, p.churn_lines);
            self.churn_base + self.churn_pos
        } else if r < p.p_hot + p.p_churn + p.p_thrash {
            // Round-robin over same-LLC-set lines exceeding associativity:
            // classic LRU pathology where every access conflict-misses, so
            // the same lines are re-fetched from memory within a short
            // window — the benign Ping-Pong pattern.
            self.thrash_pos = wrap_incr(self.thrash_pos, p.thrash_lines);
            self.thrash_base + self.thrash_pos * self.llc_sets
        } else {
            // Streaming through a footprint much larger than the LLC.
            self.stream_pos = wrap_incr(self.stream_pos, p.stream_lines);
            self.stream_base + self.stream_pos
        }
    }
}

/// `(pos + 1) % len` for a `pos` already in `0..len`, without the division.
#[inline]
fn wrap_incr(pos: u64, len: u64) -> u64 {
    let next = pos + 1;
    if next == len {
        0
    } else {
        next
    }
}

impl AccessSource for ProfileSource {
    fn next_access(&mut self) -> Option<Access> {
        let line = self.pick_line();
        let kind = if self.rng.gen::<f64>() < self.profile.write_fraction {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Uniform on 0..=2*mean keeps the mean while adding jitter.
        let think = self.think_dist.sample(&mut self.rng);
        Some(Access {
            addr: Addr(line * LINE_SIZE),
            kind,
            think_cycles: think,
        })
    }

    /// Batched generation: hoists the profile parameters out of the loop so
    /// the RNG and tier bookkeeping amortize across the whole batch. Draws
    /// happen in exactly the per-access order of `next_access` (tier pick,
    /// write draw, think draw), so the stream is bit-identical however the
    /// caller mixes the two entry points.
    fn refill(&mut self, buf: &mut Vec<Access>, max: usize) {
        let p = self.profile;
        let think_dist = self.think_dist;
        for _ in 0..max {
            let line = self.pick_line();
            let kind = if self.rng.gen::<f64>() < p.write_fraction {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let think = think_dist.sample(&mut self.rng);
            buf.push(Access {
                addr: Addr(line * LINE_SIZE),
                kind,
                think_cycles: think,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::benchmark;

    #[test]
    fn stream_is_deterministic() {
        let p = benchmark("libquantum").expect("known");
        let mut a = ProfileSource::new(p, 2, 99);
        let mut b = ProfileSource::new(p, 2, 99);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = benchmark("libquantum").expect("known");
        let mut a = ProfileSource::new(p, 0, 1);
        let mut b = ProfileSource::new(p, 0, 2);
        let same = (0..100)
            .filter(|_| a.next_access() == b.next_access())
            .count();
        assert!(same < 100, "seeds must change the stream");
    }

    #[test]
    fn distinct_cores_get_distinct_seed_stable_streams() {
        let p = benchmark("libquantum").expect("known");
        // Same seed, different cores: the per-core seed derivation
        // `seed ^ ((core_index as u64) << 32)` must decorrelate the RNG
        // streams, not just shift the address region.
        let draws = |core: usize, seed: u64| -> Vec<(u64, bool, u64)> {
            let mut src = ProfileSource::new(p, core, seed);
            let base = (core as u64 + 1) * CORE_REGION_LINES * LINE_SIZE;
            (0..200)
                .map(|_| {
                    let a = src.next_access().expect("infinite");
                    // Subtract the region base so streams are comparable.
                    (a.addr.0 - base, a.kind.is_write(), a.think_cycles)
                })
                .collect()
        };
        let core0 = draws(0, 7);
        let core1 = draws(1, 7);
        let core2 = draws(2, 7);
        assert_ne!(core0, core1, "cores 0/1 share an RNG stream");
        assert_ne!(core1, core2, "cores 1/2 share an RNG stream");
        assert_ne!(core0, core2, "cores 0/2 share an RNG stream");
        // And each stream is stable under reconstruction with the same seed.
        assert_eq!(core0, draws(0, 7));
        assert_eq!(core1, draws(1, 7));
        assert_eq!(core2, draws(2, 7));
    }

    #[test]
    fn refill_matches_next_access_stream() {
        let p = benchmark("hmmer").expect("known");
        let mut scalar = ProfileSource::new(p, 3, 1234);
        let mut batched = ProfileSource::new(p, 3, 1234);
        let mut buf = Vec::new();
        // Mixed batch sizes, interleaved with scalar pulls on the same
        // source: the override must stay draw-for-draw identical.
        for round in 0..50 {
            let max = 1 + (round * 7) % 64;
            buf.clear();
            batched.refill(&mut buf, max);
            assert_eq!(buf.len(), max, "infinite stream must fill the batch");
            for access in &buf {
                assert_eq!(Some(*access), scalar.next_access());
            }
            assert_eq!(batched.next_access(), scalar.next_access());
        }
    }

    #[test]
    fn cores_use_disjoint_regions() {
        let p = benchmark("mcf").expect("known");
        let mut a = ProfileSource::new(p, 0, 1);
        let mut b = ProfileSource::new(p, 1, 1);
        let max_a = (0..1000)
            .map(|_| a.next_access().expect("infinite").addr.0)
            .max()
            .expect("nonempty");
        let min_b = (0..1000)
            .map(|_| b.next_access().expect("infinite").addr.0)
            .min()
            .expect("nonempty");
        assert!(
            max_a < min_b,
            "core regions overlap: {max_a:#x} vs {min_b:#x}"
        );
    }

    #[test]
    fn tier_frequencies_match_probabilities() {
        let p = benchmark("libquantum").expect("known");
        let mut src = ProfileSource::new(p, 0, 7);
        let hot_end = src.hot_base + p.hot_lines;
        let churn_end = src.churn_base + p.churn_lines;
        let mut hot = 0u32;
        let mut churn = 0u32;
        let n = 100_000;
        for _ in 0..n {
            let line = src.next_access().expect("infinite").addr.0 / LINE_SIZE;
            if (src.hot_base..hot_end).contains(&line) {
                hot += 1;
            } else if (src.churn_base..churn_end).contains(&line) {
                churn += 1;
            }
        }
        let hot_frac = f64::from(hot) / f64::from(n);
        let churn_frac = f64::from(churn) / f64::from(n);
        assert!((hot_frac - p.p_hot).abs() < 0.01, "hot {hot_frac}");
        assert!((churn_frac - p.p_churn).abs() < 0.01, "churn {churn_frac}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let p = benchmark("hmmer").expect("known"); // 40% writes
        let mut src = ProfileSource::new(p, 0, 11);
        let n = 50_000;
        let writes = (0..n)
            .filter(|_| src.next_access().expect("infinite").kind.is_write())
            .count();
        let frac = writes as f64 / f64::from(n);
        assert!((frac - 0.40).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn think_cycles_average_near_mean() {
        let p = benchmark("gcc").expect("known");
        let mut src = ProfileSource::new(p, 0, 13);
        let n = 50_000u64;
        let total: u64 = (0..n)
            .map(|_| src.next_access().expect("infinite").think_cycles)
            .sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - p.think_mean as f64).abs() < 0.2,
            "mean think {mean} vs {}",
            p.think_mean
        );
    }

    #[test]
    fn churn_lines_are_revisited() {
        let p = benchmark("libquantum").expect("known");
        let mut src = ProfileSource::new(p, 0, 5);
        let churn_range = src.churn_base..src.churn_base + p.churn_lines;
        let mut first_seen = std::collections::HashMap::new();
        let mut revisits = 0u32;
        // Enough accesses for the churn sweep to wrap: churn_lines / p_churn.
        let needed = (p.churn_lines as f64 / p.p_churn * 1.2) as u64;
        for i in 0..needed {
            let line = src.next_access().expect("infinite").addr.0 / LINE_SIZE;
            if churn_range.contains(&line) && first_seen.insert(line, i).is_some() {
                revisits += 1;
            }
        }
        assert!(revisits > 0, "churn tier must revisit lines");
    }
}
