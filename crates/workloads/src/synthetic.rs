//! Simple synthetic streams for tests, microbenchmarks, and ablations.

use cache_sim::{Access, AccessKind, AccessSource, Addr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fixed-stride streaming source (models array sweeps).
///
/// # Examples
///
/// ```
/// use cache_sim::AccessSource;
/// use pipo_workloads::StrideSource;
///
/// let mut s = StrideSource::new(0x1000, 64, 2);
/// assert_eq!(s.next_access().expect("infinite").addr.0, 0x1040);
/// assert_eq!(s.next_access().expect("infinite").addr.0, 0x1080);
/// ```
#[derive(Debug, Clone)]
pub struct StrideSource {
    addr: u64,
    stride: u64,
    think: u64,
}

impl StrideSource {
    /// Starts at `base` and advances by `stride` bytes per access, with
    /// `think` compute cycles between accesses.
    #[must_use]
    pub fn new(base: u64, stride: u64, think: u64) -> Self {
        Self {
            addr: base,
            stride,
            think,
        }
    }
}

impl AccessSource for StrideSource {
    fn next_access(&mut self) -> Option<Access> {
        self.addr = self.addr.wrapping_add(self.stride);
        Some(Access::read(Addr(self.addr)).after(self.think))
    }
}

/// Uniform random accesses over a region of `lines` cache lines.
#[derive(Debug, Clone)]
pub struct UniformRandomSource {
    base_line: u64,
    lines: u64,
    think: u64,
    write_fraction: f64,
    rng: StdRng,
}

impl UniformRandomSource {
    /// Uniform reads/writes over `lines` lines starting at line `base_line`.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`.
    #[must_use]
    pub fn new(base_line: u64, lines: u64, think: u64, write_fraction: f64, seed: u64) -> Self {
        assert!(lines > 0, "region must contain at least one line");
        Self {
            base_line,
            lines,
            think,
            write_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl AccessSource for UniformRandomSource {
    fn next_access(&mut self) -> Option<Access> {
        let line = self.base_line + self.rng.gen_range(0..self.lines);
        let kind = if self.rng.gen::<f64>() < self.write_fraction {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(Access {
            addr: Addr(line * 64),
            kind,
            think_cycles: self.think,
        })
    }
}

/// A pointer-chase over a random permutation of `lines` cache lines
/// (models mcf-style dependent loads: no spatial locality, full reuse).
#[derive(Debug, Clone)]
pub struct PointerChaseSource {
    base_line: u64,
    next: Vec<u32>,
    pos: u32,
    think: u64,
}

impl PointerChaseSource {
    /// Builds a single-cycle random permutation over `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0` or `lines > u32::MAX as u64`.
    #[must_use]
    pub fn new(base_line: u64, lines: u64, think: u64, seed: u64) -> Self {
        assert!(lines > 0, "chase needs at least one line");
        assert!(lines <= u64::from(u32::MAX), "chase too large");
        let n = lines as u32;
        let mut order: Vec<u32> = (0..n).collect();
        // Fisher-Yates with a seeded generator; then link into one cycle so
        // the chase visits every line before repeating.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut next = vec![0u32; n as usize];
        for w in 0..n as usize {
            let from = order[w];
            let to = order[(w + 1) % n as usize];
            next[from as usize] = to;
        }
        Self {
            base_line,
            next,
            pos: 0,
            think,
        }
    }

    /// Number of lines in the chase.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.next.len()
    }
}

impl AccessSource for PointerChaseSource {
    fn next_access(&mut self) -> Option<Access> {
        self.pos = self.next[self.pos as usize];
        let line = self.base_line + u64::from(self.pos);
        Some(Access::read(Addr(line * 64)).after(self.think))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_advances_linearly() {
        let mut s = StrideSource::new(0, 128, 1);
        assert_eq!(s.next_access().expect("infinite").addr.0, 128);
        assert_eq!(s.next_access().expect("infinite").addr.0, 256);
    }

    #[test]
    fn uniform_random_stays_in_region() {
        let mut s = UniformRandomSource::new(100, 50, 0, 0.5, 3);
        for _ in 0..1000 {
            let a = s.next_access().expect("infinite");
            let line = a.addr.0 / 64;
            assert!((100..150).contains(&line));
        }
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn uniform_random_rejects_empty_region() {
        let _ = UniformRandomSource::new(0, 0, 0, 0.0, 1);
    }

    #[test]
    fn pointer_chase_visits_every_line_once_per_cycle() {
        let lines = 64;
        let mut s = PointerChaseSource::new(0, lines, 0, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..lines {
            let a = s.next_access().expect("infinite");
            assert!(seen.insert(a.addr.0), "revisit before full cycle");
        }
        // The next access starts the cycle again.
        let a = s.next_access().expect("infinite");
        assert!(seen.contains(&a.addr.0));
    }

    #[test]
    fn pointer_chase_is_deterministic() {
        let mut a = PointerChaseSource::new(0, 32, 0, 4);
        let mut b = PointerChaseSource::new(0, 32, 0, 4);
        for _ in 0..64 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn pointer_chase_single_line() {
        let mut s = PointerChaseSource::new(5, 1, 0, 1);
        assert_eq!(s.next_access().expect("infinite").addr.0, 5 * 64);
        assert_eq!(s.next_access().expect("infinite").addr.0, 5 * 64);
    }
}
